"""Quality metrics: Top-1, mAP, BLEU."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.accuracy.bleu import corpus_bleu, sentence_bleu
from repro.accuracy.map import (
    COCO_IOU_THRESHOLDS,
    average_precision_for_class,
    map_at_50,
    mean_average_precision,
)
from repro.accuracy.topk import top1_accuracy, topk_accuracy
from repro.datasets.coco import GroundTruthObject
from repro.models.nms import Detection


class TestTop1:
    def test_perfect(self):
        assert top1_accuracy([1, 2, 3], [1, 2, 3]) == 100.0

    def test_half(self):
        assert top1_accuracy([1, 2, 3, 4], [1, 2, 0, 0]) == 50.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            top1_accuracy([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            top1_accuracy([], [])

    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=1, max_size=50))
    def test_bounds_and_self_consistency(self, labels):
        assert top1_accuracy(labels, labels) == 100.0
        shifted = [(l + 1) % 7 for l in labels]
        assert top1_accuracy(shifted, labels) == 0.0


class TestTopK:
    def test_top5_recovers_lower_ranked_hit(self):
        scores = np.array([[0.1, 0.5, 0.2, 0.15, 0.05]])
        assert topk_accuracy(scores, [2], k=1) == 0.0
        assert topk_accuracy(scores, [2], k=2) == 100.0

    def test_k_bounds(self):
        scores = np.zeros((1, 3))
        with pytest.raises(ValueError):
            topk_accuracy(scores, [0], k=4)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros(3), [0], k=1)
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3)), [0], k=1)


def det(box, score, class_id=1):
    return Detection(box=box, score=score, class_id=class_id)


def truth(box, class_id=1):
    return GroundTruthObject(box=box, class_id=class_id)


class TestAveragePrecision:
    def test_perfect_single_detection(self):
        detections = [[det((0, 0, 10, 10), 0.9)]]
        truths = [[truth((0, 0, 10, 10))]]
        ap = average_precision_for_class(detections, truths, 1, 0.5)
        assert ap == pytest.approx(1.0)

    def test_missed_object_halves_recall(self):
        detections = [[det((0, 0, 10, 10), 0.9)]]
        truths = [[truth((0, 0, 10, 10)), truth((30, 30, 40, 40))]]
        ap = average_precision_for_class(detections, truths, 1, 0.5)
        assert ap == pytest.approx(0.5)

    def test_false_positive_after_true_positive(self):
        detections = [[det((0, 0, 10, 10), 0.9), det((50, 50, 60, 60), 0.5)]]
        truths = [[truth((0, 0, 10, 10))]]
        ap = average_precision_for_class(detections, truths, 1, 0.5)
        # TP at rank 1: full recall at precision 1 -> AP 1.0 despite the FP.
        assert ap == pytest.approx(1.0)

    def test_false_positive_before_true_positive(self):
        detections = [[det((50, 50, 60, 60), 0.9), det((0, 0, 10, 10), 0.5)]]
        truths = [[truth((0, 0, 10, 10))]]
        ap = average_precision_for_class(detections, truths, 1, 0.5)
        assert ap == pytest.approx(0.5)

    def test_duplicate_detection_is_a_false_positive(self):
        detections = [[det((0, 0, 10, 10), 0.9), det((0, 0, 10, 10), 0.8)]]
        truths = [[truth((0, 0, 10, 10))]]
        ap = average_precision_for_class(detections, truths, 1, 0.5)
        assert ap == pytest.approx(1.0)   # dup ranks after full recall
        # But if the duplicate outranks a second object's detection, it costs:
        detections = [[det((0, 0, 10, 10), 0.9), det((0, 0, 10, 10), 0.8),
                       det((30, 30, 40, 40), 0.7)]]
        truths = [[truth((0, 0, 10, 10)), truth((30, 30, 40, 40))]]
        ap = average_precision_for_class(detections, truths, 1, 0.5)
        assert 0.5 < ap < 1.0

    def test_class_without_truth_is_nan(self):
        ap = average_precision_for_class(
            [[det((0, 0, 1, 1), 0.9, class_id=2)]],
            [[truth((0, 0, 1, 1), class_id=1)]],
            2, 0.5,
        )
        assert np.isnan(ap)

    def test_no_detections_zero_ap(self):
        ap = average_precision_for_class([[]], [[truth((0, 0, 1, 1))]], 1, 0.5)
        assert ap == 0.0


class TestMeanAveragePrecision:
    def test_perfect_across_classes(self):
        detections = [[det((0, 0, 10, 10), 0.9, 1),
                       det((20, 20, 30, 30), 0.9, 2)]]
        truths = [[truth((0, 0, 10, 10), 1), truth((20, 20, 30, 30), 2)]]
        assert mean_average_precision(detections, truths) == pytest.approx(1.0)

    def test_loose_boxes_fail_high_iou_thresholds(self):
        # IoU ~0.68: counts at 0.5-0.65, fails at 0.7+.
        detections = [[det((0, 0, 10, 10), 0.9)]]
        truths = [[truth((1, 1, 11, 11))]]
        strict = mean_average_precision(detections, truths)
        loose = map_at_50(detections, truths)
        assert loose == pytest.approx(1.0)
        assert strict < loose

    def test_coco_thresholds(self):
        assert COCO_IOU_THRESHOLDS[0] == 0.5
        assert COCO_IOU_THRESHOLDS[-1] == 0.95
        assert len(COCO_IOU_THRESHOLDS) == 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_average_precision([[]], [[], []])

    def test_empty_everything_rejected(self):
        with pytest.raises(ValueError):
            mean_average_precision([[]], [[]])


class TestBleu:
    def test_perfect_translation(self):
        refs = [[1, 2, 3, 4, 5], [6, 7, 8, 9]]
        assert corpus_bleu(refs, refs) == pytest.approx(100.0)

    def test_completely_wrong(self):
        hyp = [[10, 11, 12, 13]]
        ref = [[1, 2, 3, 4]]
        assert corpus_bleu(hyp, ref, smooth="none") == 0.0

    def test_word_order_matters(self):
        ref = [[1, 2, 3, 4, 5, 6]]
        scrambled = [[4, 2, 6, 1, 5, 3]]
        score = corpus_bleu(scrambled, ref)
        assert 0 < score < 60   # unigrams match, higher n-grams don't

    def test_brevity_penalty(self):
        ref = [[1, 2, 3, 4, 5, 6, 7, 8]]
        short = [[1, 2, 3, 4]]
        full = [[1, 2, 3, 4, 5, 6, 7, 8]]
        assert corpus_bleu(short, ref) < corpus_bleu(full, ref)

    def test_no_penalty_for_longer_hypothesis(self):
        ref = [[1, 2, 3, 4]]
        longer = [[1, 2, 3, 4, 9, 9]]
        score = corpus_bleu(longer, ref)
        # Precision drops but no brevity penalty applies.
        assert 0 < score < 100

    def test_known_value_half_match(self):
        # hyp 4 tokens, 2 unigrams match, 1 bigram of 3, 0 higher orders.
        hyp = [[1, 2, 9, 9]]
        ref = [[1, 2, 3, 4]]
        exp_smoothed = corpus_bleu(hyp, ref, smooth="exp")
        floor_smoothed = corpus_bleu(hyp, ref, smooth="floor")
        assert exp_smoothed > 0
        assert floor_smoothed > 0
        assert exp_smoothed != floor_smoothed

    def test_corpus_level_not_average_of_sentences(self):
        hyps = [[1, 2], [3, 4, 5, 6, 7, 8]]
        refs = [[1, 2], [3, 4, 5, 6, 7, 9]]
        corpus = corpus_bleu(hyps, refs)
        mean_sentence = np.mean([
            sentence_bleu(h, r) for h, r in zip(hyps, refs)
        ])
        assert corpus != pytest.approx(mean_sentence)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1], [2]])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_unknown_smoothing_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1]], smooth="laplace")

    def test_clipped_counts(self):
        # Repeating a matching token must not inflate precision.
        hyp = [[1, 1, 1, 1]]
        ref = [[1, 2, 3, 4]]
        repeated = corpus_bleu(hyp, ref)
        honest = corpus_bleu([[1, 9, 9, 9]], ref)
        assert repeated == pytest.approx(honest, abs=1.0)

    @given(st.lists(st.integers(min_value=0, max_value=20),
                    min_size=4, max_size=20))
    def test_self_translation_is_100(self, sentence):
        assert corpus_bleu([sentence], [sentence]) == pytest.approx(100.0)
