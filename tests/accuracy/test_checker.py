"""The accuracy script: logs + ground truth -> pass/fail."""

import pytest

from repro.accuracy.checker import check_accuracy
from repro.core import Scenario, TestMode, TestSettings, run_benchmark
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.datasets import DatasetQSL


class OracleClassifierSUT(SutBase):
    """Returns the dataset's own label, optionally corrupted."""

    def __init__(self, qsl, wrong_every: int = 0):
        super().__init__("oracle")
        self.qsl = qsl
        self.wrong_every = wrong_every
        self._count = 0

    def issue_query(self, query):
        responses = []
        for sample in query.samples:
            self._count += 1
            label = self.qsl.get_label(sample.index)
            if self.wrong_every and self._count % self.wrong_every == 0:
                label = (label + 1) % 16
            responses.append(QuerySampleResponse(sample.id, label))
        self.loop.schedule_after(0.001, lambda: self.complete(query, responses))


def accuracy_run(qsl, sut):
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            mode=TestMode.ACCURACY)
    return run_benchmark(sut, qsl, settings)


class TestClassificationChecker:
    def test_oracle_passes(self, imagenet):
        qsl = DatasetQSL(imagenet)
        result = accuracy_run(qsl, OracleClassifierSUT(qsl))
        report = check_accuracy(result, imagenet, "classification", 99.0)
        assert report.passed
        assert report.value == 100.0
        assert report.sample_count == len(imagenet)

    def test_corrupted_sut_fails_target(self, imagenet):
        qsl = DatasetQSL(imagenet)
        result = accuracy_run(qsl, OracleClassifierSUT(qsl, wrong_every=4))
        report = check_accuracy(result, imagenet, "classification", 90.0)
        assert not report.passed
        assert report.value == pytest.approx(75.0, abs=1.0)

    def test_summary_format(self, imagenet):
        qsl = DatasetQSL(imagenet)
        result = accuracy_run(qsl, OracleClassifierSUT(qsl))
        report = check_accuracy(result, imagenet, "classification", 99.0)
        assert "PASSED" in report.summary()
        assert "Top-1" in report.summary()


class TestCheckerPlumbing:
    def test_unknown_task_type_rejected(self, imagenet):
        qsl = DatasetQSL(imagenet)
        result = accuracy_run(qsl, OracleClassifierSUT(qsl))
        with pytest.raises(ValueError, match="unknown task type"):
            check_accuracy(result, imagenet, "segmentation", 1.0)

    def test_performance_run_without_logging_rejected(self, imagenet):
        qsl = DatasetQSL(imagenet)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=32, min_duration=0.1)
        result = run_benchmark(OracleClassifierSUT(qsl), qsl, settings)
        with pytest.raises(ValueError, match="no responses"):
            check_accuracy(result, imagenet, "classification", 1.0)


class TestDetectionChecker:
    def test_detection_payload_decoding(self, coco):
        from repro.models.runtime.detector import build_glyph_detector
        from repro.sut.backend import DetectorSUT

        qsl = DatasetQSL(coco)
        model = build_glyph_detector(coco, "heavy")
        sut = DetectorSUT(model, qsl, service_time_fn=lambda n: 0.001 * n)
        result = accuracy_run(qsl, sut)
        report = check_accuracy(result, coco, "detection", 0.2)
        assert report.metric_name == "mAP"
        assert report.passed
        assert 0.2 < report.value < 0.8

    def test_tuple_payloads_accepted(self, coco):
        class TuplePayloadSUT(SutBase):
            def __init__(self, qsl):
                super().__init__("tuples")
                self.qsl = qsl

            def issue_query(self, query):
                responses = []
                for sample in query.samples:
                    objs = self.qsl.get_label(sample.index)
                    payload = [
                        (o.box, 0.9, o.class_id) for o in objs
                    ]
                    responses.append(QuerySampleResponse(sample.id, payload))
                self.loop.schedule_after(
                    0.001, lambda: self.complete(query, responses))

        qsl = DatasetQSL(coco)
        result = accuracy_run(qsl, TuplePayloadSUT(qsl))
        report = check_accuracy(result, coco, "detection", 0.95)
        assert report.passed
        assert report.value == pytest.approx(1.0)


class TestTranslationChecker:
    def test_translator_backend_passes_its_target(self, wmt):
        from repro.models.runtime.translator import build_cipher_translator
        from repro.sut.backend import TranslatorSUT

        qsl = DatasetQSL(wmt)
        model = build_cipher_translator(wmt)
        sut = TranslatorSUT(model, qsl, service_time_fn=lambda n: 0.001 * n)
        result = accuracy_run(qsl, sut)
        report = check_accuracy(result, wmt, "translation", 60.0)
        assert report.metric_name == "SacreBLEU"
        assert report.passed
        assert 60.0 < report.value < 100.0
