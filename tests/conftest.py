"""Shared fixtures: small data sets, deterministic SUTs, quick settings."""

from __future__ import annotations

import signal
import socket as _socket

import pytest

from repro.core import Scenario, TestMode, TestSettings
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.datasets import (
    DatasetQSL,
    SyntheticCoco,
    SyntheticImageNet,
    SyntheticWmt,
)


class EchoQSL:
    """Minimal in-memory QSL whose samples are their own indices."""

    def __init__(self, total: int = 1000, performance: int = 256) -> None:
        self.name = "echo"
        self.total_sample_count = total
        self.performance_sample_count = performance
        self.loaded = set()

    def load_samples(self, indices) -> None:
        self.loaded.update(indices)

    def unload_samples(self, indices) -> None:
        self.loaded.difference_update(indices)

    def get_sample(self, index: int):
        return index


class FixedLatencySUT(SutBase):
    """Completes every query a fixed delay after it is issued.

    Responses echo each sample's data set index, which lets tests verify
    response plumbing end to end.
    """

    def __init__(self, latency: float = 0.005, name: str = "fixed") -> None:
        super().__init__(name)
        self.latency = latency
        self.issued = 0

    def issue_query(self, query) -> None:
        self.issued += 1
        responses = [
            QuerySampleResponse(s.id, s.index) for s in query.samples
        ]
        self.loop.schedule_after(
            self.latency, lambda: self.complete(query, responses)
        )


_LOOPBACK_HOSTS = {"127.0.0.1", "localhost", "::1"}


@pytest.fixture(autouse=True)
def _socket_test_guard(request):
    """Keep real-socket tests bounded: a hard per-test timeout (so a
    wedged server/reader thread fails the test instead of hanging the
    suite) and a localhost-only restriction on outbound connects.

    Activated by ``@pytest.mark.socket`` (override the default 20 s via
    ``@pytest.mark.socket(timeout=...)``).  The timeout uses SIGALRM, so
    on platforms without it (Windows) only the localhost guard applies.
    """
    marker = request.node.get_closest_marker("socket")
    if marker is None:
        yield
        return
    timeout = float(marker.kwargs.get("timeout", 20.0))

    real_connect = _socket.socket.connect

    def _localhost_only(sock, address, *args, **kwargs):
        host = address[0] if isinstance(address, tuple) else address
        if host not in _LOOPBACK_HOSTS:
            raise RuntimeError(
                f"socket-marked tests must stay on localhost; "
                f"attempted connect to {address!r}"
            )
        return real_connect(sock, address, *args, **kwargs)

    _socket.socket.connect = _localhost_only
    use_alarm = hasattr(signal, "SIGALRM")
    if use_alarm:
        def _fired(signum, frame):
            raise TimeoutError(
                f"socket test exceeded its {timeout}s timeout guard"
            )

        old_handler = signal.signal(signal.SIGALRM, _fired)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, old_handler)
        _socket.socket.connect = real_connect


@pytest.fixture
def echo_qsl():
    return EchoQSL()


@pytest.fixture
def fixed_sut():
    return FixedLatencySUT()


@pytest.fixture(scope="session")
def imagenet():
    return SyntheticImageNet(size=400)


@pytest.fixture(scope="session")
def coco():
    return SyntheticCoco(size=160)


@pytest.fixture(scope="session")
def wmt():
    return SyntheticWmt(size=240)


@pytest.fixture
def quick_single_stream():
    return TestSettings(
        scenario=Scenario.SINGLE_STREAM, min_query_count=128, min_duration=0.5
    )


@pytest.fixture
def quick_server():
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=200.0,
        server_latency_bound=0.05, min_query_count=256, min_duration=1.0,
    )


@pytest.fixture
def quick_offline():
    return TestSettings(
        scenario=Scenario.OFFLINE, offline_sample_count=512, min_duration=0.5
    )
