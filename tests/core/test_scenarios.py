"""Scenario drivers: traffic generation semantics (Table II, Fig. 4)."""

import numpy as np
import pytest

from repro.core.config import Scenario, TestMode, TestSettings
from repro.core.events import EventLoop
from repro.core.logging import QueryLog
from repro.core.query import QuerySampleResponse
from repro.core.scenarios import (
    AccuracySource,
    PerformanceSource,
    make_driver,
)
from repro.core.sampler import SampleSelector
from repro.core.sut import SutBase


class ScriptedSUT(SutBase):
    """Fixed latency; records issue times for timing assertions."""

    def __init__(self, latency=0.01):
        super().__init__("scripted")
        self.latency = latency
        self.issue_times = []

    def issue_query(self, query):
        self.issue_times.append(self.loop.now)
        responses = [QuerySampleResponse(s.id, None) for s in query.samples]
        self.loop.schedule_after(
            self.latency, lambda: self.complete(query, responses)
        )


def run_driver(settings, sut, source=None):
    loop = EventLoop()
    log = QueryLog()
    if source is None:
        source = PerformanceSource(SampleSelector(range(64), seed=1))
    driver = make_driver(loop, settings, sut, source, log)
    sut.start_run(loop, driver.handle_completion)
    driver.start()
    loop.run()
    return log, driver


class TestSources:
    def test_performance_source_is_infinite(self):
        source = PerformanceSource(SampleSelector([1, 2], seed=0))
        assert not source.finite
        assert len(source.next(5)) == 5

    def test_accuracy_source_walks_once(self):
        source = AccuracySource([1, 2, 3])
        assert source.finite
        assert source.next(2) == [1, 2]
        assert source.remaining == 1
        assert source.next(2) == [3]
        assert source.next(2) is None


class TestSingleStream:
    def test_sequential_issue_on_completion(self):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=0.0)
        sut = ScriptedSUT(latency=0.01)
        log, _ = run_driver(settings, sut)
        gaps = np.diff(sut.issue_times)
        assert np.allclose(gaps, 0.01)

    def test_stops_at_both_minimums(self):
        # 0.5 s at 10 ms per query -> 50 queries > the 10-query minimum.
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=0.5)
        sut = ScriptedSUT(latency=0.01)
        log, _ = run_driver(settings, sut)
        assert log.query_count == 50

    def test_one_sample_per_query(self):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=5, min_duration=0.0)
        log, _ = run_driver(settings, ScriptedSUT())
        assert all(r.query.sample_count == 1 for r in log.records())


class TestServer:
    def test_poisson_interarrivals(self):
        settings = TestSettings(scenario=Scenario.SERVER,
                                server_target_qps=1000.0,
                                server_latency_bound=1.0,
                                min_query_count=2000, min_duration=0.0)
        sut = ScriptedSUT(latency=0.0001)
        log, _ = run_driver(settings, sut)
        gaps = np.diff(sut.issue_times)
        # Exponential(1/1000): mean 1 ms, CV ~= 1.
        assert np.mean(gaps) == pytest.approx(1e-3, rel=0.15)
        assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, rel=0.2)

    def test_arrivals_independent_of_completions(self):
        # A slow SUT must not slow the arrival process down.
        settings = TestSettings(scenario=Scenario.SERVER,
                                server_target_qps=100.0,
                                server_latency_bound=10.0,
                                min_query_count=200, min_duration=0.0)
        sut = ScriptedSUT(latency=1.0)
        log, _ = run_driver(settings, sut)
        duration = max(t for t in sut.issue_times) - sut.issue_times[0]
        assert duration == pytest.approx(200 / 100.0, rel=0.3)

    def test_traffic_is_seed_deterministic(self):
        settings = TestSettings(scenario=Scenario.SERVER,
                                server_target_qps=100.0,
                                server_latency_bound=1.0,
                                min_query_count=100, min_duration=0.0,
                                seed=11)
        sut_a = ScriptedSUT()
        run_driver(settings, sut_a)
        sut_b = ScriptedSUT()
        run_driver(settings, sut_b)
        assert sut_a.issue_times == sut_b.issue_times

    def test_different_seed_different_traffic(self):
        base = TestSettings(scenario=Scenario.SERVER,
                            server_target_qps=100.0,
                            server_latency_bound=1.0,
                            min_query_count=100, min_duration=0.0)
        sut_a = ScriptedSUT()
        run_driver(base, sut_a)
        sut_b = ScriptedSUT()
        run_driver(base.with_overrides(seed=999), sut_b)
        assert sut_a.issue_times != sut_b.issue_times


class TestMultiStream:
    def test_fixed_arrival_interval(self):
        settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                                multistream_interval=0.05,
                                multistream_samples_per_query=4,
                                min_query_count=20, min_duration=0.0)
        sut = ScriptedSUT(latency=0.01)   # always finishes within interval
        log, driver = run_driver(settings, sut)
        gaps = np.diff(sut.issue_times)
        assert np.allclose(gaps, 0.05)
        assert driver.stats.total_skipped_ticks == 0

    def test_n_samples_per_query(self):
        settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                                multistream_interval=0.05,
                                multistream_samples_per_query=7,
                                min_query_count=5, min_duration=0.0)
        log, _ = run_driver(settings, ScriptedSUT(latency=0.01))
        assert all(r.query.sample_count == 7 for r in log.records())

    def test_slow_queries_skip_intervals(self):
        # 70 ms latency vs 50 ms interval: every query overruns by one
        # interval, so every query produces exactly one skipped tick.
        settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                                multistream_interval=0.05,
                                multistream_samples_per_query=1,
                                min_query_count=10, min_duration=0.0)
        sut = ScriptedSUT(latency=0.07)
        log, driver = run_driver(settings, sut)
        offenders = [q for q, n in driver.stats.skipped_intervals.items()
                     if n > 0]
        # Every query except the last (no tick follows it) is charged.
        assert len(offenders) == log.query_count - 1
        # Delayed by one interval each: issues 100 ms apart.
        gaps = np.diff(sut.issue_times)
        assert np.allclose(gaps, 0.10)

    def test_occasional_slow_query_charged_correctly(self):
        class MostlyFast(ScriptedSUT):
            def issue_query(self, query):
                self.latency = 0.07 if len(self.issue_times) == 3 else 0.01
                super().issue_query(query)

        settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                                multistream_interval=0.05,
                                multistream_samples_per_query=1,
                                min_query_count=10, min_duration=0.0)
        sut = MostlyFast()
        log, driver = run_driver(settings, sut)
        assert driver.stats.total_skipped_ticks == 1
        slow_query_id = log.records()[3].query.id
        assert driver.stats.skipped_intervals == {slow_query_id: 1}


class TestOffline:
    def test_single_query_carries_all_samples(self):
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=500, min_duration=0.0)
        log, driver = run_driver(settings, ScriptedSUT(latency=1.0))
        # Double buffering issues two batches up front; duration is
        # satisfied after the first completes.
        assert driver.stats.offline_queries == 2
        assert log.records()[0].query.sample_count == 500

    def test_issued_at_time_zero(self):
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=100, min_duration=0.0)
        sut = ScriptedSUT(latency=0.5)
        run_driver(settings, sut)
        assert sut.issue_times[0] == 0.0

    def test_extra_batches_until_min_duration(self):
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=10, min_duration=1.0)
        sut = ScriptedSUT(latency=0.1)
        log, driver = run_driver(settings, sut)
        duration = max(r.completion_time for r in log.completed_records())
        assert duration >= 1.0
        assert driver.stats.offline_queries >= 10


class TestAccuracyModeDrivers:
    @pytest.mark.parametrize("scenario", list(Scenario))
    def test_each_scenario_covers_dataset_exactly_once(self, scenario):
        settings = TestSettings(scenario=scenario, mode=TestMode.ACCURACY,
                                multistream_interval=0.05,
                                server_latency_bound=1.0,
                                multistream_samples_per_query=4,
                                min_duration=0.0)
        source = AccuracySource(range(30))
        log, _ = run_driver(settings, ScriptedSUT(latency=0.001), source)
        seen = [idx for r in log.records() for idx in r.query.sample_indices]
        assert sorted(seen) == list(range(30))


class TestArrivalStreamIsolation:
    """Pins the ServerDriver arrival-RNG contract (ISSUE 4 satellite):
    the stream is a pure function of the seed, rebuilt per driver, and
    disjoint from every other seeded stream in the harness -- so
    back-to-back runs in one process (retuning probes, multitenant)
    reproduce, and the Section V-B alternate-seed audit stays sound."""

    SETTINGS = dict(scenario=Scenario.SERVER, server_target_qps=200.0,
                    server_latency_bound=1.0, min_query_count=64,
                    min_duration=0.0, seed=77)

    def _arrivals(self, **overrides):
        settings = TestSettings(**{**self.SETTINGS, **overrides})
        sut = ScriptedSUT(latency=0.0001)
        run_driver(settings, sut)
        return sut.issue_times

    def test_back_to_back_runs_replay_identical_arrivals(self):
        first = self._arrivals()
        second = self._arrivals()
        third = self._arrivals()
        assert first == second == third

    def test_interleaved_construction_does_not_perturb_streams(self):
        """Two drivers built before either runs (the multitenant shape)
        must see exactly the streams they would have seen solo."""
        solo = self._arrivals()
        loop = EventLoop()
        settings = TestSettings(**self.SETTINGS)
        suts, drivers = [], []
        for _ in range(2):
            sut = ScriptedSUT(latency=0.0001)
            source = PerformanceSource(SampleSelector(range(64), seed=1))
            driver = make_driver(loop, settings, sut, source, QueryLog())
            sut.start_run(loop, driver.handle_completion)
            suts.append(sut)
            drivers.append(driver)
        for driver in drivers:
            driver.start()
        loop.run()
        assert suts[0].issue_times == solo
        assert suts[1].issue_times == solo

    def test_alternate_seed_diverges_same_seed_restores(self):
        """The V-B audit in one process: official seed, alternate seed,
        official again -- the third run must equal the first."""
        official = self._arrivals()
        alternate = self._arrivals(seed=1234)
        replay = self._arrivals()
        assert official != alternate
        assert official == replay

    def test_arrival_stream_disjoint_from_sibling_streams(self):
        """The arrival child (spawn key (0,)) must not collide with the
        loaded-set child (spawn key (1,)) or the sample-selection
        stream (root entropy): identical draws would correlate traffic
        with data selection and quietly defeat the seed audits."""
        seed = self.SETTINGS["seed"]
        root = np.random.SeedSequence(seed)
        arrival = np.random.default_rng(
            np.random.SeedSequence(seed).spawn(1)[0])
        loaded_set = np.random.default_rng(
            np.random.SeedSequence(seed).spawn(2)[1])
        selector = np.random.default_rng(seed)
        draws = {
            name: tuple(rng.random(8))
            for name, rng in [("arrival", arrival),
                              ("loaded_set", loaded_set),
                              ("selector", selector)]
        }
        assert len(set(draws.values())) == 3, draws
        del root

    def test_selector_consumption_does_not_advance_arrivals(self):
        """Drawing samples between runs must not shift the arrival
        schedule: the streams share no state."""
        first = self._arrivals()
        SampleSelector(range(64), seed=self.SETTINGS["seed"]).draw(500)
        second = self._arrivals()
        assert first == second
