"""Sample selection: with-replacement draws, determinism, chunking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sampler import (
    QueryFactory,
    SampleSelector,
    accuracy_mode_indices,
    chunk_indices,
)


class TestSampleSelector:
    def test_draws_come_from_loaded_set(self):
        selector = SampleSelector([5, 9, 13], seed=1)
        draws = selector.draw(200)
        assert set(draws) <= {5, 9, 13}

    def test_same_seed_same_sequence(self):
        a = SampleSelector(range(100), seed=42).draw(50)
        b = SampleSelector(range(100), seed=42).draw(50)
        assert a == b

    def test_different_seed_different_sequence(self):
        a = SampleSelector(range(100), seed=1).draw(50)
        b = SampleSelector(range(100), seed=2).draw(50)
        assert a != b

    def test_with_replacement_produces_duplicates(self):
        # Drawing far more than the pool size must repeat indices.
        draws = SampleSelector(range(4), seed=0).draw(64)
        assert len(set(draws)) <= 4
        assert len(draws) == 64

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            SampleSelector([], seed=0)

    def test_nonpositive_count_rejected(self):
        selector = SampleSelector([1], seed=0)
        with pytest.raises(ValueError):
            selector.draw(0)

    @given(st.integers(min_value=1, max_value=500))
    def test_draw_count_respected(self, count):
        selector = SampleSelector(range(10), seed=3)
        assert len(selector.draw(count)) == count


class TestQueryFactory:
    def test_unique_query_ids(self):
        factory = QueryFactory()
        queries = [factory.make_query([0]) for _ in range(10)]
        ids = [q.id for q in queries]
        assert len(set(ids)) == 10

    def test_unique_sample_ids_across_queries(self):
        factory = QueryFactory()
        a = factory.make_query([7, 7])
        b = factory.make_query([7])
        all_ids = [s.id for s in a.samples] + [s.id for s in b.samples]
        assert len(set(all_ids)) == 3

    def test_sample_indices_preserved_in_order(self):
        factory = QueryFactory()
        query = factory.make_query([3, 1, 4, 1, 5])
        assert query.sample_indices == (3, 1, 4, 1, 5)


class TestAccuracyMode:
    def test_visits_every_index_once(self):
        assert accuracy_mode_indices(5) == [0, 1, 2, 3, 4]

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            accuracy_mode_indices(0)


class TestChunking:
    def test_even_chunks(self):
        assert list(chunk_indices([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunk_indices([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_chunk_larger_than_input(self):
        assert list(chunk_indices([1], 10)) == [[1]]

    def test_bad_chunk_rejected(self):
        with pytest.raises(ValueError):
            list(chunk_indices([1], 0))

    @given(st.lists(st.integers(), min_size=0, max_size=100),
           st.integers(min_value=1, max_value=17))
    def test_chunking_partitions_exactly(self, indices, chunk):
        chunks = list(chunk_indices(indices, chunk))
        flat = [i for c in chunks for i in c]
        assert flat == indices
        assert all(1 <= len(c) <= chunk for c in chunks)
