"""Scenario metric computation (Table II)."""

import pytest

from repro.core.config import Scenario, TestSettings
from repro.core.metrics import compute_metrics, run_duration
from repro.core.logging import QueryLog
from repro.core.query import Query, QuerySample, QuerySampleResponse


def build_log(latencies, samples_per_query=1, gap=0.1):
    log = QueryLog()
    counter = 0
    for i, latency in enumerate(latencies):
        samples = tuple(
            QuerySample(id=counter + j + 1, index=j)
            for j in range(samples_per_query)
        )
        counter += samples_per_query
        query = Query(id=i + 1, samples=samples)
        log.record_issue(query, i * gap)
        log.record_completion(
            query, i * gap + latency,
            [QuerySampleResponse(s.id, None) for s in samples],
            keep_responses=False,
        )
    return log


def test_single_stream_metric_is_p90_latency():
    latencies = [0.01 * (i + 1) for i in range(10)]   # 10..100 ms
    log = build_log(latencies)
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
    metrics = compute_metrics(log, settings)
    assert metrics.primary_metric == pytest.approx(0.09)
    assert "latency" in metrics.primary_metric_name


def test_server_metric_is_the_scheduled_qps():
    log = build_log([0.01] * 20)
    settings = TestSettings(scenario=Scenario.SERVER, server_target_qps=123.0,
                            server_latency_bound=1.0)
    metrics = compute_metrics(log, settings)
    assert metrics.primary_metric == 123.0


def test_multistream_metric_is_n():
    log = build_log([0.01] * 20, samples_per_query=6)
    settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                            multistream_samples_per_query=6,
                            multistream_interval=0.05)
    metrics = compute_metrics(log, settings)
    assert metrics.primary_metric == 6.0


def test_offline_metric_is_throughput():
    # One query, 100 samples, 2 s from issue to completion.
    log = build_log([2.0], samples_per_query=100)
    settings = TestSettings(scenario=Scenario.OFFLINE)
    metrics = compute_metrics(log, settings)
    assert metrics.primary_metric == pytest.approx(50.0)
    assert metrics.throughput == pytest.approx(50.0)


def test_latency_summary_statistics():
    log = build_log([0.010, 0.020, 0.030, 0.040])
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
    metrics = compute_metrics(log, settings)
    assert metrics.latency_mean == pytest.approx(0.025)
    assert metrics.latency_p50 == pytest.approx(0.020)
    assert metrics.latency_p99 == pytest.approx(0.040)
    assert metrics.query_count == 4
    assert metrics.sample_count == 4


def test_run_duration_first_issue_to_last_completion():
    log = build_log([0.05, 0.05, 0.05], gap=1.0)
    assert run_duration(log) == pytest.approx(2.05)


def test_empty_log_rejected():
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
    with pytest.raises(ValueError):
        compute_metrics(QueryLog(), settings)
