"""Statistical machinery: Eq. 1-2, Table IV, percentiles."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    QUERY_ROUNDING_UNIT,
    QueryRequirement,
    inverse_normal_cdf,
    margin_for_tail_latency,
    normal_cdf,
    percentile,
    queries_for_confidence,
    required_queries,
    round_up_to_unit,
    table_iv,
)


class TestInverseNormal:
    def test_median(self):
        assert abs(inverse_normal_cdf(0.5)) < 1e-12

    def test_known_quantiles(self):
        assert inverse_normal_cdf(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert inverse_normal_cdf(0.005) == pytest.approx(-2.575829, abs=1e-5)
        assert inverse_normal_cdf(0.841344746) == pytest.approx(1.0, abs=1e-6)

    @given(st.floats(min_value=1e-9, max_value=1 - 1e-9))
    @settings(max_examples=200)
    def test_roundtrip_with_cdf(self, p):
        z = inverse_normal_cdf(p)
        assert normal_cdf(z) == pytest.approx(p, abs=1e-8)

    @given(st.floats(min_value=1e-6, max_value=0.5 - 1e-6))
    def test_symmetry(self, p):
        assert inverse_normal_cdf(p) == pytest.approx(
            -inverse_normal_cdf(1.0 - p), abs=1e-8
        )

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_domain_errors(self, bad):
        with pytest.raises(ValueError):
            inverse_normal_cdf(bad)

    def test_against_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for p in (0.001, 0.01, 0.1, 0.3, 0.5, 0.9, 0.975, 0.99, 0.9999):
            assert inverse_normal_cdf(p) == pytest.approx(
                float(scipy_stats.norm.ppf(p)), abs=1e-8
            )


class TestEquations:
    def test_margin_equation_1(self):
        # Margin = (1 - TailLatency) / 20
        assert margin_for_tail_latency(0.90) == pytest.approx(0.005)
        assert margin_for_tail_latency(0.95) == pytest.approx(0.0025)
        assert margin_for_tail_latency(0.99) == pytest.approx(0.0005)

    @pytest.mark.parametrize("bad", [0.0, 1.0, 1.5])
    def test_margin_domain(self, bad):
        with pytest.raises(ValueError):
            margin_for_tail_latency(bad)

    def test_equation_2_paper_values(self):
        # The exact Table IV inference counts.
        assert queries_for_confidence(0.90) == 23_886
        assert queries_for_confidence(0.95) == 50_425
        assert queries_for_confidence(0.99) == 262_742

    def test_explicit_margin_overrides_default(self):
        wide = queries_for_confidence(0.99, margin=0.01)
        assert wide < queries_for_confidence(0.99)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            queries_for_confidence(0.99, margin=0.0)

    def test_tighter_percentile_needs_more_queries(self):
        counts = [queries_for_confidence(p) for p in (0.90, 0.95, 0.99)]
        assert counts == sorted(counts)
        # Highly nonlinear: 99th needs >10x the 90th.
        assert counts[2] > 10 * counts[0]


class TestRounding:
    def test_rounds_to_power_of_two_multiple(self):
        assert round_up_to_unit(23_886) == 3 * 2 ** 13
        assert round_up_to_unit(50_425) == 7 * 2 ** 13
        assert round_up_to_unit(262_742) == 33 * 2 ** 13

    def test_exact_multiple_unchanged(self):
        assert round_up_to_unit(2 ** 13) == 2 ** 13

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_up_to_unit(0)

    @given(st.integers(min_value=1, max_value=10 ** 9))
    def test_rounding_properties(self, count):
        rounded = round_up_to_unit(count)
        assert rounded >= count
        assert rounded % QUERY_ROUNDING_UNIT == 0
        assert rounded - count < QUERY_ROUNDING_UNIT


class TestTableIV:
    def test_rows(self):
        rows = table_iv()
        assert [r.tail_latency for r in rows] == [0.90, 0.95, 0.99]
        assert [r.rounded_inferences for r in rows] == [
            24_576, 57_344, 270_336,
        ]

    def test_required_queries_shortcut(self):
        assert required_queries(0.99) == 270_336
        assert required_queries(0.90) == 24_576

    def test_requirement_record_consistency(self):
        req = QueryRequirement.for_percentile(0.95)
        assert req.margin == pytest.approx(0.0025)
        assert req.inferences == 50_425
        assert req.rounded_inferences == 57_344


class TestPercentile:
    def test_nearest_rank_simple(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.90) == 9
        assert percentile(values, 0.50) == 5
        assert percentile(values, 1.0) == 10

    def test_single_value(self):
        assert percentile([42.0], 0.99) == 42.0

    def test_unsorted_input(self):
        assert percentile([5, 1, 3, 2, 4], 0.8) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.9)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_bad_pct_rejected(self, bad):
        with pytest.raises(ValueError):
            percentile([1.0], bad)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=32), min_size=1, max_size=50),
           st.floats(min_value=0.01, max_value=1.0))
    def test_percentile_is_a_member_and_bounds(self, values, pct):
        result = percentile(values, pct)
        assert result in values
        # At least pct of values are <= result (nearest-rank definition).
        at_or_below = sum(1 for v in values if v <= result)
        assert at_or_below >= math.ceil(pct * len(values))
