"""Query log bookkeeping and serialization."""

import json

import pytest

from repro.core.logging import QueryLog
from repro.core.query import Query, QuerySample, QuerySampleResponse


def _query(qid, indices, first_sample_id=None):
    base = first_sample_id if first_sample_id is not None else qid * 100
    samples = tuple(
        QuerySample(id=base + i, index=idx) for i, idx in enumerate(indices)
    )
    return Query(id=qid, samples=samples)


def _responses(query, payload=None):
    return [QuerySampleResponse(s.id, payload) for s in query.samples]


def test_issue_then_complete():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, issue_time=1.0)
    log.record_completion(query, 1.5, _responses(query), keep_responses=False)
    assert log.query_count == 1
    assert log.outstanding == 0
    assert log.latencies() == [0.5]


def test_double_issue_rejected():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, 1.0)
    with pytest.raises(ValueError):
        log.record_issue(query, 2.0)


def test_completion_without_issue_rejected():
    log = QueryLog()
    with pytest.raises(ValueError):
        log.record_completion(_query(1, [4]), 1.0, [], keep_responses=False)


def test_double_completion_rejected():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, 1.0)
    log.record_completion(query, 1.5, _responses(query), keep_responses=False)
    with pytest.raises(ValueError):
        log.record_completion(query, 2.0, _responses(query),
                              keep_responses=False)


def test_completion_before_issue_time_rejected():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, 2.0)
    with pytest.raises(ValueError):
        log.record_completion(query, 1.0, _responses(query),
                              keep_responses=False)


def test_wrong_response_count_rejected():
    log = QueryLog()
    query = _query(1, [4, 5])
    log.record_issue(query, 1.0)
    with pytest.raises(ValueError):
        log.record_completion(query, 1.5, _responses(query)[:1],
                              keep_responses=False)


def test_issued_samples_counts_samples_not_queries():
    log = QueryLog()
    log.record_issue(_query(1, [1, 2, 3]), 0.0)
    log.record_issue(_query(2, [4]), 0.0)
    assert log.issued_samples == 4


def test_responses_dropped_by_default():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, 1.0)
    log.record_completion(query, 1.5, _responses(query, "data"),
                          keep_responses=False)
    assert log.logged_responses() == {}


def test_responses_kept_when_requested():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, 1.0)
    log.record_completion(query, 1.5, _responses(query, "data"),
                          keep_responses=True)
    assert log.logged_responses() == {100: "data"}


def test_probabilistic_logging_keeps_roughly_expected_fraction():
    log = QueryLog(log_sample_probability=0.5, seed=7)
    for qid in range(1, 201):
        query = _query(qid, [qid])
        log.record_issue(query, 0.0)
        log.record_completion(query, 0.1, _responses(query, qid),
                              keep_responses=False)
    kept = len(log.logged_responses())
    assert 60 < kept < 140  # ~100 expected


def test_bad_probability_rejected():
    with pytest.raises(ValueError):
        QueryLog(log_sample_probability=1.5)


def test_sample_index_maps():
    log = QueryLog()
    query = _query(1, [10, 20])
    log.record_issue(query, 0.0)
    assert log.sample_index_of(100) == 10
    assert log.sample_index_map() == {100: 10, 101: 20}
    with pytest.raises(KeyError):
        log.sample_index_of(999)


def test_records_in_issue_order():
    log = QueryLog()
    for qid in (3, 1, 2):
        log.record_issue(_query(qid, [qid]), float(qid))
    assert [r.query.id for r in log.records()] == [3, 1, 2]


def test_jsonl_serialization():
    log = QueryLog()
    query = _query(1, [4])
    log.record_issue(query, 1.0, scheduled_time=0.9)
    log.record_completion(query, 1.5, _responses(query, [1, 2]),
                          keep_responses=True)
    lines = log.to_jsonl().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["query_id"] == 1
    assert entry["sample_indices"] == [4]
    assert entry["scheduled_time"] == 0.9
    assert entry["responses"] == [[1, 2]]
