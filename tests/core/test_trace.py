"""Chrome trace export."""

import json

import pytest

from repro.core.logging import QueryLog
from repro.core.query import Query, QuerySample, QuerySampleResponse
from repro.core.trace import to_chrome_trace, write_chrome_trace


def build_log(intervals):
    """``intervals``: list of (issue, completion) pairs."""
    log = QueryLog()
    for i, (issue, completion) in enumerate(intervals, start=1):
        query = Query(id=i, samples=(QuerySample(id=i * 10, index=0),))
        log.record_issue(query, issue)
        log.record_completion(
            query, completion,
            [QuerySampleResponse(i * 10, None)], keep_responses=False)
    return log


def events_of(trace_json):
    return [e for e in json.loads(trace_json)["traceEvents"]
            if e["ph"] == "X"]


def test_one_event_per_query():
    log = build_log([(0.0, 0.1), (0.2, 0.25), (0.3, 0.5)])
    events = events_of(to_chrome_trace(log))
    assert len(events) == 3


def test_timestamps_in_microseconds():
    log = build_log([(0.001, 0.003)])
    event = events_of(to_chrome_trace(log))[0]
    assert event["ts"] == pytest.approx(1_000.0)
    assert event["dur"] == pytest.approx(2_000.0)


def test_nonoverlapping_queries_share_a_track():
    log = build_log([(0.0, 0.1), (0.2, 0.3), (0.4, 0.5)])
    events = events_of(to_chrome_trace(log))
    assert {e["tid"] for e in events} == {0}


def test_overlapping_queries_get_distinct_tracks():
    log = build_log([(0.0, 0.5), (0.1, 0.6), (0.2, 0.7)])
    events = events_of(to_chrome_trace(log))
    assert len({e["tid"] for e in events}) == 3


def test_track_reuse_after_completion():
    log = build_log([(0.0, 0.1), (0.05, 0.2), (0.3, 0.4)])
    events = events_of(to_chrome_trace(log))
    # Third query starts after both finished: reuses a freed track.
    assert events[2]["tid"] in {0, 1}


def test_metadata_and_args():
    log = build_log([(0.0, 0.1)])
    payload = json.loads(to_chrome_trace(log, process_name="my-sut"))
    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"][0]
    assert meta["args"]["name"] == "my-sut"
    event = events_of(to_chrome_trace(log))[0]
    assert event["args"]["samples"] == 1


def test_write_to_file(tmp_path):
    log = build_log([(0.0, 0.1)])
    path = tmp_path / "trace.json"
    write_chrome_trace(log, path)
    assert json.loads(path.read_text())["displayTimeUnit"] == "ms"


def test_end_to_end_run_traces(echo_qsl):
    from repro.core import Scenario, TestSettings, run_benchmark
    from tests.conftest import FixedLatencySUT

    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=20, min_duration=0.1)
    result = run_benchmark(FixedLatencySUT(0.002), echo_qsl, settings)
    events = events_of(to_chrome_trace(result.log))
    assert len(events) == result.metrics.query_count


# -- network spans -------------------------------------------------------------


def test_transport_timing_accounting():
    from repro.core.trace import TransportTiming

    timing = TransportTiming(
        send_time=1.0, recv_time=1.010, server_recv=100.0, server_send=100.004)
    assert timing.round_trip == pytest.approx(0.010)
    assert timing.server_time == pytest.approx(0.004)
    assert timing.network_time == pytest.approx(0.006)


def test_network_time_never_negative_on_clock_skew():
    from repro.core.trace import TransportTiming

    timing = TransportTiming(
        send_time=1.0, recv_time=1.001, server_recv=100.0, server_send=100.005)
    assert timing.network_time == 0.0


def test_transport_spans_emitted_on_network_process():
    from repro.core.trace import TransportTiming

    log = build_log([(0.0, 0.010), (0.020, 0.030)])
    transport = {
        1: TransportTiming(send_time=0.0, recv_time=0.009,
                           server_recv=50.0, server_send=50.004),
    }
    trace = json.loads(to_chrome_trace(log, transport=transport))
    events = trace["traceEvents"]
    net = [e for e in events if e.get("pid") == 2]
    names = {e["name"] for e in net}
    assert "rpc query 1" in names
    assert "send" in names and "receive" in names
    rpc = next(e for e in net if e["name"] == "rpc query 1")
    assert rpc["dur"] == pytest.approx(9_000.0)
    assert rpc["args"]["server_time_ms"] == pytest.approx(4.0)
    # Query 2 has no transport record: only query 1 gets network spans.
    assert not any("query 2" in e["name"] for e in net)


def test_no_network_process_without_transport():
    log = build_log([(0.0, 0.010)])
    trace = json.loads(to_chrome_trace(log))
    assert not any(e.get("pid") == 2 for e in trace["traceEvents"])
