"""Run-validity rules."""

import pytest

from repro.core.config import Scenario, Task, TestMode, TestSettings
from repro.core.logging import QueryLog
from repro.core.query import Query, QuerySample, QuerySampleResponse
from repro.core.scenarios import DriverStats
from repro.core.validation import validate_run


def build_log(latencies, samples_per_query=1, start=0.0, gap=0.1):
    """A log of sequential queries with the given latencies."""
    log = QueryLog()
    sample_id = 0
    for i, latency in enumerate(latencies):
        sample_id += samples_per_query
        samples = tuple(
            QuerySample(id=sample_id - j, index=j)
            for j in range(samples_per_query)
        )
        query = Query(id=i + 1, samples=samples)
        issue = start + i * gap
        log.record_issue(query, issue)
        responses = [QuerySampleResponse(s.id, None) for s in samples]
        log.record_completion(query, issue + latency, responses,
                              keep_responses=False)
    return log


def stats(start=0.0, **kwargs):
    s = DriverStats(start_time=start)
    for key, value in kwargs.items():
        setattr(s, key, value)
    return s


class TestGeneralRules:
    def test_valid_baseline(self):
        log = build_log([0.01] * 20, gap=0.1)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert report.valid, report.reasons

    def test_too_few_queries(self):
        log = build_log([0.01] * 5, gap=1.0)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=100, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("minimum is 100" in r for r in report.reasons)

    def test_too_short_duration(self):
        log = build_log([0.001] * 200, gap=0.001)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=60.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("below minimum" in r for r in report.reasons)

    def test_outstanding_queries_invalidate(self):
        log = build_log([0.01] * 10, gap=0.2)
        query = Query(id=999, samples=(QuerySample(9999, 0),))
        log.record_issue(query, 5.0)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=5, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("never completed" in r for r in report.reasons)

    def test_empty_run_invalid(self):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        report = validate_run(QueryLog(), settings, stats())
        assert not report.valid

    def test_default_minimums_are_the_paper_rules(self):
        # 1,024 queries is not enough for the 60-second rule at 1 ms.
        log = build_log([0.001] * 1024, gap=0.001)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        report = validate_run(log, settings, stats())
        assert not report.valid


class TestAccuracyModeExemptions:
    def test_short_accuracy_run_is_valid(self):
        log = build_log([0.01] * 3, gap=0.1)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        report = validate_run(log, settings, stats())
        assert report.valid


class TestServerRules:
    def _settings(self, bound=0.05, **kwargs):
        return TestSettings(scenario=Scenario.SERVER,
                            server_latency_bound=bound,
                            min_query_count=10, min_duration=1.0, **kwargs)

    def test_within_budget(self):
        # 1 violation in 200 queries = 0.5% <= 1%.
        latencies = [0.01] * 199 + [0.09]
        log = build_log(latencies, gap=0.01)
        report = validate_run(log, self._settings(), stats())
        assert report.valid

    def test_over_budget(self):
        # 5 violations in 100 = 5% > 1%.
        latencies = [0.01] * 95 + [0.09] * 5
        log = build_log(latencies, gap=0.05)
        report = validate_run(log, self._settings(), stats())
        assert not report.valid
        assert any("bound" in r for r in report.reasons)

    def test_translation_gets_3_percent_budget(self):
        # 2% violations: fails vision budget, passes translation budget.
        latencies = [0.01] * 98 + [0.26, 0.26]
        log = build_log(latencies, gap=0.05)
        settings = TestSettings(scenario=Scenario.SERVER,
                                task=Task.MACHINE_TRANSLATION,
                                min_query_count=10, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert report.valid

    def test_violation_fraction_in_details(self):
        latencies = [0.01] * 99 + [0.09]
        log = build_log(latencies, gap=0.05)
        report = validate_run(log, self._settings(), stats())
        assert report.details["violation_fraction"] == pytest.approx(0.01)


class TestMultiStreamRules:
    def _settings(self):
        return TestSettings(scenario=Scenario.MULTI_STREAM,
                            multistream_interval=0.05,
                            min_query_count=10, min_duration=1.0)

    def test_no_skips_valid(self):
        log = build_log([0.01] * 50, gap=0.05)
        report = validate_run(log, self._settings(), stats())
        assert report.valid

    def test_skips_over_budget(self):
        log = build_log([0.01] * 50, gap=0.05)
        skip_stats = stats(skipped_intervals={1: 1, 2: 2}, total_skipped_ticks=3)
        report = validate_run(log, self._settings(), skip_stats)
        assert not report.valid
        assert any("skipped" in r for r in report.reasons)

    def test_skips_within_budget(self):
        log = build_log([0.01] * 200, gap=0.05)
        skip_stats = stats(skipped_intervals={1: 1}, total_skipped_ticks=1)
        report = validate_run(log, self._settings(), skip_stats)
        assert report.valid
        assert report.details["skipped_query_fraction"] == pytest.approx(1 / 200)


class TestOfflineRules:
    def test_minimum_samples(self):
        log = build_log([10.0], samples_per_query=100)
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=500, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("samples" in r for r in report.reasons)

    def test_enough_samples_valid(self):
        log = build_log([10.0], samples_per_query=500)
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=500, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert report.valid
