"""Run-validity rules."""

import pytest

from repro.core.config import Scenario, Task, TestMode, TestSettings
from repro.core.logging import QueryLog
from repro.core.query import Query, QuerySample, QuerySampleResponse
from repro.core.scenarios import DriverStats
from repro.core.validation import validate_run


def build_log(latencies, samples_per_query=1, start=0.0, gap=0.1):
    """A log of sequential queries with the given latencies."""
    log = QueryLog()
    sample_id = 0
    for i, latency in enumerate(latencies):
        sample_id += samples_per_query
        samples = tuple(
            QuerySample(id=sample_id - j, index=j)
            for j in range(samples_per_query)
        )
        query = Query(id=i + 1, samples=samples)
        issue = start + i * gap
        log.record_issue(query, issue)
        responses = [QuerySampleResponse(s.id, None) for s in samples]
        log.record_completion(query, issue + latency, responses,
                              keep_responses=False)
    return log


def stats(start=0.0, **kwargs):
    s = DriverStats(start_time=start)
    for key, value in kwargs.items():
        setattr(s, key, value)
    return s


class TestGeneralRules:
    def test_valid_baseline(self):
        log = build_log([0.01] * 20, gap=0.1)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert report.valid, report.reasons

    def test_too_few_queries(self):
        log = build_log([0.01] * 5, gap=1.0)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=100, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("minimum is 100" in r for r in report.reasons)

    def test_too_short_duration(self):
        log = build_log([0.001] * 200, gap=0.001)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=60.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("below minimum" in r for r in report.reasons)

    def test_outstanding_queries_invalidate(self):
        log = build_log([0.01] * 10, gap=0.2)
        query = Query(id=999, samples=(QuerySample(9999, 0),))
        log.record_issue(query, 5.0)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=5, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("never completed" in r for r in report.reasons)

    def test_empty_run_invalid(self):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        report = validate_run(QueryLog(), settings, stats())
        assert not report.valid

    def test_default_minimums_are_the_paper_rules(self):
        # 1,024 queries is not enough for the 60-second rule at 1 ms.
        log = build_log([0.001] * 1024, gap=0.001)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        report = validate_run(log, settings, stats())
        assert not report.valid


class TestAccuracyModeExemptions:
    def test_short_accuracy_run_is_valid(self):
        log = build_log([0.01] * 3, gap=0.1)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        report = validate_run(log, settings, stats())
        assert report.valid


class TestServerRules:
    def _settings(self, bound=0.05, **kwargs):
        return TestSettings(scenario=Scenario.SERVER,
                            server_latency_bound=bound,
                            min_query_count=10, min_duration=1.0, **kwargs)

    def test_within_budget(self):
        # 1 violation in 200 queries = 0.5% <= 1%.
        latencies = [0.01] * 199 + [0.09]
        log = build_log(latencies, gap=0.01)
        report = validate_run(log, self._settings(), stats())
        assert report.valid

    def test_over_budget(self):
        # 5 violations in 100 = 5% > 1%.
        latencies = [0.01] * 95 + [0.09] * 5
        log = build_log(latencies, gap=0.05)
        report = validate_run(log, self._settings(), stats())
        assert not report.valid
        assert any("bound" in r for r in report.reasons)

    def test_translation_gets_3_percent_budget(self):
        # 2% violations: fails vision budget, passes translation budget.
        latencies = [0.01] * 98 + [0.26, 0.26]
        log = build_log(latencies, gap=0.05)
        settings = TestSettings(scenario=Scenario.SERVER,
                                task=Task.MACHINE_TRANSLATION,
                                min_query_count=10, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert report.valid

    def test_violation_fraction_in_details(self):
        latencies = [0.01] * 99 + [0.09]
        log = build_log(latencies, gap=0.05)
        report = validate_run(log, self._settings(), stats())
        assert report.details["violation_fraction"] == pytest.approx(0.01)


class TestMultiStreamRules:
    def _settings(self):
        return TestSettings(scenario=Scenario.MULTI_STREAM,
                            multistream_interval=0.05,
                            min_query_count=10, min_duration=1.0)

    def test_no_skips_valid(self):
        log = build_log([0.01] * 50, gap=0.05)
        report = validate_run(log, self._settings(), stats())
        assert report.valid

    def test_skips_over_budget(self):
        log = build_log([0.01] * 50, gap=0.05)
        skip_stats = stats(skipped_intervals={1: 1, 2: 2}, total_skipped_ticks=3)
        report = validate_run(log, self._settings(), skip_stats)
        assert not report.valid
        assert any("skipped" in r for r in report.reasons)

    def test_skips_within_budget(self):
        log = build_log([0.01] * 200, gap=0.05)
        skip_stats = stats(skipped_intervals={1: 1}, total_skipped_ticks=1)
        report = validate_run(log, self._settings(), skip_stats)
        assert report.valid
        assert report.details["skipped_query_fraction"] == pytest.approx(1 / 200)


class TestValidationEdgeCases:
    """Exact INVALID reason strings for degenerate runs."""

    def test_zero_completions_names_the_reason(self):
        log = QueryLog()
        query = Query(id=1, samples=(QuerySample(1, 0),))
        log.record_issue(query, 0.5)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert "no queries completed" in report.reasons
        assert "1 queries never completed" in report.reasons

    def test_truly_empty_log_reports_no_completions(self):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        report = validate_run(QueryLog(), settings, stats())
        assert report.reasons == ["no queries completed"]

    def test_accuracy_mode_with_outstanding_is_invalid(self):
        log = build_log([0.01] * 5, gap=0.1)
        stuck = Query(id=998, samples=(QuerySample(9998, 0),))
        log.record_issue(stuck, 0.7)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert "1 queries never completed" in report.reasons

    def test_offline_below_default_minimum_samples(self):
        # No offline_sample_count override: the paper's 24,576 floor applies.
        log = build_log([10.0], samples_per_query=100)
        settings = TestSettings(scenario=Scenario.OFFLINE, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert ("offline processed 100 samples, minimum is 24576"
                in report.reasons)


class TestMisbehaviorReasons:
    def _settings(self):
        return TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=5, min_duration=0.0)

    def test_outstanding_issue_times_in_details(self):
        log = build_log([0.01] * 5, gap=0.1)
        for i, issue_time in enumerate((0.55, 0.75)):
            stuck = Query(id=900 + i, samples=(QuerySample(9900 + i, 0),))
            log.record_issue(stuck, issue_time)
        report = validate_run(log, self._settings(), stats())
        assert not report.valid
        assert "2 queries never completed" in report.reasons
        assert report.details["outstanding_issue_times"] == [0.55, 0.75]
        assert report.details["first_stuck_issue_time"] == 0.55
        assert report.details["last_stuck_issue_time"] == 0.75

    def test_outstanding_issue_times_are_capped(self):
        log = build_log([0.01] * 5, gap=0.1)
        for i in range(50):
            stuck = Query(id=900 + i, samples=(QuerySample(9900 + i, 0),))
            log.record_issue(stuck, 1.0 + i)
        report = validate_run(log, self._settings(), stats())
        assert len(report.details["outstanding_issue_times"]) == 16
        assert report.details["last_stuck_issue_time"] == 50.0

    def test_duplicate_completions_reason(self):
        log = build_log([0.01] * 5, gap=0.1)
        record = log.records()[0]
        responses = [QuerySampleResponse(s.id, None)
                     for s in record.query.samples]
        status = log.observe_completion(record.query, 0.9, responses,
                                        keep_responses=False)
        assert status == "duplicate"
        report = validate_run(log, self._settings(), stats())
        assert not report.valid
        assert "1 duplicate completions" in report.reasons
        assert report.details["first_duplicate_time"] == 0.9

    def test_unsolicited_responses_reason(self):
        log = build_log([0.01] * 5, gap=0.1)
        phantom = Query(id=777, samples=(QuerySample(7777, 0),))
        status = log.observe_completion(
            phantom, 0.3, [QuerySampleResponse(7777, None)],
            keep_responses=False)
        assert status == "unsolicited"
        report = validate_run(log, self._settings(), stats())
        assert not report.valid
        assert ("1 unsolicited responses (completions for queries never "
                "issued)" in report.reasons)

    def test_malformed_responses_reason_names_first_offender(self):
        log = build_log([0.01] * 5, gap=0.1)
        bad = Query(id=55, samples=(QuerySample(5555, 0),))
        log.record_issue(bad, 0.6)
        log.record_failure(bad, 0.65, "expected 1 responses, got 3")
        report = validate_run(log, self._settings(), stats())
        assert not report.valid
        assert ("1 malformed responses (e.g. query 55: expected 1 "
                "responses, got 3)" in report.reasons)
        assert report.details["failure_reasons"] == [
            "expected 1 responses, got 3"]

    def test_watchdog_reason_includes_time_and_outstanding(self):
        log = build_log([0.01] * 5, gap=0.1)
        stuck = Query(id=60, samples=(QuerySample(6000, 0),))
        log.record_issue(stuck, 0.8)
        wd_stats = stats(watchdog_fired=True, watchdog_time=30.0)
        report = validate_run(log, self._settings(), wd_stats)
        assert not report.valid
        assert ("watchdog fired at 30.000s with 1 queries outstanding"
                in report.reasons)
        assert report.details["watchdog_time"] == 30.0

    def test_aborted_reason(self):
        log = build_log([0.01] * 5, gap=0.1)
        report = validate_run(log, self._settings(),
                              stats(aborted="callback exploded at t=1.2"))
        assert not report.valid
        assert "run aborted: callback exploded at t=1.2" in report.reasons

    def test_clean_run_has_no_misbehavior_reasons(self):
        log = build_log([0.01] * 5, gap=0.1)
        report = validate_run(log, self._settings(), stats())
        assert report.valid, report.reasons


class TestOfflineRules:
    def test_minimum_samples(self):
        log = build_log([10.0], samples_per_query=100)
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=500, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert not report.valid
        assert any("samples" in r for r in report.reasons)

    def test_enough_samples_valid(self):
        log = build_log([10.0], samples_per_query=500)
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=500, min_duration=1.0)
        report = validate_run(log, settings, stats())
        assert report.valid
