"""Rule constants and settings resolution (Tables II, III, V)."""

import pytest

from repro.core.config import (
    MIN_DURATION_SECONDS,
    OFFLINE_MIN_SAMPLES,
    SERVER_REQUIRED_RUNS,
    SINGLE_STREAM_MIN_QUERIES,
    Scenario,
    Task,
    TestMode,
    TestSettings,
    task_rules,
)


class TestScenarioMetadata:
    def test_five_scenarios(self):
        # The paper's four plus the session scenario (docs/sessions.md).
        assert len(list(Scenario)) == 5

    def test_short_names(self):
        assert {s.short_name for s in Scenario} == \
            {"SS", "MS", "S", "O", "SE"}

    def test_metric_names_mention_the_right_quantity(self):
        assert "latency" in Scenario.SINGLE_STREAM.metric_name
        assert "streams" in Scenario.MULTI_STREAM.metric_name
        assert "queries per second" in Scenario.SERVER.metric_name
        assert "samples/second" in Scenario.OFFLINE.metric_name
        assert "sessions" in Scenario.SESSION.metric_name


class TestTaskMetadata:
    def test_five_tasks(self):
        assert len(list(Task)) == 5

    def test_areas(self):
        assert Task.MACHINE_TRANSLATION.area == "language"
        assert all(
            t.area == "vision" for t in Task if t is not Task.MACHINE_TRANSLATION
        )


class TestTableIII:
    """The latency constraints exactly as published."""

    @pytest.mark.parametrize("task,interval_ms,bound_ms", [
        (Task.IMAGE_CLASSIFICATION_HEAVY, 50, 15),
        (Task.IMAGE_CLASSIFICATION_LIGHT, 50, 10),
        (Task.OBJECT_DETECTION_HEAVY, 66, 100),
        (Task.OBJECT_DETECTION_LIGHT, 50, 10),
        (Task.MACHINE_TRANSLATION, 100, 250),
    ])
    def test_constraints(self, task, interval_ms, bound_ms):
        rules = task_rules(task)
        assert rules.multistream_interval == pytest.approx(interval_ms / 1e3)
        assert rules.server_latency_bound == pytest.approx(bound_ms / 1e3)

    def test_violation_budgets(self):
        # 1% for vision, 3% for translation (Section III-C).
        for task in Task:
            rules = task_rules(task)
            expected = 0.03 if task is Task.MACHINE_TRANSLATION else 0.01
            assert rules.max_violation_fraction == expected

    def test_tail_percentiles(self):
        assert task_rules(Task.MACHINE_TRANSLATION).tail_latency_percentile == 0.97
        assert task_rules(Task.IMAGE_CLASSIFICATION_HEAVY).tail_latency_percentile == 0.99


class TestTableV:
    def test_latency_bounded_query_counts(self):
        for task in Task:
            expected = 90_112 if task is Task.MACHINE_TRANSLATION else 270_336
            assert task_rules(task).latency_bounded_query_count == expected

    def test_single_stream_and_offline_minimums(self):
        assert SINGLE_STREAM_MIN_QUERIES == 1_024
        assert OFFLINE_MIN_SAMPLES == 24_576

    def test_run_rules(self):
        assert MIN_DURATION_SECONDS == 60.0
        assert SERVER_REQUIRED_RUNS == 5


class TestSettingsResolution:
    def test_defaults_by_scenario(self):
        ss = TestSettings(scenario=Scenario.SINGLE_STREAM)
        assert ss.resolved_min_query_count == 1_024
        off = TestSettings(scenario=Scenario.OFFLINE)
        assert off.resolved_min_query_count == 1
        assert off.resolved_offline_samples == 24_576

    def test_task_rules_flow_through(self):
        settings = TestSettings(scenario=Scenario.SERVER,
                                task=Task.MACHINE_TRANSLATION)
        assert settings.resolved_server_latency_bound == 0.250
        assert settings.resolved_min_query_count == 90_112
        assert settings.resolved_tail_percentile == 0.97
        assert settings.resolved_max_violation_fraction == 0.03

    def test_explicit_overrides_win(self):
        settings = TestSettings(
            scenario=Scenario.SERVER,
            task=Task.IMAGE_CLASSIFICATION_HEAVY,
            server_latency_bound=0.123,
            min_query_count=10,
            min_duration=1.0,
        )
        assert settings.resolved_server_latency_bound == 0.123
        assert settings.resolved_min_query_count == 10
        assert settings.resolved_min_duration == 1.0

    def test_missing_task_and_bound_raises(self):
        settings = TestSettings(scenario=Scenario.SERVER)
        with pytest.raises(ValueError):
            _ = settings.resolved_server_latency_bound

    def test_missing_task_and_interval_raises(self):
        settings = TestSettings(scenario=Scenario.MULTI_STREAM)
        with pytest.raises(ValueError):
            _ = settings.resolved_multistream_interval

    def test_default_tail_percentile_without_task(self):
        settings = TestSettings(scenario=Scenario.SERVER,
                                server_latency_bound=0.1)
        assert settings.resolved_tail_percentile == 0.99

    def test_with_overrides_returns_new_object(self):
        settings = TestSettings(scenario=Scenario.SERVER)
        other = settings.with_overrides(server_target_qps=42.0)
        assert other.server_target_qps == 42.0
        assert settings.server_target_qps == 1.0

    def test_invalid_qps_rejected(self):
        with pytest.raises(ValueError):
            TestSettings(scenario=Scenario.SERVER, server_target_qps=0.0)

    def test_invalid_samples_per_query_rejected(self):
        with pytest.raises(ValueError):
            TestSettings(scenario=Scenario.MULTI_STREAM,
                         multistream_samples_per_query=0)

    def test_default_mode_is_performance(self):
        assert TestSettings(scenario=Scenario.OFFLINE).mode is TestMode.PERFORMANCE


class TestSettingsInputValidation:
    """Every nonsensical knob is rejected at construction time."""

    def test_negative_qps_rejected(self):
        with pytest.raises(ValueError, match="server_target_qps"):
            TestSettings(scenario=Scenario.SERVER, server_target_qps=-1.0)

    def test_zero_multistream_interval_rejected(self):
        with pytest.raises(ValueError, match="multistream_interval"):
            TestSettings(scenario=Scenario.MULTI_STREAM,
                         multistream_interval=0.0)

    def test_negative_multistream_interval_rejected(self):
        with pytest.raises(ValueError, match="multistream_interval"):
            TestSettings(scenario=Scenario.MULTI_STREAM,
                         multistream_interval=-0.05)

    def test_zero_server_latency_bound_rejected(self):
        with pytest.raises(ValueError, match="server_latency_bound"):
            TestSettings(scenario=Scenario.SERVER, server_latency_bound=0.0)

    @pytest.mark.parametrize("percentile", [0.0, 1.0, -0.5, 1.5])
    def test_tail_percentile_outside_unit_interval_rejected(self, percentile):
        with pytest.raises(ValueError, match="tail_latency_percentile"):
            TestSettings(scenario=Scenario.SERVER,
                         tail_latency_percentile=percentile)

    def test_zero_min_query_count_rejected(self):
        with pytest.raises(ValueError, match="min_query_count"):
            TestSettings(scenario=Scenario.SINGLE_STREAM, min_query_count=0)

    def test_negative_min_duration_rejected(self):
        with pytest.raises(ValueError, match="min_duration"):
            TestSettings(scenario=Scenario.SINGLE_STREAM, min_duration=-1.0)

    def test_nan_min_duration_rejected(self):
        with pytest.raises(ValueError, match="min_duration"):
            TestSettings(scenario=Scenario.SINGLE_STREAM,
                         min_duration=float("nan"))

    def test_zero_offline_sample_count_rejected(self):
        with pytest.raises(ValueError, match="offline_sample_count"):
            TestSettings(scenario=Scenario.OFFLINE, offline_sample_count=0)

    def test_zero_performance_sample_count_rejected(self):
        with pytest.raises(ValueError, match="performance_sample_count"):
            TestSettings(scenario=Scenario.SINGLE_STREAM,
                         performance_sample_count=0)

    def test_zero_watchdog_timeout_rejected(self):
        with pytest.raises(ValueError, match="watchdog_timeout"):
            TestSettings(scenario=Scenario.SINGLE_STREAM,
                         watchdog_timeout=0.0)

    def test_negative_watchdog_timeout_rejected(self):
        with pytest.raises(ValueError, match="watchdog_timeout"):
            TestSettings(scenario=Scenario.SINGLE_STREAM,
                         watchdog_timeout=-5.0)

    def test_valid_watchdog_accepted(self):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                watchdog_timeout=30.0)
        assert settings.watchdog_timeout == 30.0

    def test_with_overrides_revalidates(self):
        settings = TestSettings(scenario=Scenario.SERVER)
        with pytest.raises(ValueError):
            settings.with_overrides(server_target_qps=0.0)
