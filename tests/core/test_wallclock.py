"""WallClock and the measured-time (realtime) run path.

The virtual-time loop is pinned down in ``test_events.py``; these tests
cover what realtime mode adds: monotonic reads, interruptible sleeping,
cross-thread ``post``, past-time clamping, and - most importantly - that
a LoadGen run over a ``WallClock`` produces the *same* traffic and
verdict as the identical run over a ``VirtualClock``.
"""

import threading
import time

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock, WallClock
from repro.core.loadgen import run_benchmark


class TestWallClock:
    def test_monotonic_nondecreasing(self):
        clock = WallClock()
        readings = [clock.now() for _ in range(200)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_tracks_real_elapsed_time(self):
        clock = WallClock()
        start = clock.now()
        time.sleep(0.02)
        assert clock.now() - start >= 0.015

    def test_loop_over_wall_clock_is_realtime(self):
        assert EventLoop(WallClock()).realtime is True
        assert EventLoop(VirtualClock()).realtime is False
        assert EventLoop().realtime is False


class TestRealtimeLoop:
    def test_events_fire_in_order_at_real_times(self):
        loop = EventLoop(WallClock())
        fired = []
        start = loop.now
        loop.schedule_after(0.010, lambda: fired.append(("b", loop.now)))
        loop.schedule_after(0.001, lambda: fired.append(("a", loop.now)))
        loop.run()
        assert [name for name, _ in fired] == ["a", "b"]
        assert fired[1][1] - start >= 0.009

    def test_past_schedule_is_clamped_not_an_error(self):
        loop = EventLoop(WallClock())
        fired = []
        # A timestamp computed "before now" is routine under measured
        # time; the virtual loop's ValueError would be wrong here.
        loop.schedule(loop.now - 5.0, lambda: fired.append(loop.now))
        loop.run()
        assert len(fired) == 1

    def test_virtual_loop_still_rejects_past_times(self):
        loop = EventLoop(VirtualClock(start=10.0))
        with pytest.raises(ValueError):
            loop.schedule(1.0, lambda: None)

    def test_post_from_another_thread_wakes_the_sleep(self):
        loop = EventLoop(WallClock())
        fired = []
        # Keep the loop asleep on a far-future event; the posted
        # callback must interrupt that sleep, not wait it out.
        guard = loop.schedule_after(30.0, lambda: fired.append("guard"))

        def poster():
            time.sleep(0.02)
            loop.post(lambda: (fired.append("posted"), guard.cancel(),
                               loop.stop()))

        thread = threading.Thread(target=poster)
        thread.start()
        start = time.monotonic()
        loop.run()
        thread.join()
        assert fired == ["posted"]
        assert time.monotonic() - start < 5.0

    def test_posted_callbacks_run_in_order_before_heap_events(self):
        loop = EventLoop(VirtualClock())
        order = []
        loop.schedule(0.0, lambda: order.append("heap"))
        loop.post(lambda: order.append("post-1"))
        loop.post(lambda: order.append("post-2"))
        loop.run()
        assert order == ["post-1", "post-2", "heap"]


class FixedLatencyWallSUT:
    """Local copy of the conftest SUT: fine under either clock."""

    def __init__(self, latency):
        from repro.core.query import QuerySampleResponse

        self.latency = latency
        self.name = "fixed-wall"
        self._make_response = QuerySampleResponse

    def start_run(self, loop, responder):
        self.loop = loop
        self.responder = responder

    def issue_query(self, query):
        responses = [
            self._make_response(s.id, s.index) for s in query.samples
        ]
        self.loop.schedule_after(
            self.latency, lambda: self.responder(query, responses))

    def flush(self):
        pass


def parity_settings():
    return TestSettings(
        scenario=Scenario.SERVER,
        server_target_qps=200.0,
        server_latency_bound=0.05,
        min_query_count=20,
        min_duration=0.0,
        watchdog_timeout=20.0,
    )


class TestMeasuredRunPath:
    def test_wall_clock_run_completes_valid(self, echo_qsl):
        result = run_benchmark(
            FixedLatencyWallSUT(0.002), echo_qsl, parity_settings(),
            clock=WallClock())
        assert result.valid, result.validity.reasons
        assert result.metrics.query_count >= 20
        # Latencies are measured, so they sit at-or-above the service
        # time rather than exactly on it.
        assert result.metrics.latency_mean >= 0.002

    def test_wall_and_virtual_issue_identical_traffic(self, echo_qsl):
        """Same seed, same scenario: the measured run must draw the same
        queries in the same order as the deterministic one - the clock
        changes *when*, never *what*."""
        settings = parity_settings()
        virtual = run_benchmark(
            FixedLatencyWallSUT(0.002), echo_qsl, settings)
        wall = run_benchmark(
            FixedLatencyWallSUT(0.002), echo_qsl, settings,
            clock=WallClock())
        assert virtual.valid and wall.valid
        v_seq = [r.query.sample_indices
                 for r in virtual.log.completed_records()]
        w_seq = [r.query.sample_indices
                 for r in wall.log.completed_records()]
        assert v_seq[:20] == w_seq[:20]
        assert virtual.metrics.query_count == wall.metrics.query_count

    def test_wall_run_timestamps_are_monotonic(self, echo_qsl):
        result = run_benchmark(
            FixedLatencyWallSUT(0.001), echo_qsl, parity_settings(),
            clock=WallClock())
        records = result.log.completed_records()
        issues = [r.issue_time for r in records]
        assert all(b >= a for a, b in zip(issues, issues[1:]))
        assert all(r.completion_time >= r.issue_time for r in records)

    def test_watchdog_still_ends_a_stuck_wall_run(self, echo_qsl):
        class BlackHoleSUT:
            name = "black-hole"

            def start_run(self, loop, responder):
                pass

            def issue_query(self, query):
                pass  # never completes

            def flush(self):
                pass

        settings = TestSettings(
            scenario=Scenario.SERVER,
            server_target_qps=500.0,
            min_query_count=5,
            min_duration=0.0,
            watchdog_timeout=0.5,
        )
        start = time.monotonic()
        result = run_benchmark(BlackHoleSUT(), echo_qsl, settings,
                               clock=WallClock())
        elapsed = time.monotonic() - start
        assert not result.valid
        assert result.stats.watchdog_fired
        assert 0.4 <= elapsed < 5.0
