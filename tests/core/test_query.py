"""Query, sample, and record types."""

import pytest

from repro.core.query import (
    Query,
    QueryRecord,
    QuerySample,
    QuerySampleResponse,
)


def _query(n=2, qid=1):
    samples = tuple(QuerySample(id=i + 1, index=i * 10) for i in range(n))
    return Query(id=qid, samples=samples)


def test_query_requires_samples():
    with pytest.raises(ValueError):
        Query(id=1, samples=())


def test_sample_count_and_indices():
    query = _query(3)
    assert query.sample_count == 3
    assert query.sample_indices == (0, 10, 20)


def test_query_samples_are_immutable_tuples():
    query = _query()
    assert isinstance(query.samples, tuple)
    sample = query.samples[0]
    assert sample.id == 1 and sample.index == 0


def test_duplicate_indices_allowed():
    samples = (QuerySample(1, 7), QuerySample(2, 7))
    query = Query(id=1, samples=samples)
    assert query.sample_indices == (7, 7)


def test_response_equality_and_repr():
    a = QuerySampleResponse(1, "x")
    b = QuerySampleResponse(1, "x")
    c = QuerySampleResponse(2, "x")
    assert a == b
    assert a != c
    assert "sample_id=1" in repr(a)


def test_record_latency():
    record = QueryRecord(query=_query(), issue_time=1.0, completion_time=1.25)
    assert record.latency == pytest.approx(0.25)
    assert record.completed


def test_record_latency_before_completion_raises():
    record = QueryRecord(query=_query(), issue_time=1.0)
    assert not record.completed
    with pytest.raises(ValueError):
        _ = record.latency
