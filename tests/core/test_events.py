"""Event loop and clock behaviour."""

import pytest

from repro.core.events import EventLoop, RunAbortedError, VirtualClock, WallClock


def test_virtual_clock_starts_at_zero():
    assert VirtualClock().now() == 0.0


def test_virtual_clock_advances():
    clock = VirtualClock()
    clock.advance_to(1.5)
    assert clock.now() == 1.5


def test_virtual_clock_rejects_backwards():
    clock = VirtualClock(start=2.0)
    with pytest.raises(ValueError):
        clock.advance_to(1.0)


def test_wall_clock_is_monotonic():
    clock = WallClock()
    assert clock.now() <= clock.now()


def test_events_run_in_time_order():
    loop = EventLoop()
    seen = []
    loop.schedule(2.0, lambda: seen.append("b"))
    loop.schedule(1.0, lambda: seen.append("a"))
    loop.schedule(3.0, lambda: seen.append("c"))
    loop.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    loop = EventLoop()
    seen = []
    for tag in range(5):
        loop.schedule(1.0, lambda tag=tag: seen.append(tag))
    loop.run()
    assert seen == [0, 1, 2, 3, 4]


def test_clock_matches_event_time_during_callback():
    loop = EventLoop()
    observed = []
    loop.schedule(4.5, lambda: observed.append(loop.now))
    loop.run()
    assert observed == [4.5]


def test_callbacks_can_schedule_more_events():
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.schedule_after(1.0, lambda: seen.append("second"))

    loop.schedule(1.0, first)
    loop.run()
    assert seen == ["first", "second"]
    assert loop.now == 2.0


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule(0.5, lambda: None)


def test_schedule_after_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule_after(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    seen = []
    handle = loop.schedule(1.0, lambda: seen.append("x"))
    handle.cancel()
    loop.run()
    assert seen == []
    assert handle.cancelled


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: seen.append("a"))
    loop.schedule(5.0, lambda: seen.append("b"))
    loop.run(until=2.0)
    assert seen == ["a"]
    assert loop.now == 2.0
    loop.run()
    assert seen == ["a", "b"]


def test_stop_halts_processing():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: (seen.append("a"), loop.stop()))
    loop.schedule(2.0, lambda: seen.append("b"))
    loop.run()
    assert seen == ["a"]
    assert loop.pending() == 1


class TestRunAbortedError:
    def test_callback_exception_becomes_run_aborted(self):
        loop = EventLoop()

        def explode():
            raise KeyError("boom")

        loop.schedule(2.5, explode)
        with pytest.raises(RunAbortedError) as excinfo:
            loop.run()
        err = excinfo.value
        assert err.time == 2.5
        assert "explode" in err.origin
        assert isinstance(err.cause, KeyError)
        assert "t=2.500000s" in str(err)

    def test_existing_run_aborted_error_propagates_unwrapped(self):
        loop = EventLoop()
        original = RunAbortedError("inner abort", time=1.0, origin="x")

        def reraise():
            raise original

        loop.schedule(1.0, reraise)
        with pytest.raises(RunAbortedError) as excinfo:
            loop.run()
        assert excinfo.value is original

    def test_loop_state_is_consistent_after_abort(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(2.0, lambda: (_ for _ in ()).throw(ValueError("bad")))
        loop.schedule(3.0, lambda: seen.append("c"))
        with pytest.raises(RunAbortedError):
            loop.run()
        assert seen == ["a"]
        assert loop.now == 2.0
        assert loop.pending() == 1  # the event after the abort survives


def test_pending_and_next_event_time():
    loop = EventLoop()
    assert loop.pending() == 0
    assert loop.next_event_time() is None
    handle = loop.schedule(3.0, lambda: None)
    loop.schedule(7.0, lambda: None)
    assert loop.pending() == 2
    assert loop.next_event_time() == 3.0
    handle.cancel()
    assert loop.pending() == 1
    assert loop.next_event_time() == 7.0
