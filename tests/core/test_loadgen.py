"""End-to-end LoadGen runs against a deterministic SUT."""

import pytest

from repro.core import (
    LoadGen,
    Scenario,
    TestMode,
    TestSettings,
    run_benchmark,
)
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase

from tests.conftest import EchoQSL, FixedLatencySUT


class TestSingleStreamRuns:
    def test_valid_run(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=100, min_duration=0.5)
        result = run_benchmark(FixedLatencySUT(0.005), echo_qsl, settings)
        assert result.valid
        assert result.primary_metric == pytest.approx(0.005)
        assert result.metrics.query_count == 100

    def test_duration_dominates_when_longer(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=1.0)
        result = run_benchmark(FixedLatencySUT(0.01), echo_qsl, settings)
        assert result.metrics.query_count == 100


class TestServerRuns:
    def test_valid_when_under_bound(self, echo_qsl, quick_server):
        result = run_benchmark(FixedLatencySUT(0.001), echo_qsl, quick_server)
        assert result.valid

    def test_invalid_when_over_bound(self, echo_qsl, quick_server):
        result = run_benchmark(FixedLatencySUT(0.2), echo_qsl, quick_server)
        assert not result.valid


class TestOfflineRuns:
    def test_throughput_metric(self, echo_qsl, quick_offline):
        class BatchSUT(SutBase):
            """Serial device: 1 ms per sample, one query at a time."""

            busy_until = 0.0

            def issue_query(self, query):
                responses = [QuerySampleResponse(s.id, None)
                             for s in query.samples]
                start = max(self.loop.now, self.busy_until)
                finish = start + 0.001 * query.sample_count
                self.busy_until = finish
                self.loop.schedule(
                    finish, lambda: self.complete(query, responses))

        result = run_benchmark(BatchSUT("batch"), echo_qsl, quick_offline)
        assert result.valid
        assert result.primary_metric == pytest.approx(1000.0, rel=0.05)


class TestMultiStreamRuns:
    def test_n_streams(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                                multistream_interval=0.05,
                                multistream_samples_per_query=8,
                                min_query_count=30, min_duration=1.0)
        result = run_benchmark(FixedLatencySUT(0.02), echo_qsl, settings)
        assert result.valid
        assert result.primary_metric == 8.0


class TestLoadedSet:
    def test_performance_run_loads_limited_set(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=50, min_duration=0.1,
                                performance_sample_count=16)
        result = run_benchmark(FixedLatencySUT(0.001), echo_qsl, settings)
        assert len(result.loaded_indices) == 16
        used = {i for r in result.log.records()
                for i in r.query.sample_indices}
        assert used <= set(result.loaded_indices)

    def test_loaded_set_deterministic_per_seed(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=0.1,
                                performance_sample_count=8)
        a = run_benchmark(FixedLatencySUT(0.001), echo_qsl, settings)
        b = run_benchmark(FixedLatencySUT(0.001), echo_qsl, settings)
        assert a.loaded_indices == b.loaded_indices
        c = run_benchmark(FixedLatencySUT(0.001), echo_qsl,
                          settings.with_overrides(seed=1))
        assert c.loaded_indices != a.loaded_indices

    def test_samples_unloaded_after_run(self):
        qsl = EchoQSL()
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=0.1)
        run_benchmark(FixedLatencySUT(0.001), qsl, settings)
        assert qsl.loaded == set()


class TestAccuracyMode:
    def test_covers_whole_dataset_and_keeps_responses(self):
        qsl = EchoQSL(total=300)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        result = run_benchmark(FixedLatencySUT(0.001), qsl, settings)
        assert result.valid
        assert result.metrics.query_count == 300
        responses = result.log.logged_responses()
        assert len(responses) == 300
        index_map = result.log.sample_index_map()
        # Echo SUT returns each sample's index as the payload.
        assert all(index_map[sid] == data for sid, data in responses.items())


class TestMisbehavingSuts:
    def test_sut_that_never_completes_yields_invalid(self, echo_qsl):
        """A black-hole SUT must invalidate the run, not crash the harness."""
        class BlackHole(SutBase):
            def issue_query(self, query):
                pass

        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=10, min_duration=0.0)
        result = run_benchmark(BlackHole("hole"), echo_qsl, settings)
        assert not result.valid
        assert any("never completed" in r for r in result.validity.reasons)
        assert result.validity.details["first_stuck_issue_time"] == 0.0

    def test_sut_whose_callback_raises_yields_invalid_aborted(self, echo_qsl):
        """An exception inside a scheduled callback aborts the run with a
        structured INVALID verdict instead of escaping to the caller."""
        class Exploder(SutBase):
            def issue_query(self, query):
                def blow_up():
                    raise RuntimeError("backend segfault")
                self.loop.schedule_after(0.001, blow_up)

        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=5, min_duration=0.0)
        result = run_benchmark(Exploder("boom"), echo_qsl, settings)
        assert not result.valid
        aborted = [r for r in result.validity.reasons if "run aborted" in r]
        assert aborted and "backend segfault" in aborted[0]
        assert "blow_up" in aborted[0]  # the origin callback is named

    def test_empty_qsl_rejected(self):
        qsl = EchoQSL(total=0)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM)
        with pytest.raises(ValueError):
            run_benchmark(FixedLatencySUT(), qsl, settings)

    def test_performance_sample_count_beyond_library_rejected(self):
        qsl = EchoQSL(total=50)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=10, min_duration=0.1,
                                performance_sample_count=51)
        with pytest.raises(ValueError, match="exceeds"):
            run_benchmark(FixedLatencySUT(), qsl, settings)


class TestWatchdog:
    def test_healthy_run_unaffected_by_watchdog(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=20, min_duration=0.1,
                                watchdog_timeout=100.0)
        result = run_benchmark(FixedLatencySUT(0.002), echo_qsl, settings)
        assert result.valid
        assert not result.stats.watchdog_fired

    def test_watchdog_terminates_stuck_run(self, echo_qsl):
        class SlowerEveryQuery(SutBase):
            """Latency doubles per query: the run effectively wedges."""

            issued = 0

            def issue_query(self, query):
                self.issued += 1
                latency = 0.001 * (2 ** self.issued)
                responses = [QuerySampleResponse(s.id, None)
                             for s in query.samples]
                self.loop.schedule_after(
                    latency, lambda: self.complete(query, responses))

        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=1000, min_duration=0.0,
                                watchdog_timeout=2.0)
        result = run_benchmark(SlowerEveryQuery("slow"), echo_qsl, settings)
        assert not result.valid
        assert result.stats.watchdog_fired
        assert result.stats.watchdog_time == pytest.approx(2.0)
        assert any("watchdog fired" in r for r in result.validity.reasons)


class TestResultSummary:
    def test_summary_mentions_verdict_and_metric(self, echo_qsl):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=20, min_duration=0.1)
        result = run_benchmark(FixedLatencySUT(0.002), echo_qsl, settings)
        text = result.summary()
        assert "VALID" in text
        assert "single_stream" in text

    def test_invalid_summary_lists_reasons(self, echo_qsl, quick_server):
        result = run_benchmark(FixedLatencySUT(0.2), echo_qsl, quick_server)
        assert "INVALID" in result.summary()
        assert any(reason in result.summary()
                   for reason in result.validity.reasons)
