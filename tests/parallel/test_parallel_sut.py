"""ParallelSUT end to end: determinism at any worker count, modelled
scaling, crash-to-QueryFailure, and composition with ResilientSUT."""

import numpy as np
import pytest

from repro.core.events import WallClock
from repro.core.config import Scenario, TestMode, TestSettings
from repro.core.loadgen import run_benchmark
from repro.faults import FaultPlan, FaultType, ResilientSUT, RetryPolicy
from repro.metrics import MetricsRegistry
from repro.parallel import BatchingPolicy, ParallelSUT


class ArrayQSL:
    """Samples are small arrays whose contents encode their index."""

    name = "arrays"

    def __init__(self, size=64):
        self._size = size

    @property
    def total_sample_count(self):
        return self._size

    @property
    def performance_sample_count(self):
        return self._size

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return np.full((4,), float(index), dtype=np.float32)


def affine_factory():
    def predict(samples):
        return np.stack([3.0 * s[0] + 1.0 for s in samples])
    return predict


def accuracy_settings(samples=48):
    return TestSettings(
        scenario=Scenario.OFFLINE, mode=TestMode.ACCURACY,
        offline_sample_count=samples, min_duration=0.0, min_query_count=1)


def run_accuracy(workers, *, qsl=None, samples=48, **sut_kwargs):
    qsl = qsl or ArrayQSL(samples)
    sut = ParallelSUT(
        affine_factory, qsl, workers=workers, seed=9,
        policy=BatchingPolicy(max_batch_size=16, max_wait=0.001),
        **sut_kwargs)
    try:
        result = run_benchmark(sut, qsl, accuracy_settings(samples))
    finally:
        sut.close()
    return result


def outputs_of(result):
    return [
        (resp.sample_id, float(resp.data))
        for record in result.log.completed_records()
        for resp in record.responses
    ]


class TestDeterminism:
    def test_identical_accuracy_outputs_for_1_2_4_workers(self):
        """The ISSUE 4 acceptance bar: same seed, same outputs, no
        matter how many processes did the arithmetic."""
        baseline = outputs_of(run_accuracy(workers=1))
        assert len(baseline) == 48
        assert baseline == outputs_of(run_accuracy(workers=2))
        assert baseline == outputs_of(run_accuracy(workers=4))
        # And the arithmetic is right, not merely consistent.
        assert baseline[0][1] == 1.0  # 3 * 0 + 1
        assert baseline[-1][1] == 3.0 * 47 + 1.0

    def test_repeat_runs_are_bit_identical(self):
        assert outputs_of(run_accuracy(2)) == outputs_of(run_accuracy(2))


class TestModelledScaling:
    def test_service_time_model_scales_with_workers(self):
        """Per-shard service model: the batch finishes at the slowest
        shard, so N workers cut the virtual duration ~N-fold."""
        durations = {}
        for workers in (1, 2, 4):
            result = run_accuracy(
                workers, service_time_fn=lambda n: 1e-4 * n)
            durations[workers] = result.metrics.duration
        assert durations[1] == pytest.approx(2 * durations[2], rel=0.2)
        assert durations[1] == pytest.approx(4 * durations[4], rel=0.3)


class TestRealtimeLoop:
    def test_serves_under_wall_clock(self):
        """The realtime path (CLI serve / netbench backends) completes
        at zero extra delay: the wall time already elapsed in-dispatch."""
        qsl = ArrayQSL(8)
        sut = ParallelSUT(
            affine_factory, qsl, workers=2, seed=9,
            policy=BatchingPolicy(max_batch_size=8, max_wait=0.0))
        try:
            result = run_benchmark(
                sut, qsl, accuracy_settings(8), clock=WallClock())
        finally:
            sut.close()
        assert len(outputs_of(result)) == 8


class TestCrashHandling:
    def test_certain_crash_fails_queries_not_harness(self):
        """Every attempt crashes a worker: the run ends INVALID with
        QueryFailures recorded, and the harness survives."""
        plan = FaultPlan.single(FaultType.STALL, rate=1.0, seed=13)
        result = run_accuracy(workers=2, samples=16, crash_plan=plan)
        assert not result.valid
        assert result.log.completed_records() == []

    def test_resilient_sut_retries_crashed_batches_to_success(self):
        """The composition the fault layer promises: crash ->
        QueryFailure -> ResilientSUT retry -> fresh decision -> done.
        Single-stream accuracy walks 32 queries, 13 of which draw a
        worker-kill on their first attempt with this plan seed."""
        qsl = ArrayQSL(32)
        plan = FaultPlan.single(FaultType.STALL, rate=0.5, seed=21)
        inner = ParallelSUT(
            affine_factory, qsl, workers=2, seed=9,
            policy=BatchingPolicy(max_batch_size=8, max_wait=0.001),
            crash_plan=plan)
        sut = ResilientSUT(
            inner, RetryPolicy(max_attempts=8, backoff_base=0.001))
        settings = TestSettings(
            scenario=Scenario.SINGLE_STREAM, mode=TestMode.ACCURACY,
            min_duration=0.0, min_query_count=1)
        try:
            result = run_benchmark(sut, qsl, settings)
        finally:
            inner.close()
        assert result.valid, result.validity
        assert len(outputs_of(result)) == 32
        # Crashes really happened; the retries papered over them.
        assert inner.pool.stats.restarts > 0

    def test_crashed_pool_recovers_for_the_next_run(self):
        qsl = ArrayQSL(8)
        sut = ParallelSUT(
            affine_factory, qsl, workers=2, seed=9,
            policy=BatchingPolicy(max_batch_size=8, max_wait=0.0))
        try:
            sut.pool.start()
            sut.pool.kill_worker(0)
            result = run_benchmark(sut, qsl, accuracy_settings(8))
        finally:
            sut.close()
        assert len(outputs_of(result)) == 8
        assert sut.pool.stats.restarts == 1


class TestInstruments:
    def test_parallel_metric_families_are_populated(self):
        registry = MetricsRegistry()
        run_accuracy(workers=2, registry=registry)
        # Offline accuracy mode issues one query carrying all samples,
        # so exactly one batch is dispatched.
        assert registry.get("parallel_dispatches_total").value == 1
        assert registry.get("parallel_batch_size_samples").count == 1
        assert registry.get(
            "parallel_batch_size_samples").percentile(0.5) == 48
        transfer = dict()
        for labels, child in registry.get(
                "parallel_transfer_bytes_total").series():
            transfer[labels["direction"]] = child.value
        assert transfer["in"] > 0
        assert transfer["out"] > 0
        per_worker = {
            labels["worker"]: child.value
            for labels, child in registry.get(
                "parallel_worker_samples_total").series()
        }
        assert sum(per_worker.values()) == 48
        assert set(per_worker) == {"0", "1"}
