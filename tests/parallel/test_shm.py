"""Shared-memory arena: pack/unpack fidelity, growth, ownership."""

import numpy as np
import pytest

from repro.parallel.shm import ShmArena, as_arrays, attach, packed_size


@pytest.fixture
def arena():
    a = ShmArena("test", capacity=1 << 12)
    yield a
    a.close()


class TestPackUnpack:
    def test_roundtrip_preserves_values_dtypes_shapes(self, arena):
        arrays = [
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.array([[1, 2], [3, 4]], dtype=np.int64),
            np.zeros((5,), dtype=np.uint8),
            np.array(3.5, dtype=np.float64).reshape(()),
        ]
        specs = arena.write(arrays)
        out = arena.read_own(specs)
        assert len(out) == len(arrays)
        for orig, copy in zip(arrays, out):
            assert copy.dtype == orig.dtype
            assert copy.shape == orig.shape
            np.testing.assert_array_equal(copy, orig)

    def test_reads_are_copies_not_views(self, arena):
        first = arena.write([np.full((8,), 7.0, dtype=np.float32)])
        out = arena.read_own(first)[0]
        # Overwrite the arena with the next dispatch's data.
        arena.write([np.zeros((8,), dtype=np.float32)])
        np.testing.assert_array_equal(out, np.full((8,), 7.0))

    def test_non_contiguous_input_is_packed_correctly(self, arena):
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        sliced = base[:, ::2]  # non-contiguous view
        out = arena.read_own(arena.write([sliced]))[0]
        np.testing.assert_array_equal(out, sliced)

    def test_packed_size_is_aligned(self):
        arrays = [np.zeros(1, dtype=np.uint8), np.zeros(65, dtype=np.uint8)]
        assert packed_size(arrays) == 64 + 128


class TestGrowth:
    def test_grows_by_recreation_under_new_name(self, arena):
        small_name = arena.name
        big = np.zeros((1 << 14,), dtype=np.float64)  # 128 KiB > 4 KiB
        specs = arena.write([big])
        assert arena.name != small_name
        assert arena.capacity >= big.nbytes
        assert arena.grown == 1
        np.testing.assert_array_equal(arena.read_own(specs)[0], big)
        # The superseded segment is unlinked: attaching must fail.
        with pytest.raises(FileNotFoundError):
            attach(small_name)

    def test_no_growth_when_capacity_suffices(self, arena):
        name = arena.name
        for _ in range(5):
            arena.write([np.zeros((16,), dtype=np.float32)])
        assert arena.name == name
        assert arena.grown == 0


class TestAttach:
    def test_reader_sees_writer_data(self, arena):
        payload = np.arange(10, dtype=np.int32)
        specs = arena.write([payload])
        seg = attach(arena.name)
        try:
            np.testing.assert_array_equal(
                ShmArena.read(seg, specs)[0], payload)
        finally:
            seg.close()


class TestAsArrays:
    def test_all_numpy_passes_through(self):
        arrays = [np.zeros(2), np.ones(3)]
        assert as_arrays(arrays) == arrays

    def test_mixed_or_empty_returns_none(self):
        assert as_arrays([np.zeros(2), "not-an-array"]) is None
        assert as_arrays([1, 2, 3]) is None
        assert as_arrays([]) is None
