"""Tests for the process-parallel execution backend."""
