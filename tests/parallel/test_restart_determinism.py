"""Respawned workers get a fresh, deterministic RNG stream.

A worker respawned after a crash must not replay its predecessor's
random choices (the crash may have been caused by them), but the
replacement stream must still be a pure function of
``(seed, index, restart_count)`` so crashy runs stay reproducible.
"""

import numpy as np

from repro.parallel.pool import WorkerPool


def seeded_factory(rng):
    token = float(rng.random())  # fixed per worker process at build time

    def predict(samples):
        return [np.asarray(s) * 0 + token for s in samples]
    return predict


def token(pool, worker):
    shards = [[] for _ in range(pool.workers)]
    shards[worker] = [np.zeros(1)]
    outcomes = pool.run_shards(shards)
    return float(outcomes[worker].outputs[0][0])


def test_respawn_rotates_the_stream_deterministically():
    def crash_sequence():
        with WorkerPool(seeded_factory, workers=2, seed=42) as pool:
            before = token(pool, 0)
            pool.kill_worker(0)
            pool.ensure_alive()
            first_respawn = token(pool, 0)
            pool.kill_worker(0)
            pool.ensure_alive()
            second_respawn = token(pool, 0)
            bystander = token(pool, 1)
        return before, first_respawn, second_respawn, bystander

    a = crash_sequence()
    b = crash_sequence()
    # Reproducible: the same kill/restart history yields the same draws.
    assert a == b
    before, first, second, bystander = a
    # Fresh stream per incarnation: no replayed randomness...
    assert len({before, first, second}) == 3
    # ...and no bleed into the worker that never crashed.
    assert bystander not in {before, first, second}


def test_restart_zero_stream_is_unchanged_by_the_restart_feature():
    # The original (seed, index) derivation is pinned: a pool that never
    # crashes must draw exactly what it always drew.
    expected = float(
        np.random.default_rng(np.random.SeedSequence((42, 0))).random())
    with WorkerPool(seeded_factory, workers=1, seed=42) as pool:
        assert token(pool, 0) == expected


def test_respawn_stream_matches_the_documented_derivation():
    expected = float(np.random.default_rng(
        np.random.SeedSequence((42, 0, 1))).random())
    with WorkerPool(seeded_factory, workers=1, seed=42) as pool:
        token(pool, 0)  # warm
        pool.kill_worker(0)
        pool.ensure_alive()
        assert token(pool, 0) == expected


def test_closing_resets_restart_history():
    # close() ends the run; a pool reopened from scratch is a fresh run
    # whose workers are back on their restart-0 streams.
    with WorkerPool(seeded_factory, workers=1, seed=7) as pool:
        fresh = token(pool, 0)
        pool.kill_worker(0)
        pool.ensure_alive()
        assert token(pool, 0) != fresh
    with WorkerPool(seeded_factory, workers=1, seed=7) as pool:
        assert token(pool, 0) == fresh
