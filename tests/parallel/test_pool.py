"""WorkerPool: sharding, transports, crash detection, deterministic seeding."""

import numpy as np
import pytest

from repro.parallel.pool import (
    WorkerCrashed,
    WorkerPool,
    shard_evenly,
)


def doubler_factory():
    def predict(samples):
        return [s * 2 for s in samples]
    return predict


def stacked_factory():
    def predict(samples):
        return np.stack(samples) * 2  # one (N, ...) result array
    return predict


def seeded_factory(rng):
    token = float(rng.random())  # fixed per worker at build time

    def predict(samples):
        return [np.asarray(s) * 0 + token for s in samples]
    return predict


class TestShardEvenly:
    def test_contiguous_near_even_split(self):
        assert shard_evenly(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]

    def test_fewer_items_than_shards_leaves_empties(self):
        assert shard_evenly([1, 2], 4) == [[1], [2], [], []]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_evenly([1], 0)


class TestRunShards:
    def test_outputs_come_back_in_shard_order(self):
        samples = [np.full((4,), i, dtype=np.float32) for i in range(10)]
        with WorkerPool(doubler_factory, workers=3, seed=1) as pool:
            outcomes = pool.run_shards(shard_evenly(samples, 3))
        flat = [o for outcome in outcomes for o in outcome.outputs]
        assert len(flat) == 10
        for i, out in enumerate(flat):
            np.testing.assert_array_equal(out, np.full((4,), 2 * i))

    def test_stacked_ndarray_outputs_are_split_per_sample(self):
        samples = [np.full((2,), i, dtype=np.float32) for i in range(5)]
        with WorkerPool(stacked_factory, workers=2, seed=1) as pool:
            outcomes = pool.run_shards(shard_evenly(samples, 2))
        flat = [o for outcome in outcomes for o in outcome.outputs]
        assert [float(o[0]) for o in flat] == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_empty_shards_are_skipped(self):
        samples = [np.zeros((2,), dtype=np.float32)]
        with WorkerPool(doubler_factory, workers=4, seed=1) as pool:
            outcomes = pool.run_shards(shard_evenly(samples, 4))
        assert [len(o.outputs) for o in outcomes] == [1, 0, 0, 0]

    def test_shm_transport_accounts_transfer_bytes(self):
        samples = [np.zeros((16,), dtype=np.float32) for _ in range(4)]
        with WorkerPool(doubler_factory, workers=2, seed=1) as pool:
            outcomes = pool.run_shards(shard_evenly(samples, 2))
            assert pool.stats.shm_dispatches == 2
            assert pool.stats.pickle_dispatches == 0
            assert pool.stats.bytes_in == 4 * 64  # 64 B-aligned blocks
        assert all(o.via_shm for o in outcomes)

    def test_non_array_samples_fall_back_to_pickle(self):
        with WorkerPool(doubler_factory, workers=1, seed=1) as pool:
            outcomes = pool.run_shards([[3, 5]])
            assert pool.stats.pickle_dispatches == 1
        assert outcomes[0].outputs == [6, 10]
        assert not outcomes[0].via_shm

    def test_pickle_transport_forced(self):
        samples = [np.ones((4,), dtype=np.float32)]
        with WorkerPool(doubler_factory, workers=1, seed=1,
                        transport="pickle") as pool:
            outcomes = pool.run_shards([samples])
            assert pool.stats.shm_dispatches == 0
            assert pool.stats.pickle_dispatches == 1
        np.testing.assert_array_equal(outcomes[0].outputs[0], samples[0] * 2)

    def test_result_arena_overflow_recovers_via_pickle_then_grows(self):
        def expander_factory():
            def predict(samples):
                # Outputs 64x larger than inputs: overflows the result
                # arena the first time.
                return [np.tile(s, 64) for s in samples]
            return predict

        samples = [np.ones((256,), dtype=np.float64)]
        with WorkerPool(expander_factory, workers=1, seed=1) as pool:
            first = pool.run_shards([samples])
            second = pool.run_shards([samples])
        assert first[0].outputs[0].shape == (256 * 64,)
        # After the parent grew the arena, the reply travels via shm.
        assert second[0].via_shm


class TestDeterministicSeeding:
    def test_worker_rng_is_pure_function_of_seed_and_index(self):
        def tokens(pool_seed):
            with WorkerPool(seeded_factory, workers=3,
                            seed=pool_seed) as pool:
                outcomes = pool.run_shards(
                    [[np.zeros(1)], [np.zeros(1)], [np.zeros(1)]])
            return [float(o.outputs[0][0]) for o in outcomes]

        first = tokens(42)
        second = tokens(42)
        other = tokens(43)
        assert first == second          # reproducible across pools
        assert len(set(first)) == 3     # distinct streams per worker
        assert first != other           # seed actually matters


class TestCrashes:
    def test_killed_worker_surfaces_as_worker_crashed(self):
        samples = [np.zeros((4,), dtype=np.float32) for _ in range(4)]
        with WorkerPool(doubler_factory, workers=2, seed=1) as pool:
            pool.run_shards(shard_evenly(samples, 2))  # warm
            pool.kill_worker(1)
            with pytest.raises(WorkerCrashed) as info:
                pool.run_shards(shard_evenly(samples, 2))
            assert info.value.index == 1
            assert pool.stats.crashes == 1

    def test_ensure_alive_respawns_and_pool_recovers(self):
        samples = [np.full((4,), 3.0, dtype=np.float32)] * 4
        with WorkerPool(doubler_factory, workers=2, seed=1) as pool:
            pool.run_shards(shard_evenly(samples, 2))
            pool.kill_worker(0)
            assert pool.alive_workers == 1
            assert pool.ensure_alive() == 1
            assert pool.alive_workers == 2
            outcomes = pool.run_shards(shard_evenly(samples, 2))
            assert pool.stats.restarts == 1
        flat = [o for outcome in outcomes for o in outcome.outputs]
        assert len(flat) == 4

    def test_worker_exception_is_a_crash_with_traceback(self):
        def broken_factory():
            def predict(samples):
                raise RuntimeError("kaboom in the worker")
            return predict

        with WorkerPool(broken_factory, workers=1, seed=1) as pool:
            with pytest.raises(WorkerCrashed) as info:
                pool.run_shards([[np.zeros(1)]])
        assert "kaboom in the worker" in str(info.value)

    def test_short_output_count_is_a_crash(self):
        def short_factory():
            def predict(samples):
                return [np.zeros(1)]  # always one output
            return predict

        with WorkerPool(short_factory, workers=1, seed=1) as pool:
            with pytest.raises(WorkerCrashed, match="2 samples"):
                pool.run_shards([[np.zeros(1), np.zeros(1)]])

    def test_job_timeout_kills_and_raises(self):
        def sleeper_factory():
            import time

            def predict(samples):
                time.sleep(30.0)
                return samples
            return predict

        with WorkerPool(sleeper_factory, workers=1, seed=1,
                        job_timeout=0.3) as pool:
            with pytest.raises(WorkerCrashed, match="timeout"):
                pool.run_shards([[np.zeros(1)]])


class TestValidation:
    def test_rejects_bad_worker_count_and_transport(self):
        with pytest.raises(ValueError):
            WorkerPool(doubler_factory, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(doubler_factory, workers=1, transport="carrier-pigeon")

    def test_rejects_more_shards_than_workers(self):
        with WorkerPool(doubler_factory, workers=1, seed=1) as pool:
            with pytest.raises(ValueError):
                pool.run_shards([[1], [2]])
