"""DynamicBatcher under the virtual clock: size/wait triggers, no splits."""

import pytest

from repro.core.events import EventLoop
from repro.core.query import Query, QuerySample
from repro.parallel.batching import BatchingPolicy, DynamicBatcher


def query(qid, samples=1):
    return Query(
        id=qid,
        samples=tuple(
            QuerySample(id=qid * 100 + i, index=i) for i in range(samples)
        ),
        issue_time=0.0,
    )


class Harness:
    def __init__(self, policy):
        self.loop = EventLoop()
        self.batches = []
        self.batcher = DynamicBatcher(self.loop, policy, self.batches.append)


class TestPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait=-1.0)


class TestTriggers:
    def test_fires_immediately_at_max_batch_size(self):
        h = Harness(BatchingPolicy(max_batch_size=3, max_wait=10.0))
        for qid in (1, 2, 3):
            h.batcher.add(query(qid))
        assert len(h.batches) == 1
        assert [q.id for q, _ in h.batches[0]] == [1, 2, 3]
        assert h.batcher.pending_samples == 0

    def test_fires_at_max_wait_with_partial_batch(self):
        h = Harness(BatchingPolicy(max_batch_size=100, max_wait=0.005))
        h.batcher.add(query(1))
        h.batcher.add(query(2))
        h.loop.run()
        assert len(h.batches) == 1
        assert [q.id for q, _ in h.batches[0]] == [1, 2]
        # The batch fired exactly at the wait bound, virtual time.
        assert h.loop.now == pytest.approx(0.005)

    def test_zero_wait_dispatches_each_query_alone(self):
        h = Harness(BatchingPolicy(max_batch_size=100, max_wait=0.0))
        h.batcher.add(query(1))
        h.batcher.add(query(2))
        assert [len(b) for b in h.batches] == [1, 1]

    def test_waits_are_exact_under_virtual_clock(self):
        h = Harness(BatchingPolicy(max_batch_size=2, max_wait=1.0))
        h.batcher.add(query(1))
        h.loop.schedule_after(0.25, lambda: h.batcher.add(query(2)))
        h.loop.run()
        waits = {q.id: w for q, w in h.batches[0]}
        assert waits[1] == pytest.approx(0.25)
        assert waits[2] == pytest.approx(0.0)


class TestWholeQueries:
    def test_queries_are_never_split(self):
        h = Harness(BatchingPolicy(max_batch_size=4, max_wait=10.0))
        h.batcher.add(query(1, samples=3))
        h.batcher.add(query(2, samples=3))  # 6 samples >= 4: fires
        assert len(h.batches) == 1
        batch = h.batches[0]
        assert [q.sample_count for q, _ in batch] == [3, 3]

    def test_oversized_query_ships_alone(self):
        h = Harness(BatchingPolicy(max_batch_size=4, max_wait=10.0))
        h.batcher.add(query(1, samples=9))
        assert len(h.batches) == 1
        assert h.batches[0][0][0].sample_count == 9


class TestFlush:
    def test_flush_dispatches_leftovers_and_cancels_timer(self):
        h = Harness(BatchingPolicy(max_batch_size=100, max_wait=5.0))
        h.batcher.add(query(1))
        h.batcher.flush()
        assert len(h.batches) == 1
        h.loop.run()  # the cancelled timer must not re-fire
        assert len(h.batches) == 1

    def test_flush_with_nothing_pending_is_a_noop(self):
        h = Harness(BatchingPolicy())
        h.batcher.flush()
        assert h.batches == []
