"""Submission schema, checker rules, review pipeline, reporting."""

import pytest

from repro.accuracy.checker import AccuracyReport
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.models.quantization import NumericFormat
from repro.submission import (
    APPROVED_NUMERICS,
    BenchmarkResult,
    Category,
    Division,
    Severity,
    Submission,
    SummaryScoreRefused,
    SystemDescription,
    check_submission,
    format_submission,
    review_round,
    summary_score,
)

from tests.conftest import EchoQSL, FixedLatencySUT


def system_description(**kwargs):
    defaults = dict(
        name="test-system", submitter="repro", processor="CPU",
        accelerator_count=0, host_cpu_count=2, software_stack="numpy",
        memory_gb=16.0, numerics=(NumericFormat.FP32,),
    )
    defaults.update(kwargs)
    return SystemDescription(**defaults)


def performance_result(valid=True):
    qsl = EchoQSL()
    latency = 0.002 if valid else 0.3   # GNMT server bound is 250 ms
    settings = TestSettings(
        scenario=Scenario.SERVER, task=Task.MACHINE_TRANSLATION,
        server_target_qps=100.0, min_query_count=128, min_duration=0.5,
    )
    return run_benchmark(FixedLatencySUT(latency), qsl, settings)


def accuracy_report(passed=True):
    return AccuracyReport(metric_name="SacreBLEU", value=70.0 if passed else 10.0,
                          target=60.0, passed=passed, sample_count=100)


def benchmark_result(valid=True, passed=True, **kwargs):
    return BenchmarkResult(
        task=Task.MACHINE_TRANSLATION, scenario=Scenario.SERVER,
        performance=performance_result(valid), accuracy=accuracy_report(passed),
        **kwargs,
    )


def submission(results=None, division=Division.CLOSED, **kwargs):
    if results is None:
        results = [benchmark_result()]
    return Submission(
        system=kwargs.pop("system", system_description()),
        division=division,
        category=Category.AVAILABLE,
        results=results,
        **kwargs,
    )


class TestSchema:
    def test_valid_system_description(self):
        desc = system_description()
        assert desc.numerics == (NumericFormat.FP32,)

    def test_invalid_descriptions_rejected(self):
        with pytest.raises(ValueError):
            system_description(accelerator_count=-1)
        with pytest.raises(ValueError):
            system_description(host_cpu_count=0)
        with pytest.raises(ValueError):
            system_description(numerics=())

    def test_result_lookup(self):
        sub = submission()
        assert sub.result_for(Task.MACHINE_TRANSLATION, Scenario.SERVER)
        assert sub.result_for(Task.IMAGE_CLASSIFICATION_HEAVY,
                              Scenario.SERVER) is None

    def test_approved_numerics_match_section_iv(self):
        assert NumericFormat.INT4 in APPROVED_NUMERICS
        assert NumericFormat.FP11 in APPROVED_NUMERICS
        assert len(APPROVED_NUMERICS) == 9


class TestChecker:
    def test_clean_submission_passes(self):
        report = check_submission(submission())
        assert report.passed, [str(i) for i in report.issues]

    def test_empty_submission_fails(self):
        report = check_submission(submission(results=[]))
        assert not report.passed
        assert any(i.code == "empty" for i in report.issues)

    def test_invalid_performance_run_flagged(self):
        report = check_submission(submission([benchmark_result(valid=False)]))
        assert not report.passed
        assert any(i.code == "invalid-run" for i in report.errors)

    def test_quality_miss_fails_closed_division(self):
        report = check_submission(submission([benchmark_result(passed=False)]))
        assert any(i.code == "quality-target" for i in report.errors)

    def test_quality_miss_is_warning_in_open_division(self):
        sub = submission([benchmark_result(passed=False)],
                         division=Division.OPEN,
                         open_deviations="custom INT4 model")
        report = check_submission(sub)
        assert report.passed
        assert any(i.code == "quality-deviation" for i in report.issues)

    def test_retraining_prohibited_in_closed(self):
        result = benchmark_result(retrained=True)
        report = check_submission(submission([result]))
        assert any(i.code == "retraining" for i in report.errors)

    def test_retraining_allowed_in_open(self):
        result = benchmark_result(retrained=True)
        sub = submission([result], division=Division.OPEN,
                         open_deviations="retrained with distillation")
        assert check_submission(sub).passed

    def test_caching_always_prohibited(self):
        result = benchmark_result(caching_enabled=True)
        sub = submission([result], division=Division.OPEN,
                         open_deviations="doc")
        report = check_submission(sub)
        assert any(i.code == "caching" for i in report.errors)

    def test_open_division_requires_documentation(self):
        sub = submission(division=Division.OPEN)
        report = check_submission(sub)
        assert any(i.code == "open-undocumented" for i in report.errors)

    def test_unregistered_numerics_flagged(self):
        class FakeFormat:
            value = "fp8"
        desc = system_description(
            numerics=(NumericFormat.FP32, FakeFormat()))
        report = check_submission(submission(system=desc))
        assert any(i.code == "numerics" for i in report.errors)

    def test_duplicate_entries_flagged(self):
        result = benchmark_result()
        report = check_submission(submission([result, result]))
        assert any(i.code == "duplicate" for i in report.errors)

    def test_issue_string_format(self):
        report = check_submission(submission(results=[]))
        assert "[error] empty" in str(report.errors[0])


class TestReview:
    def test_round_counts(self):
        subs = [
            submission(),
            submission([benchmark_result(valid=False)]),
            submission([benchmark_result(passed=False)]),
        ]
        summary = review_round(subs)
        assert summary.total_submissions == 3
        assert summary.total_results == 3
        assert summary.cleared_results == 1
        # The invalid run trips both invalid-run and latency-bound.
        assert summary.issues_found == 3
        assert "3 submissions" in summary.summary()

    def test_issue_code_histogram(self):
        subs = [submission([benchmark_result(passed=False)]) for _ in range(2)]
        summary = review_round(subs)
        assert summary.issue_codes() == {"quality-target": 2}


class TestReporting:
    def test_no_summary_score_by_design(self):
        with pytest.raises(SummaryScoreRefused, match="no summary score"):
            summary_score(submission())

    def test_format_lists_results_without_aggregate(self):
        text = format_submission(submission())
        assert "gnmt" in text
        assert "no summary score" in text
        assert "closed" in text
