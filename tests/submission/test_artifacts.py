"""On-disk submission artifacts: write, read back, check."""

import json

import pytest

from repro.core import Scenario, Task
from repro.models.quantization import NumericFormat
from repro.submission.artifacts import (
    ACCURACY_FILE,
    DETAIL_FILE,
    PERFORMANCE_FILE,
    SUMMARY_FILE,
    SYSTEM_FILE,
    check_submission_dir,
    read_submission_dir,
    write_submission,
)
from repro.submission.schema import Division

from tests.submission.test_submission import (
    benchmark_result,
    submission,
    system_description,
)


@pytest.fixture
def written(tmp_path):
    sub = submission()
    root = write_submission(sub, tmp_path / "sub")
    return sub, root


class TestWrite:
    def test_layout(self, written):
        _sub, root = written
        assert (root / SYSTEM_FILE).exists()
        entry = root / "gnmt" / "server"
        for name in (SUMMARY_FILE, DETAIL_FILE, PERFORMANCE_FILE,
                     ACCURACY_FILE):
            assert (entry / name).exists(), name

    def test_system_payload(self, written):
        _sub, root = written
        payload = json.loads((root / SYSTEM_FILE).read_text())
        assert payload["name"] == "test-system"
        assert payload["division"] == "closed"
        assert payload["numerics"] == ["fp32"]

    def test_summary_is_the_loadgen_summary(self, written):
        sub, root = written
        text = (root / "gnmt" / "server" / SUMMARY_FILE).read_text()
        assert "Result is" in text
        assert "server" in text

    def test_detail_log_is_jsonl(self, written):
        sub, root = written
        lines = (root / "gnmt" / "server" / DETAIL_FILE).read_text()
        first = json.loads(lines.splitlines()[0])
        assert "query_id" in first
        assert "issue_time" in first

    def test_performance_payload(self, written):
        sub, root = written
        payload = json.loads(
            (root / "gnmt" / "server" / PERFORMANCE_FILE).read_text())
        assert payload["valid"] is True
        assert payload["query_count"] == 128


class TestReadBack:
    def test_roundtrip(self, written):
        _sub, root = written
        manifest = read_submission_dir(root)
        assert manifest.division is Division.CLOSED
        assert len(manifest.entries) == 1
        entry = manifest.entries[0]
        assert entry.task is Task.MACHINE_TRANSLATION
        assert entry.scenario is Scenario.SERVER
        assert entry.accuracy["passed"] is True

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_submission_dir(tmp_path / "nope")


class TestCheckDir:
    def test_clean_submission_cleared(self, written):
        _sub, root = written
        report = check_submission_dir(root)
        assert report.passed, [str(i) for i in report.issues]

    def test_missing_system_file(self, tmp_path):
        report = check_submission_dir(tmp_path)
        assert any(i.code == "missing-system" for i in report.errors)

    def test_empty_submission_flagged(self, tmp_path):
        root = write_submission(submission(results=[]), tmp_path / "s")
        report = check_submission_dir(root)
        assert any(i.code == "empty" for i in report.errors)

    def test_invalid_run_flagged_from_disk(self, tmp_path):
        root = write_submission(
            submission([benchmark_result(valid=False)]), tmp_path / "s")
        report = check_submission_dir(root)
        assert any(i.code == "invalid-run" for i in report.errors)

    def test_quality_miss_flagged_from_disk(self, tmp_path):
        root = write_submission(
            submission([benchmark_result(passed=False)]), tmp_path / "s")
        report = check_submission_dir(root)
        assert any(i.code == "quality-target" for i in report.errors)

    def test_retraining_flagged_from_disk(self, tmp_path):
        root = write_submission(
            submission([benchmark_result(retrained=True)]), tmp_path / "s")
        report = check_submission_dir(root)
        assert any(i.code == "retraining" for i in report.errors)

    def test_tampered_numerics_flagged(self, written):
        _sub, root = written
        payload = json.loads((root / SYSTEM_FILE).read_text())
        payload["numerics"] = ["fp32", "fp8-secret"]
        (root / SYSTEM_FILE).write_text(json.dumps(payload))
        report = check_submission_dir(root)
        assert any(i.code == "numerics" for i in report.errors)

    def test_deleted_log_file_flagged(self, written):
        _sub, root = written
        (root / "gnmt" / "server" / DETAIL_FILE).unlink()
        report = check_submission_dir(root)
        assert any(i.code == "missing-detail" for i in report.errors)

    def test_undocumented_open_division_flagged(self, tmp_path):
        sub = submission(division=Division.OPEN)
        root = write_submission(sub, tmp_path / "s")
        report = check_submission_dir(root)
        assert any(i.code == "open-undocumented" for i in report.errors)
