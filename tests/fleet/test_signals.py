"""SignalSource: backlog clamp, windowed series reads, determinism."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.fleet import (
    Autoscaler,
    AutoscalerPolicy,
    BacklogSignal,
    ReplicaSet,
    SeriesSignal,
    SignalSource,
    make_signal,
)
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = pytest.mark.fleet


class FakeFleet:
    """Just enough replica-set surface for a signal to sample."""

    def __init__(self, outstanding=0, available=1):
        self.total_outstanding = outstanding
        self.available_replicas = list(range(available))


def test_make_signal_resolves_default_and_passthrough():
    assert isinstance(make_signal(None), BacklogSignal)
    series = SeriesSignal(MetricsRegistry(), "x_total")
    assert make_signal(series) is series
    with pytest.raises(TypeError, match="SignalSource"):
        make_signal("backlog")


def test_series_signal_rejects_bad_knobs():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="mode"):
        SeriesSignal(registry, "x_total", mode="median")
    with pytest.raises(ValueError, match="window"):
        SeriesSignal(registry, "x_total", window=0)


def test_backlog_signal_divides_by_available_replicas():
    signal = BacklogSignal()
    signal.bind(FakeFleet(outstanding=12, available=4))
    assert signal.sample(now=0.0) == 3.0


def test_backlog_signal_clamps_when_no_replica_is_available():
    # max(1, available): an all-down fleet reads as a one-replica
    # backlog instead of dividing by zero.
    signal = BacklogSignal()
    signal.bind(FakeFleet(outstanding=7, available=0))
    assert signal.sample(now=0.0) == 7.0


def test_series_rate_differences_a_counter_over_the_window():
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "test counter")
    signal = SeriesSignal(registry, "hits_total", mode="rate", window=4)
    signal.bind(FakeFleet())
    assert signal.sample(now=0.0) == 0.0  # single observation: no slope
    hits.inc(10)
    assert signal.sample(now=2.0) == pytest.approx(5.0)
    hits.inc(10)
    assert signal.sample(now=4.0) == pytest.approx(5.0)


def test_series_rate_window_forgets_old_observations():
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "test counter")
    signal = SeriesSignal(registry, "hits_total", mode="rate", window=2)
    signal.bind(FakeFleet())
    signal.sample(now=0.0)
    hits.inc(100)
    signal.sample(now=1.0)
    # Window of 2: the rate now spans [1.0, 2.0] only - no new
    # increments, so the burst at t<=1 has aged out entirely.
    assert signal.sample(now=2.0) == 0.0


def test_series_level_averages_a_gauge():
    registry = MetricsRegistry()
    depth = registry.gauge("queue_depth", "test gauge")
    signal = SeriesSignal(registry, "queue_depth", mode="level", window=8)
    signal.bind(FakeFleet())
    for t, value in enumerate([2.0, 4.0, 6.0]):
        depth.set(value)
        observed = signal.sample(now=float(t))
    assert observed == pytest.approx(4.0)


def test_series_sums_labeled_children_across_replicas():
    registry = MetricsRegistry()
    misses = registry.counter("prefix_cache_misses_total", "test",
                              labels=("replica",))
    signal = SeriesSignal(registry, "prefix_cache_misses_total",
                          mode="level", window=1)
    signal.bind(FakeFleet())
    misses.labels(replica=0).inc(3)
    misses.labels(replica=1).inc(4)
    assert signal.sample(now=0.0) == 7.0


def test_series_reads_callback_gauges_through_the_family():
    registry = MetricsRegistry()
    live = {"value": 5.0}
    registry.gauge("fleet_outstanding_queries", "test",
                   fn=lambda: live["value"])
    signal = SeriesSignal(registry, "fleet_outstanding_queries",
                          mode="level", window=1)
    signal.bind(FakeFleet())
    assert signal.sample(now=0.0) == 5.0


def test_missing_family_reads_as_zero():
    signal = SeriesSignal(MetricsRegistry(), "never_registered_total")
    signal.bind(FakeFleet())
    assert signal.sample(now=0.0) == 0.0
    assert signal.sample(now=1.0) == 0.0


def test_per_available_replica_normalizes_and_clamps():
    registry = MetricsRegistry()
    depth = registry.gauge("queue_depth", "test gauge")
    depth.set(8.0)
    signal = SeriesSignal(registry, "queue_depth", mode="level",
                          window=1, per_available_replica=True)
    signal.bind(FakeFleet(available=4))
    assert signal.sample(now=0.0) == 2.0
    signal.bind(FakeFleet(available=0))
    signal.reset()
    assert signal.sample(now=1.0) == 8.0  # max(1, 0) clamp again


def test_reset_clears_the_window():
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "test counter")
    signal = SeriesSignal(registry, "hits_total", mode="rate", window=8)
    signal.bind(FakeFleet())
    signal.sample(now=0.0)
    hits.inc(50)
    signal.reset()
    # Post-reset the first observation stands alone: rate is zero, not
    # a slope against pre-reset history.
    assert signal.sample(now=10.0) == 0.0


def server_settings(queries=300, qps=200.0, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=1.0, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def series_scaled_trace(seed=5):
    registry = MetricsRegistry()
    fleet = ReplicaSet(
        lambda i: FixedLatencySUT(latency=0.050),
        initial_replicas=1, max_replicas=8, attempt_timeout=2.0,
        seed=seed, registry=registry)
    scaler = Autoscaler(
        fleet,
        AutoscalerPolicy(period=0.050, high_watermark=3.0,
                         low_watermark=0.5, cooldown=0.100),
        signal=SeriesSignal(registry, "fleet_outstanding_queries",
                            mode="level", window=4,
                            per_available_replica=True))
    result = run_benchmark(fleet, EchoQSL(), server_settings(seed=seed),
                           services=[scaler])
    return result, scaler.trace


def test_autoscaler_scales_up_on_a_live_metric_series():
    # The drowning one-replica fleet's backlog shows up in the live
    # fleet_outstanding_queries series; the scaler must grow from it.
    result, trace = series_scaled_trace()
    assert result.valid
    assert any(d.action == "up" for d in trace)
    assert max(d.replicas_after for d in trace) > 1


def test_series_driven_trace_is_bit_identical_across_same_seed_runs():
    (_, trace_a), (_, trace_b) = (series_scaled_trace(),
                                  series_scaled_trace())
    assert trace_a == trace_b
    assert any(d.action != "hold" for d in trace_a)
