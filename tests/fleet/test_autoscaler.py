"""Autoscaler: watermark hysteresis, cooldown, determinism."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.core.query import Query, QuerySample
from repro.fleet import Autoscaler, AutoscalerPolicy, ReplicaSet
from repro.fleet.replica import ReplicaHealth
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT


def server_settings(queries=300, qps=200.0, bound=1.0, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def slow_fleet(**kwargs):
    kwargs.setdefault("initial_replicas", 1)
    kwargs.setdefault("max_replicas", 8)
    kwargs.setdefault("attempt_timeout", 2.0)
    return ReplicaSet(lambda i: FixedLatencySUT(latency=0.050), **kwargs)


class TestPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="period"):
            AutoscalerPolicy(period=0.0)
        with pytest.raises(ValueError, match="high_watermark"):
            AutoscalerPolicy(high_watermark=1.0, low_watermark=1.0)
        with pytest.raises(ValueError, match="cooldown"):
            AutoscalerPolicy(cooldown=-1.0)
        with pytest.raises(ValueError, match="step"):
            AutoscalerPolicy(step=0)


class TestScalingBehavior:
    def test_backlog_triggers_scale_up(self):
        # One 50 ms-latency replica at 200 qps drowns instantly; the
        # autoscaler must grow the fleet to absorb the backlog.
        fleet = slow_fleet()
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.050, high_watermark=3.0, low_watermark=0.5,
            cooldown=0.100))
        result = run_benchmark(fleet, EchoQSL(), server_settings(),
                               services=[scaler])
        assert result.valid
        ups = [d for d in scaler.trace if d.action == "up"]
        assert ups
        assert max(d.replicas_after for d in scaler.trace) > 1

    def test_idle_fleet_scales_down_to_the_floor(self):
        fleet = slow_fleet(initial_replicas=4, min_replicas=1)
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.050, high_watermark=50.0, low_watermark=1.0,
            cooldown=0.0))
        # Light load: 4 replicas are far more than needed.
        result = run_benchmark(
            fleet, EchoQSL(),
            server_settings(queries=200, qps=20.0),
            services=[scaler])
        assert result.valid
        assert any(d.action == "down" for d in scaler.trace)
        assert scaler.trace[-1].replicas_after == 1

    def test_cooldown_separates_actions(self):
        fleet = slow_fleet()
        cooldown = 0.200
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.050, high_watermark=2.0, low_watermark=0.1,
            cooldown=cooldown))
        run_benchmark(fleet, EchoQSL(), server_settings(),
                      services=[scaler])
        actions = [d.time for d in scaler.trace if d.action != "hold"]
        assert len(actions) >= 2
        gaps = [b - a for a, b in zip(actions, actions[1:])]
        assert all(gap >= cooldown - 1e-9 for gap in gaps)

    def test_holds_between_watermarks(self):
        fleet = slow_fleet(initial_replicas=2, min_replicas=2,
                           max_replicas=2)
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.050, high_watermark=1e9, low_watermark=0.0,
            cooldown=0.0))
        # Watermarks nothing can cross: every tick must be a hold.
        run_benchmark(fleet, EchoQSL(), server_settings(queries=100),
                      services=[scaler])
        assert scaler.trace
        assert all(d.action == "hold" for d in scaler.trace)
        assert all(d.replicas_before == d.replicas_after
                   for d in scaler.trace)

    def test_step_scales_by_more_than_one(self):
        fleet = slow_fleet()
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.050, high_watermark=2.0, low_watermark=0.1,
            cooldown=0.100, step=2))
        run_benchmark(fleet, EchoQSL(), server_settings(),
                      services=[scaler])
        first_up = next(d for d in scaler.trace if d.action == "up")
        assert first_up.replicas_after - first_up.replicas_before == 2


class TestDeterminism:
    def test_trace_is_bit_identical_across_same_seed_runs(self):
        def one_trace():
            fleet = slow_fleet(seed=5)
            scaler = Autoscaler(fleet, AutoscalerPolicy(
                period=0.050, high_watermark=3.0, low_watermark=0.5,
                cooldown=0.100))
            run_benchmark(fleet, EchoQSL(), server_settings(seed=5),
                          services=[scaler])
            return scaler.trace
        trace_a, trace_b = one_trace(), one_trace()
        assert trace_a == trace_b
        assert any(d.action != "hold" for d in trace_a)


class TestMetrics:
    def test_autoscaler_families_light_up(self):
        registry = MetricsRegistry()
        fleet = slow_fleet()
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.050, high_watermark=3.0, low_watermark=0.5,
            cooldown=0.100), registry=registry)
        run_benchmark(fleet, EchoQSL(), server_settings(),
                      services=[scaler])
        actions = registry.get("autoscaler_actions_total")
        total = sum(child.value for _, child in actions.series())
        assert total == len(scaler.trace)
        assert registry.get("autoscaler_replicas").value >= 1.0


class TestAllDownFleet:
    """The max(1, available) clamp and recovery from a dead fleet."""

    @staticmethod
    def _drowned_dead_fleet(queries):
        # Queries in flight, then every replica marked DOWN underneath
        # them (breaker storms / chaos can strand a fleet this way).
        fleet = slow_fleet(initial_replicas=2)
        loop = EventLoop(VirtualClock())
        fleet.start_run(loop, lambda q, r: None)
        for qid in range(queries):
            fleet.issue_query(Query(
                id=qid, samples=(QuerySample(qid * 10, 0),),
                issue_time=0.0))
        for replica in fleet.replicas:
            replica.health = ReplicaHealth.DOWN
        assert fleet.available_replicas == []
        return fleet, loop

    def test_signal_clamps_with_zero_available_replicas(self):
        fleet, _loop = self._drowned_dead_fleet(queries=3)
        scaler = Autoscaler(fleet)
        # 3 outstanding / max(1, 0 available): finite, not a crash -
        # the stranded backlog reads as a one-replica fleet's load.
        assert scaler.signal() == 3.0

    def test_tick_scales_up_an_all_down_fleet(self):
        fleet, loop = self._drowned_dead_fleet(queries=8)
        scaler = Autoscaler(fleet, AutoscalerPolicy(
            period=0.010, high_watermark=2.0, low_watermark=0.5,
            cooldown=0.0))
        scaler.start(loop, keep_going=lambda: False)
        loop.run(until=0.020)  # exactly one tick fires
        assert scaler.trace
        decision = scaler.trace[-1]
        assert decision.signal == 8.0
        assert decision.action == "up"
        assert decision.replicas_before == 0
        assert len(fleet.available_replicas) == 1
