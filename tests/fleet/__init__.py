"""Tests for the replicated serving fleet (repro.fleet)."""
