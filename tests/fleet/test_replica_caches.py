"""Per-replica prefix caches on a fleet: audits, labels, affinity payoff."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.metrics import MetricsRegistry
from repro.sessions import (
    CacheStats,
    PrefixCacheSUT,
    audit_replica_caches,
    per_replica_cache_factory,
    replay_graph_from_settings,
)
from repro.fleet import ReplicaSet
from repro.sut.echo import EchoSUT

from tests.conftest import EchoQSL

pytestmark = [pytest.mark.fleet, pytest.mark.sessions]

REPLICAS = 4


def session_settings(seed=7):
    return TestSettings(
        scenario=Scenario.SESSION, server_target_qps=200.0,
        session_count=24, session_think_time_mean=0.01,
        min_duration=0.0, watchdog_timeout=600.0, seed=seed)


def fleet_session_run(balancer, seed=7, registry=None):
    fleet = ReplicaSet(
        lambda i: EchoSUT(latency=0.001),
        initial_replicas=REPLICAS, max_replicas=REPLICAS,
        policy=balancer, attempt_timeout=1.0, seed=seed,
        registry=registry,
        cache_factory=per_replica_cache_factory(
            capacity_tokens=1 << 20, registry=registry))
    result = run_benchmark(fleet, EchoQSL(), session_settings(seed))
    return result, fleet


def test_every_replica_serves_through_its_own_cache():
    result, fleet = fleet_session_run("round-robin")
    assert result.valid
    assert sorted(fleet.caches) == list(range(REPLICAS))
    for index, cache in fleet.caches.items():
        assert isinstance(cache, PrefixCacheSUT)
        assert cache.replica == index
        assert fleet.replicas[index].sut is cache
    # The routing actually spread sessions: several caches saw traffic.
    touched = [c for c in fleet.caches.values() if c.stats.accesses]
    assert len(touched) > 1


@pytest.mark.parametrize("balancer", ["round-robin", "session-affinity"])
def test_every_per_replica_trail_audits_clean(balancer):
    result, fleet = fleet_session_run(balancer)
    assert result.valid
    graph = replay_graph_from_settings(session_settings())
    problems = audit_replica_caches(fleet.caches, graph)
    assert sorted(problems) == list(range(REPLICAS))
    assert all(not v for v in problems.values()), problems


def test_affinity_strictly_beats_round_robin_on_token_hit_rate():
    # The tentpole claim: with cache state living on the replicas,
    # routing policy is what makes (or breaks) prefix locality.  On the
    # same seed, pinning a session's turns to one replica must reuse
    # strictly more prefix tokens than scattering them round-robin.
    rr_result, rr_fleet = fleet_session_run("round-robin", seed=7)
    aff_result, aff_fleet = fleet_session_run("session-affinity", seed=7)
    assert rr_result.valid and aff_result.valid
    rr = CacheStats.merged([c.stats for c in rr_fleet.caches.values()])
    aff = CacheStats.merged([c.stats for c in aff_fleet.caches.values()])
    assert aff.token_hit_rate > rr.token_hit_rate
    # With an unbounded per-replica cache and no reroutes, affinity
    # keeps every conversation fully resident: perfect token reuse.
    assert aff.token_hit_rate == 1.0
    assert rr.token_hit_rate < 1.0
    assert aff.hits == aff.accesses - aff.misses


def test_labeled_series_reconcile_with_each_replicas_cache():
    registry = MetricsRegistry()
    result, fleet = fleet_session_run("session-affinity",
                                      registry=registry)
    assert result.valid
    hits = registry.get("prefix_cache_hits_total")
    assert hits.label_names == ("replica",)
    for index, cache in fleet.caches.items():
        assert hits.labels(replica=index).value == cache.stats.hits
        assert registry.get("prefix_cache_resident_tokens") \
            .labels(replica=index).value == cache.model.resident_tokens
    total = sum(child.value for _, child in hits.series())
    merged = CacheStats.merged([c.stats for c in fleet.caches.values()])
    assert total == merged.hits


def test_fleet_cache_runs_are_bit_identical_across_same_seed_runs():
    def trail(seed):
        _result, fleet = fleet_session_run("session-affinity", seed=seed)
        return {i: c.events for i, c in fleet.caches.items()}
    assert trail(11) == trail(11)
