"""ReplicaSet: routing, failover, kill rescue, scaling primitives."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.durability import BreakerPolicy, run_fingerprint
from repro.faults import OutageSUT
from repro.fleet import ReplicaHealth, ReplicaSet
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT


def server_settings(queries=300, qps=200.0, bound=0.05, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def echo_fleet(n=4, latency=0.004, **kwargs):
    return ReplicaSet(lambda i: FixedLatencySUT(latency=latency),
                      initial_replicas=n, **kwargs)


class _KillAt:
    """RunService that kills one replica at a scheduled run time."""

    def __init__(self, fleet, index, at):
        self.fleet, self.index, self.at = fleet, index, at
        self.rescued = None

    def start(self, loop, keep_going):
        def _kill():
            self.rescued = self.fleet.kill_replica(self.index)
        loop.schedule_after(self.at, _kill)

    def stop(self):
        pass


class TestRouting:
    def test_healthy_fleet_serves_a_valid_run(self):
        fleet = echo_fleet(policy="round-robin")
        result = run_benchmark(fleet, EchoQSL(), server_settings())
        assert result.valid
        assert not result.log.failed_records()
        assert fleet.stats.shed_queries == 0
        issued = [r.issued for r in fleet.replicas]
        assert sum(issued) == 300
        # Round-robin spreads the load across all four replicas.
        assert all(count > 0 for count in issued)

    @pytest.mark.parametrize(
        "policy", ["round-robin", "least-outstanding", "weighted-p99"])
    def test_same_seed_same_routing_and_result(self, policy):
        def one_run():
            fleet = echo_fleet(policy=policy, seed=11)
            result = run_benchmark(fleet, EchoQSL(),
                                   server_settings(seed=11))
            return ([r.issued for r in fleet.replicas],
                    run_fingerprint(result))
        assert one_run() == one_run()

    def test_validation_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="min_replicas"):
            echo_fleet(min_replicas=0)
        with pytest.raises(ValueError, match="initial_replicas"):
            echo_fleet(n=9, max_replicas=4)
        with pytest.raises(ValueError, match="attempt_timeout"):
            echo_fleet(attempt_timeout=0.0)
        with pytest.raises(ValueError, match="max_reroutes"):
            echo_fleet(max_reroutes=-1)


class TestFailover:
    def test_outage_replica_is_rerouted_around(self):
        # Replica 0 blackholes everything in [0.2, 0.6); its deadline
        # misses must reroute to survivors and trip its breaker.
        def factory(index):
            backend = FixedLatencySUT(latency=0.004)
            if index == 0:
                return OutageSUT(backend, 0.2, 0.4)
            return backend

        fleet = ReplicaSet(
            factory, initial_replicas=3, attempt_timeout=0.02,
            policy="round-robin",
            breaker_policy=BreakerPolicy(window=4, min_samples=2,
                                         failure_threshold=0.5,
                                         open_duration=0.1),
        )
        result = run_benchmark(fleet, EchoQSL(),
                               server_settings(queries=400))
        assert result.valid
        assert not result.log.failed_records()
        assert fleet.stats.reroutes > 0
        assert fleet.stats.deadline_failures > 0
        # The breaker learned: far fewer deadline misses than the
        # ~80 queries that landed in the outage window would suggest.
        assert fleet.replicas[0].breaker.stats.opens >= 1

    def test_reroute_latency_is_bounded_by_deadline(self):
        def factory(index):
            backend = FixedLatencySUT(latency=0.004)
            if index == 0:
                return OutageSUT(backend, 0.2, 0.2)
            return backend

        fleet = ReplicaSet(factory, initial_replicas=3,
                           attempt_timeout=0.02, max_reroutes=2)
        result = run_benchmark(fleet, EchoQSL(), server_settings())
        worst = max(r.latency for r in result.log.completed_records())
        # A query can lose at most max_reroutes deadlines before the
        # attempt that completes.
        assert worst <= 2 * 0.02 + 0.004 + 1e-9

    def test_all_replicas_down_sheds_with_classified_reason(self):
        fleet = echo_fleet(n=2)
        killer_a = _KillAt(fleet, 0, 0.01)
        killer_b = _KillAt(fleet, 1, 0.01)
        result = run_benchmark(
            fleet, EchoQSL(), server_settings(queries=100),
            services=[killer_a, killer_b])
        assert not result.valid  # the run fails, the harness does not
        failed = result.log.failed_records()
        assert failed
        assert any("no replica available" in r.failure_reason
                   for r in failed)


class TestKillRescue:
    def test_killed_replicas_inflight_queries_are_rescued(self):
        # 50 ms service time at 200 qps: ~10 queries in flight at any
        # instant, so a mid-run kill must rescue a non-trivial batch.
        fleet = echo_fleet(n=4, latency=0.050, attempt_timeout=0.5)
        killer = _KillAt(fleet, 1, 0.75)
        result = run_benchmark(
            fleet, EchoQSL(),
            server_settings(queries=400, bound=0.2),
            services=[killer])
        assert killer.rescued is not None and killer.rescued > 0
        assert result.valid
        assert not result.log.failed_records()
        assert fleet.stats.rescued_queries == killer.rescued
        assert fleet.replicas[1].health is ReplicaHealth.DOWN
        assert fleet.replicas[1].outstanding == 0

    def test_rescue_does_not_consume_the_query_budget(self):
        fleet = echo_fleet(n=2, latency=0.050, attempt_timeout=0.5,
                           max_reroutes=0)
        killer = _KillAt(fleet, 0, 0.3)
        result = run_benchmark(
            fleet, EchoQSL(), server_settings(queries=150, bound=0.2),
            services=[killer])
        # max_reroutes=0 would fail rescued queries if the rescue
        # consumed the budget; it must not.
        assert killer.rescued > 0
        assert not result.log.failed_records()
        assert result.valid

    def test_restore_after_kill_serves_again(self):
        fleet = echo_fleet(n=2)
        loop = EventLoop(VirtualClock())
        sink = []
        fleet.start_run(loop, lambda q, r: sink.append((q, r)))
        fleet.kill_replica(0)
        assert fleet.replicas[0].health is ReplicaHealth.DOWN
        fleet.restore_replica(0)
        assert fleet.replicas[0].health is ReplicaHealth.UP
        assert fleet.replicas[0].breaker.stats.admitted == 0


class TestScaling:
    def make_started(self, **kwargs):
        fleet = echo_fleet(**kwargs)
        loop = EventLoop(VirtualClock())
        fleet.start_run(loop, lambda q, r: None)
        return fleet

    def test_scale_down_drains_and_parks(self):
        fleet = self.make_started(n=3)
        assert fleet.scale_down()
        # Nothing in flight: the victim parks DOWN immediately.
        assert fleet.replicas[2].health is ReplicaHealth.DOWN
        assert len(fleet.available_replicas) == 2
        assert fleet.stats.drained_replicas == 1

    def test_scale_down_respects_the_floor(self):
        fleet = self.make_started(n=2, min_replicas=2)
        assert not fleet.scale_down()
        assert len(fleet.available_replicas) == 2

    def test_scale_up_revives_parked_then_builds_fresh(self):
        fleet = self.make_started(n=2, max_replicas=4)
        fleet.scale_down()
        assert len(fleet.replicas) == 2
        assert fleet.scale_up()  # revives the parked replica
        assert len(fleet.replicas) == 2
        assert len(fleet.available_replicas) == 2
        assert fleet.scale_up()  # builds a brand-new replica
        assert len(fleet.replicas) == 3
        assert len(fleet.available_replicas) == 3

    def test_scale_up_respects_the_cap(self):
        fleet = self.make_started(n=2, max_replicas=2)
        assert not fleet.scale_up()
        assert len(fleet.replicas) == 2

    def test_draining_replica_finishes_inflight_work(self):
        fleet = ReplicaSet(lambda i: FixedLatencySUT(latency=0.010),
                           initial_replicas=2, policy="round-robin")
        clock = VirtualClock()
        loop = EventLoop(clock)
        done = []
        fleet.start_run(loop, lambda q, r: done.append(q))
        from repro.core.query import Query, QuerySample
        query = Query(id=1, samples=(QuerySample(id=1, index=0),))
        queries = [Query(id=n, samples=(QuerySample(id=n, index=0),))
                   for n in (1, 2)]
        for query in queries:
            fleet.issue_query(query)  # round-robin: one per replica
        victim = fleet.replicas[1]
        assert victim.outstanding == 1
        assert fleet.scale_down()  # drains the highest-indexed UP replica
        assert victim.health is ReplicaHealth.DRAINING
        loop.run()
        assert sorted(q.id for q in done) == [1, 2]
        assert victim.health is ReplicaHealth.DOWN


class TestMetrics:
    def test_fleet_families_light_up(self):
        registry = MetricsRegistry()
        fleet = echo_fleet(registry=registry)
        run_benchmark(fleet, EchoQSL(), server_settings())
        assert registry.get("fleet_replicas").value == 4.0
        assert registry.get("fleet_replicas_available").value == 4.0
        assert registry.get("fleet_outstanding_queries").value == 0.0
        routed = sum(
            child.value
            for _, child in registry.get("lb_routed_total").series())
        assert routed == 300
