"""OutlierDetector: gray-failure ejection, probation, rescue warming."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.core.query import Query, QuerySample, SessionTurn
from repro.durability import run_fingerprint
from repro.faults import DegradedSUT
from repro.fleet import (
    OutlierDetector,
    OutlierPolicy,
    ReplicaHealth,
    ReplicaSet,
)
from repro.metrics import MetricsRegistry
from repro.sessions import per_replica_cache_factory

from tests.conftest import EchoQSL, FixedLatencySUT


def server_settings(queries=400, qps=200.0, bound=0.2, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def started_fleet(n=4, latency=0.004, **kwargs):
    loop = EventLoop(VirtualClock())
    fleet = ReplicaSet(lambda i: FixedLatencySUT(latency=latency),
                       initial_replicas=n, **kwargs)
    responses = []
    fleet.start_run(loop, lambda q, r: responses.append((q, r)))
    return loop, fleet, responses


def feed_latencies(replica, value, count=20):
    for _ in range(count):
        replica.observe_latency(value)


class TestPolicyValidation:
    def test_rejects_bad_tuning(self):
        with pytest.raises(ValueError, match="period"):
            OutlierPolicy(period=0.0)
        with pytest.raises(ValueError, match="latency_multiplier"):
            OutlierPolicy(latency_multiplier=1.0)
        with pytest.raises(ValueError, match="failure_rate_threshold"):
            OutlierPolicy(failure_rate_threshold=0.0)
        with pytest.raises(ValueError, match="max_ejection_fraction"):
            OutlierPolicy(max_ejection_fraction=1.5)
        with pytest.raises(ValueError, match="probe_count"):
            OutlierPolicy(probe_count=0)


class TestScoring:
    def test_slow_replica_is_ejected(self):
        loop, fleet, _ = started_fleet(n=3)
        detector = OutlierDetector(fleet)
        feed_latencies(fleet.replicas[0], 0.004)
        feed_latencies(fleet.replicas[1], 0.004)
        feed_latencies(fleet.replicas[2], 0.040)
        detector.evaluate(1.0)
        assert detector.quarantined == [2]
        assert fleet.replicas[2].health is ReplicaHealth.EJECTED
        assert fleet.stats.ejections == 1
        event = detector.trace[0]
        assert (event.time, event.replica, event.action) == (1.0, 2, "eject")
        assert event.detail == pytest.approx(10.0)

    def test_cold_replicas_are_never_judged(self):
        loop, fleet, _ = started_fleet(n=3)
        detector = OutlierDetector(fleet)
        # Plenty slow, but below min_observations of evidence.
        feed_latencies(fleet.replicas[0], 0.004, count=4)
        feed_latencies(fleet.replicas[1], 0.004, count=4)
        feed_latencies(fleet.replicas[2], 0.400, count=4)
        detector.evaluate(1.0)
        assert detector.quarantined == []
        assert detector.trace == []

    def test_ejection_fraction_caps_the_quarantine(self):
        loop, fleet, _ = started_fleet(n=6)
        detector = OutlierDetector(fleet)
        for index in (0, 1, 2, 3):
            feed_latencies(fleet.replicas[index], 0.004)
        feed_latencies(fleet.replicas[4], 0.040)
        feed_latencies(fleet.replicas[5], 0.080)
        detector.evaluate(1.0)
        # int(0.34 * 6) = 2 allowed, and the worst outlier goes first.
        assert detector.quarantined == [4, 5]
        assert detector.trace[0].replica == 5
        feed_latencies(fleet.replicas[3], 0.080)
        detector.evaluate(2.0)
        # A third outlier appears but the budget is spent.
        assert detector.quarantined == [4, 5]

    def test_windowed_failure_rate_ejects(self):
        loop, fleet, _ = started_fleet(n=3)
        detector = OutlierDetector(fleet)
        victim = fleet.replicas[1]
        victim.completed, victim.failed = 4, 12
        for peer in (fleet.replicas[0], fleet.replicas[2]):
            peer.completed = 20
        detector.evaluate(1.0)
        assert detector.quarantined == [1]
        assert detector.trace[0].detail == pytest.approx(0.75)

    def test_administratively_dead_leave_the_books(self):
        loop, fleet, _ = started_fleet(n=3)
        detector = OutlierDetector(fleet)
        feed_latencies(fleet.replicas[0], 0.004)
        feed_latencies(fleet.replicas[1], 0.004)
        feed_latencies(fleet.replicas[2], 0.040)
        detector.evaluate(1.0)
        assert detector.quarantined == [2]
        fleet.kill_replica(2)
        detector.evaluate(2.0)
        assert detector.quarantined == []


class TestProbation:
    POLICY = OutlierPolicy(period=0.010, min_observations=8,
                           ejection_duration=0.050, probe_timeout=0.020)

    def test_clean_probation_readmits(self):
        loop, fleet, responses = started_fleet(n=3)
        detector = OutlierDetector(fleet, self.POLICY)
        detector.start(loop, lambda: True)
        feed_latencies(fleet.replicas[0], 0.004, count=8)
        feed_latencies(fleet.replicas[1], 0.004, count=8)
        feed_latencies(fleet.replicas[2], 0.040, count=8)
        loop.run(until=0.5)
        actions = [e.action for e in detector.trace]
        assert actions[:3] == ["eject", "probe", "readmit"]
        assert fleet.replicas[2].health is ReplicaHealth.UP
        assert detector.quarantined == []
        assert fleet.stats.readmissions == 1
        # Readmission wiped the poisoned latency window.
        assert fleet.replicas[2].latency_observations == 0
        # Probe queries never reached the run's responder.
        assert all(q.id < 3_000_000_000 for q, _ in responses)

    def test_unanswered_probes_re_eject(self):
        class Blackhole(FixedLatencySUT):
            def issue_query(self, query):
                self.issued += 1  # accepts, never answers

        loop = EventLoop(VirtualClock())
        fleet = ReplicaSet(
            lambda i: Blackhole() if i == 2 else FixedLatencySUT(0.004),
            initial_replicas=3)
        fleet.start_run(loop, lambda q, r: None)
        detector = OutlierDetector(fleet, self.POLICY)
        detector.start(loop, lambda: True)
        feed_latencies(fleet.replicas[0], 0.004, count=8)
        feed_latencies(fleet.replicas[1], 0.004, count=8)
        feed_latencies(fleet.replicas[2], 0.040, count=8)
        loop.run(until=0.5)
        actions = [e.action for e in detector.trace]
        assert "re-eject" in actions
        assert "readmit" not in actions
        assert fleet.replicas[2].health is ReplicaHealth.EJECTED
        # Each failed probation restarts the quarantine clock.
        re_ejects = [e for e in detector.trace if e.action == "re-eject"]
        assert all(e.detail == 3.0 for e in re_ejects)


class _Brownout:
    """RunService: degrade one chaos valve for a window of run time."""

    def __init__(self, valve, start, duration, factor):
        self.valve = valve
        self.window = (start, duration)
        self.factor = factor

    def start(self, loop, keep_going):
        at, duration = self.window
        loop.schedule_after(at, lambda: self.valve.degrade(self.factor))
        loop.schedule_after(at + duration, self.valve.restore)

    def stop(self):
        pass


class TestEndToEnd:
    def one_run(self, seed=5, registry=None):
        valves = {}

        def factory(index):
            valve = DegradedSUT(FixedLatencySUT(latency=0.002))
            valves[index] = valve
            return valve

        fleet = ReplicaSet(factory, initial_replicas=4, seed=seed,
                           registry=registry)
        policy = OutlierPolicy(min_observations=8, ejection_duration=0.1,
                               probe_timeout=0.008)
        detector = OutlierDetector(fleet, policy, seed=seed,
                                   registry=registry)
        fleet.chaos_valves = valves

        class _Later:
            """Install the brownout once the valves exist (post start)."""

            def start(self, loop, keep_going):
                _Brownout(valves[1], 0.3, 0.5, 12.0).start(loop, keep_going)

            def stop(self):
                pass

        result = run_benchmark(
            fleet, EchoQSL(), server_settings(seed=seed),
            services=[_Later(), detector], registry=registry)
        return fleet, detector, result

    def test_brownout_is_ejected_then_readmitted(self):
        registry = MetricsRegistry()
        fleet, detector, result = self.one_run(registry=registry)
        assert result.valid
        assert not result.log.failed_records()
        actions = [e.action for e in detector.trace]
        assert "eject" in actions
        assert "readmit" in actions
        assert all(e.replica == 1 for e in detector.trace)
        assert fleet.replicas[1].health is ReplicaHealth.UP
        assert registry.get("ejection_ejections_total") is not None
        assert registry.get("ejection_active").value == 0.0

    def test_same_seed_same_ejection_trail(self):
        def fingerprinted():
            fleet, detector, result = self.one_run(seed=9)
            return detector.trace, run_fingerprint(result)
        assert fingerprinted() == fingerprinted()


class TestRescueAndRepin:
    def turn(self, query_id, session_id, turn_index, turn_count=4):
        turn = SessionTurn(
            session_id=session_id, turn_index=turn_index,
            turn_count=turn_count, prefix_tokens=64 * turn_index,
            new_tokens=32, response_tokens=32)
        return Query(id=query_id,
                     samples=(QuerySample(id=query_id, index=0),),
                     session=turn)

    def pinned_fleet(self):
        loop = EventLoop(VirtualClock())
        registry = MetricsRegistry()
        fleet = ReplicaSet(
            lambda i: FixedLatencySUT(latency=0.004),
            initial_replicas=3, policy="session-affinity",
            registry=registry,
            cache_factory=per_replica_cache_factory(
                capacity_tokens=4096, registry=registry))
        fleet.start_run(loop, lambda q, r: None)
        return loop, fleet

    def test_eject_warms_rescue_cache_and_repins_the_session(self):
        loop, fleet = self.pinned_fleet()
        # Turn 0 pins session 7 to replica 0 (least outstanding, lowest
        # index wins).
        fleet.issue_query(self.turn(1, session_id=7, turn_index=0))
        loop.run(until=0.01)
        assert fleet.replicas[0].completed == 1
        # Turn 1 is in flight on the pinned replica when the detector
        # ejects it: the turn must be rescued, the rescue replica's
        # cache warmed with the session prefix, and the pin migrated.
        fleet.issue_query(self.turn(2, session_id=7, turn_index=1))
        assert fleet.replicas[0].outstanding == 1
        rescued = fleet.eject_replica(0)
        assert rescued == 1
        loop.run(until=0.02)
        assert fleet.stats.rescued_queries == 1
        assert fleet.stats.cache_warms == 1
        rescue_index = next(
            i for i, r in enumerate(fleet.replicas) if r.completed and i != 0)
        assert fleet.caches[rescue_index].stats.admissions == 1
        # Satellite regression: a turn issued *during* the ejection
        # follows the migrated pin instead of dangling on the ejected
        # replica.
        fleet.issue_query(self.turn(3, session_id=7, turn_index=2))
        loop.run(until=0.03)
        # The rescue replica now holds the rescued turn plus the new one.
        assert fleet.replicas[rescue_index].completed == 2
        assert fleet.replicas[0].completed == 1

    def test_kill_rescue_also_warms_and_repins(self):
        loop, fleet = self.pinned_fleet()
        fleet.issue_query(self.turn(1, session_id=3, turn_index=0))
        loop.run(until=0.01)
        fleet.issue_query(self.turn(2, session_id=3, turn_index=1))
        assert fleet.kill_replica(0) == 1
        loop.run(until=0.02)
        assert fleet.stats.cache_warms == 1
        rescue_index = next(
            i for i, r in enumerate(fleet.replicas) if r.completed and i != 0)
        fleet.issue_query(self.turn(3, session_id=3, turn_index=2))
        loop.run(until=0.03)
        assert fleet.replicas[rescue_index].completed == 2

    def test_first_turn_rescue_has_nothing_to_warm(self):
        loop, fleet = self.pinned_fleet()
        # prefix_tokens == 0 on turn 0: rescue must not fabricate an
        # admission.
        fleet.issue_query(self.turn(1, session_id=9, turn_index=0))
        fleet.eject_replica(0)
        loop.run(until=0.02)
        assert fleet.stats.rescued_queries == 1
        assert fleet.stats.cache_warms == 0
