"""Arrival-rate bursts: BurstPlan, Server driver integration."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.durability import run_fingerprint
from repro.faults import BurstPlan, BurstWindow

from tests.conftest import EchoQSL, FixedLatencySUT


def burst_settings(bursts=None, queries=800, qps=100.0, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=0.5, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=120.0, seed=seed,
        server_rate_bursts=bursts,
    )


class TestBurstPlan:
    def test_multiplier_inside_and_outside_windows(self):
        plan = BurstPlan(windows=(
            BurstWindow(start=1.0, duration=2.0, multiplier=4.0),
            BurstWindow(start=5.0, duration=1.0, multiplier=0.5),
        ))
        assert plan.multiplier(0.5) == 1.0
        assert plan.multiplier(1.0) == 4.0
        assert plan.multiplier(2.9) == 4.0
        assert plan.multiplier(3.0) == 1.0  # window end is exclusive
        assert plan.multiplier(5.5) == 0.5
        assert plan.multiplier(7.0) == 1.0

    def test_flash_crowd_shorthand(self):
        plan = BurstPlan.flash_crowd(2.0, 1.0, multiplier=8.0)
        assert plan.multiplier(2.5) == 8.0
        assert plan.multiplier(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstPlan(windows=(BurstWindow(-1.0, 1.0, 2.0),))
        with pytest.raises(ValueError):
            BurstPlan(windows=(BurstWindow(0.0, 0.0, 2.0),))
        with pytest.raises(ValueError):
            BurstPlan(windows=(BurstWindow(0.0, 1.0, 0.0),))
        with pytest.raises(ValueError):  # overlap
            BurstPlan(windows=(BurstWindow(0.0, 2.0, 2.0),
                               BurstWindow(1.0, 2.0, 2.0),))

    def test_as_settings_round_trip(self):
        plan = BurstPlan.flash_crowd(1.0, 0.5, multiplier=4.0)
        settings = burst_settings(bursts=plan.as_settings())
        assert settings.server_rate_bursts == ((1.0, 0.5, 4.0),)


class TestSettingsValidation:
    def test_rejects_malformed_windows(self):
        with pytest.raises(ValueError):
            burst_settings(bursts=((0.0, 1.0),))  # not length 3
        with pytest.raises(ValueError):
            burst_settings(bursts=((-1.0, 1.0, 2.0),))
        with pytest.raises(ValueError):
            burst_settings(bursts=((0.0, -1.0, 2.0),))
        with pytest.raises(ValueError):
            burst_settings(bursts=((0.0, 1.0, -2.0),))
        with pytest.raises(ValueError):  # unsorted / overlapping
            burst_settings(bursts=((2.0, 1.0, 2.0), (0.0, 1.0, 2.0)))


class TestServerDriverIntegration:
    def burst_run(self, seed=0):
        plan = BurstPlan.flash_crowd(2.0, 2.0, multiplier=4.0)
        sut = FixedLatencySUT(latency=0.002)
        result = run_benchmark(
            sut, EchoQSL(),
            burst_settings(bursts=plan.as_settings(), seed=seed))
        return result

    def test_flash_crowd_densifies_arrivals(self):
        result = self.burst_run()
        issues = sorted(r.issue_time
                        for r in result.log.completed_records())
        inside = sum(1 for t in issues if 2.0 <= t < 4.0)
        before = sum(1 for t in issues if 0.0 <= t < 2.0)
        # 4x multiplier: the window must be much denser than baseline
        # (2x is a comfortable statistical floor for these counts).
        assert before > 50
        assert inside > 2 * before

    def test_burst_runs_are_seed_deterministic(self):
        a, b = self.burst_run(seed=9), self.burst_run(seed=9)
        assert run_fingerprint(a) == run_fingerprint(b)
        assert (sorted(r.issue_time for r in a.log.completed_records())
                == sorted(r.issue_time
                          for r in b.log.completed_records()))

    def test_no_bursts_field_defaults_to_none(self):
        settings = burst_settings()
        assert settings.server_rate_bursts is None
