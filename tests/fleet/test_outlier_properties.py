"""Property tests: the outlier detector's safety and liveness bounds.

Hypothesis drives randomized brownouts - fleet size, which replicas
degrade, how hard, and how much quarantine budget the policy grants -
and checks the two contracts docs/chaos.md promises regardless of the
draw:

* **Safety** - replaying the ejection trail, the set of simultaneously
  quarantined replicas never exceeds
  ``int(max_ejection_fraction * alive)``; a storm of gray failures can
  not hollow out the fleet.
* **Liveness** - once every degradation window has closed, probation
  probes succeed and the fleet converges back to full strength: no
  replica is still EJECTED when the run ends, and the quarantine list
  is empty.

Runs use the virtual clock, so each example is a full deterministic
Server run in milliseconds of wall time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.faults import DegradedSUT
from repro.fleet import (
    OutlierDetector,
    OutlierPolicy,
    ReplicaHealth,
    ReplicaSet,
)

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

#: Degradation is confined to [DEGRADE_AT, RESTORE_AT]; the run then
#: keeps serving until HORIZON so probation has room to converge.
DEGRADE_AT = 0.2
RESTORE_AT = 0.6
HORIZON = 1.5


class _Brownout:
    """RunService that opens and closes the drawn degradation windows."""

    def __init__(self, valves, degraded, factor):
        self.valves = valves
        self.degraded = degraded
        self.factor = factor

    def start(self, loop, keep_going):
        for index in self.degraded:
            valve = self.valves[index]
            loop.schedule_after(
                DEGRADE_AT, lambda v=valve: v.degrade(self.factor))
            loop.schedule_after(RESTORE_AT, valve.restore)

    def stop(self):
        pass


def brownout_run(n, degraded, factor, fraction, seed):
    valves = {}

    def factory(index):
        valve = DegradedSUT(FixedLatencySUT(latency=0.002))
        valves[index] = valve
        return valve

    fleet = ReplicaSet(factory, initial_replicas=n, seed=seed)
    policy = OutlierPolicy(
        period=0.010, min_observations=8, ejection_duration=0.050,
        probe_timeout=0.008, max_ejection_fraction=fraction)
    detector = OutlierDetector(fleet, policy, seed=seed)
    run_settings = TestSettings(
        scenario=Scenario.SERVER, server_target_qps=400.0,
        server_latency_bound=0.5, min_query_count=300,
        min_duration=HORIZON, watchdog_timeout=60.0, seed=seed,
    )
    result = run_benchmark(
        fleet, EchoQSL(), run_settings,
        services=[_Brownout(valves, degraded, factor), detector])
    return fleet, detector, result


def max_simultaneous_quarantine(trace):
    """Replay the ejection trail and report the peak quarantine size.

    ``eject`` admits a replica to quarantine, ``readmit`` releases it;
    ``probe`` and ``re-eject`` leave membership unchanged (a re-eject
    only restarts an already-quarantined replica's clock).
    """
    active, peak = set(), 0
    for event in trace:
        if event.action == "eject":
            active.add(event.replica)
        elif event.action == "readmit":
            active.discard(event.replica)
        peak = max(peak, len(active))
    return peak


@given(
    n=st.integers(min_value=3, max_value=6),
    mask=st.integers(min_value=0, max_value=63),
    factor=st.floats(min_value=5.0, max_value=16.0,
                     allow_nan=False, allow_infinity=False),
    fraction=st.sampled_from([0.2, 0.34, 0.5]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=12, deadline=None)
def test_ejections_stay_bounded_and_the_fleet_recovers(
        n, mask, factor, fraction, seed):
    degraded = [index for index in range(n) if mask >> index & 1]
    fleet, detector, result = brownout_run(
        n, degraded, factor, fraction, seed)

    # Safety: the quarantine never outgrows the policy's budget.  No
    # replica is administratively killed here, so "alive" is the whole
    # fleet for the entire run.
    assert max_simultaneous_quarantine(detector.trace) \
        <= int(fraction * n)

    # The referee invariant holds under every draw: nothing is lost.
    assert not result.log.failed_records()
    records = result.log.completed_records()
    assert len({r.query.id for r in records}) == len(records)

    # Liveness: degradation ended at RESTORE_AT and the run served on
    # until HORIZON, so every quarantined replica had time to pass
    # probation.  The fleet must be back at full strength.
    assert detector.quarantined == []
    assert all(r.health is ReplicaHealth.UP for r in fleet.replicas)
    # Only ever-degraded replicas may appear in the trail.
    assert {event.replica for event in detector.trace} <= set(degraded)
