"""Zone topology: fault domains, zone-aware policies, zone scaling."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.durability import run_fingerprint
from repro.fleet import (
    ReplicaHealth,
    ReplicaSet,
    ZoneBacklogSignal,
    ZoneLocalPolicy,
    ZoneSpreadPolicy,
    make_policy,
)

from tests.conftest import EchoQSL, FixedLatencySUT


def server_settings(queries=300, qps=200.0, bound=0.05, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def echo_fleet(n=4, latency=0.004, **kwargs):
    return ReplicaSet(lambda i: FixedLatencySUT(latency=latency),
                      initial_replicas=n, **kwargs)


def started_fleet(**kwargs):
    fleet = echo_fleet(**kwargs)
    fleet.start_run(EventLoop(VirtualClock()), lambda q, r: None)
    return fleet


class TestTopology:
    def test_integer_zones_stripe_round_robin(self):
        fleet = started_fleet(n=5, zones=2)
        assert [r.zone for r in fleet.replicas] == \
            ["z0", "z1", "z0", "z1", "z0"]
        assert fleet.zone_names == ["z0", "z1"]
        assert [r.index for r in fleet.zone_replicas("z1")] == [1, 3]

    def test_sequence_and_callable_zone_maps(self):
        named = started_fleet(n=4, zones=["east", "west"])
        assert [r.zone for r in named.replicas] == \
            ["east", "west", "east", "west"]
        blocked = started_fleet(n=4, zones=lambda i: f"rack{i // 2}")
        assert [r.zone for r in blocked.replicas] == \
            ["rack0", "rack0", "rack1", "rack1"]

    def test_default_is_one_zone(self):
        fleet = started_fleet(n=3)
        assert fleet.zone_names == ["z0"]

    def test_validation(self):
        with pytest.raises(ValueError, match="zones"):
            echo_fleet(zones=0)
        with pytest.raises(ValueError, match="zones"):
            echo_fleet(zones=[])
        with pytest.raises(ValueError, match="min_per_zone"):
            echo_fleet(min_per_zone=-1)


class TestZoneOutage:
    def test_kill_zone_rescues_and_survivors_serve(self):
        fleet = echo_fleet(n=4, zones=2, policy="round-robin")

        class _KillZone:
            def __init__(self, fleet):
                self.fleet = fleet
                self.rescued = None

            def start(self, loop, keep_going):
                def _fire():
                    self.rescued = self.fleet.kill_zone("z0")
                loop.schedule_after(0.4, _fire)

            def stop(self):
                pass

        service = _KillZone(fleet)
        result = run_benchmark(fleet, EchoQSL(), server_settings(),
                               services=[service])
        assert result.valid
        assert not result.log.failed_records()
        assert service.rescued is not None
        assert fleet.stats.zone_kills == 1
        for replica in fleet.zone_replicas("z0"):
            assert replica.health is ReplicaHealth.DOWN
        # No query was lost: every issue completed, on a survivor if
        # it was in flight when its zone died.
        assert len(result.log.completed_records()) == 300

    def test_restore_zone_brings_the_domain_back(self):
        fleet = started_fleet(n=4, zones=2)
        fleet.kill_zone("z1")
        assert len(fleet.available_replicas) == 2
        assert fleet.restore_zone("z1") == 2
        assert len(fleet.available_replicas) == 4

    def test_scaled_down_replica_stays_parked_on_zone_restore(self):
        fleet = started_fleet(n=4, zones=2, min_replicas=1)
        # Drains the highest-indexed replica (3, zone z1); it parks at
        # once since nothing is in flight.
        assert fleet.scale_down()
        assert fleet.replicas[3].health is ReplicaHealth.DOWN
        fleet.kill_zone("z1")
        assert fleet.restore_zone("z1") == 1
        # The administratively-parked replica is not resurrected.
        assert fleet.replicas[3].health is ReplicaHealth.DOWN
        assert fleet.replicas[1].health is ReplicaHealth.UP


class TestZoneAwareScaling:
    def test_scale_down_respects_min_per_zone(self):
        fleet = started_fleet(n=4, zones=2, min_replicas=1,
                              min_per_zone=1)
        assert fleet.scale_down()
        assert fleet.scale_down()
        # Two replicas remain, one per zone; a third scale_down finds
        # no victim whose zone would survive above the minimum.
        assert not fleet.scale_down()
        survivors = fleet.available_replicas
        assert sorted(r.zone for r in survivors) == ["z0", "z1"]

    def test_scale_up_unparks_into_the_thinnest_zone(self):
        fleet = started_fleet(n=4, zones=2, min_replicas=1)
        for _ in range(3):       # parks replicas 3 (z1), 2 (z0), 1 (z1)
            assert fleet.scale_down()
        assert [r.zone for r in fleet.available_replicas] == ["z0"]
        assert fleet.scale_up()
        # z1 had zero available replicas, so the revival lands there.
        assert fleet.replicas[1].health is ReplicaHealth.UP
        assert fleet.replicas[1].zone == "z1"

    def test_fresh_replicas_follow_the_zone_map(self):
        fleet = started_fleet(n=2, zones=2, max_replicas=4)
        assert fleet.scale_up()
        assert len(fleet.replicas) == 3
        assert fleet.replicas[2].zone == "z0"


class TestZonePolicies:
    def test_registry_knows_the_zone_policies(self):
        assert isinstance(make_policy("zone-spread"), ZoneSpreadPolicy)
        assert isinstance(make_policy("zone-local"), ZoneLocalPolicy)

    def test_zone_spread_alternates_zones(self):
        fleet = started_fleet(n=4, zones=2, policy="zone-spread")
        ranked = fleet.policy.rank_for(None, fleet.available_replicas)
        zones = [r.zone for r in ranked]
        assert len(ranked) == 4
        # No two adjacent ranking positions share a fault domain.
        assert all(a != b for a, b in zip(zones, zones[1:]))

    def test_zone_spread_serves_a_valid_run_and_spreads(self):
        fleet = echo_fleet(n=4, zones=2, policy="zone-spread")
        result = run_benchmark(fleet, EchoQSL(), server_settings())
        assert result.valid
        issued = [r.issued for r in fleet.replicas]
        assert all(count > 0 for count in issued)
        per_zone = [issued[0] + issued[2], issued[1] + issued[3]]
        # Both zones carry a comparable share of the load.
        assert min(per_zone) > 0.3 * sum(per_zone)

    def test_zone_local_prefers_the_local_zone(self):
        fleet = echo_fleet(n=4, zones=2,
                           policy=ZoneLocalPolicy(local_zone="z1"))
        result = run_benchmark(fleet, EchoQSL(),
                               server_settings(queries=200))
        assert result.valid
        issued = [r.issued for r in fleet.replicas]
        # z1 (replicas 1 and 3) never saturated, z0 never needed.
        assert issued[1] + issued[3] == 200

    def test_zone_local_defaults_to_the_first_sorted_zone(self):
        fleet = echo_fleet(n=4, zones=["b", "a"], policy=ZoneLocalPolicy())
        result = run_benchmark(fleet, EchoQSL(),
                               server_settings(queries=100))
        assert result.valid
        issued = [r.issued for r in fleet.replicas]
        # Sorted zones are ["a", "b"]; "a" holds replicas 1 and 3.
        assert issued[1] + issued[3] == 100

    def test_same_seed_same_zone_routing(self):
        def one_run(policy):
            fleet = echo_fleet(n=4, zones=2, policy=policy, seed=7)
            result = run_benchmark(fleet, EchoQSL(),
                                   server_settings(seed=7))
            return ([r.issued for r in fleet.replicas],
                    run_fingerprint(result))
        for policy in ("zone-spread", "zone-local"):
            assert one_run(policy) == one_run(policy)


class TestZoneBacklogSignal:
    def test_reports_the_hottest_zone(self):
        fleet = started_fleet(n=4, zones=2)
        signal = ZoneBacklogSignal()
        signal.bind(fleet)
        assert signal.sample(0.0) == 0.0
        fleet.replicas[0].outstanding = 6
        fleet.replicas[2].outstanding = 2
        # z0 carries (6 + 2) / 2 = 4 per available replica; z1 is idle.
        assert signal.sample(0.0) == pytest.approx(4.0)

    def test_outage_concentrates_the_signal(self):
        fleet = started_fleet(n=4, zones=2)
        signal = ZoneBacklogSignal()
        signal.bind(fleet)
        fleet.replicas[1].outstanding = 3
        fleet.kill_zone("z0")
        # Only z1's replicas remain visible: 3 queued over 2 heads.
        assert signal.sample(0.0) == pytest.approx(1.5)
