"""SweepHarness: capacity search against a modeled serial-queue SUT."""

import json

import pytest

from repro.core import Scenario, TestSettings
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.fleet import SweepConfig, SweepHarness

from tests.conftest import EchoQSL


class SerialQueueSUT(SutBase):
    """A modeled SUT with one worker and a fixed service time.

    Capacity is exactly ``1 / service_time`` qps; push the arrival rate
    past it and the queue (hence the latency) grows without bound -
    precisely the monotone validity the binary sweep relies on.
    """

    def __init__(self, service_time):
        super().__init__("serial-queue")
        self.service_time = service_time
        self._busy_until = 0.0

    def start_run(self, loop, responder):
        super().start_run(loop, responder)
        self._busy_until = 0.0

    def issue_query(self, query):
        start = max(self.loop.now, self._busy_until)
        self._busy_until = done = start + self.service_time
        responses = [
            QuerySampleResponse(s.id, s.index) for s in query.samples
        ]
        self.loop.schedule_after(
            done - self.loop.now, lambda: self.complete(query, responses))


def server_settings(bound, queries=200):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=1.0,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=600.0,
    )


def harness(service_time=0.010, bound=0.050, config=None):
    return SweepHarness(
        lambda: SerialQueueSUT(service_time), EchoQSL(),
        server_settings(bound), config)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="qps_low"):
            SweepConfig(qps_low=0.0)
        with pytest.raises(ValueError, match="qps_high"):
            SweepConfig(qps_low=10.0, qps_high=10.0)
        with pytest.raises(ValueError, match="resolution"):
            SweepConfig(resolution=0.0)
        with pytest.raises(ValueError, match="mode"):
            SweepConfig(mode="newton")
        with pytest.raises(ValueError, match="max_probes"):
            SweepConfig(max_probes=1)

    def test_requires_server_scenario(self):
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                min_query_count=1)
        with pytest.raises(ValueError, match="Server"):
            SweepHarness(lambda: SerialQueueSUT(0.01), EchoQSL(),
                         settings)


class TestBinarySearch:
    def test_agrees_with_step_scan_ground_truth(self):
        # The step scan IS the ground truth (first invalid rate, walked
        # exhaustively); binary must land within one step of it.
        binary = harness(config=SweepConfig(
            qps_low=20.0, qps_high=180.0, resolution=10.0,
            mode="binary")).run()
        step = harness(config=SweepConfig(
            qps_low=20.0, qps_high=180.0, resolution=10.0,
            mode="step")).run()
        assert binary.max_qps is not None
        assert step.max_qps is not None
        assert abs(binary.max_qps - step.max_qps) <= 10.0
        # And the found rate itself was probed valid.
        assert any(p.valid and p.qps == binary.max_qps
                   for p in binary.probes)

    def test_bracket_below_capacity_returns_high(self):
        config = SweepConfig(qps_low=10.0, qps_high=50.0,
                             resolution=5.0, mode="binary")
        result = harness(config=config).run()
        assert result.max_qps == 50.0
        assert len(result.probes) == 2  # low + high, no bisection

    def test_bracket_above_capacity_returns_none(self):
        config = SweepConfig(qps_low=500.0, qps_high=1000.0,
                             resolution=50.0, mode="binary")
        result = harness(config=config).run()
        assert result.max_qps is None
        assert len(result.probes) == 1  # qps_low already failed
        assert "below the bracket" in result.summary()

    def test_max_probes_caps_the_search(self):
        config = SweepConfig(qps_low=1.0, qps_high=4096.0,
                             resolution=0.001, mode="binary",
                             max_probes=6)
        result = harness(config=config).run()
        assert len(result.probes) <= 6
        assert result.max_qps is not None


class TestStepSearch:
    def test_walks_up_and_stops_at_the_first_invalid_rate(self):
        config = SweepConfig(qps_low=20.0, qps_high=300.0,
                             resolution=20.0, mode="step")
        result = harness(config=config).run()
        # Every probe but the last is valid; the walk stops at the
        # first invalid rate and reports the one below it.
        assert all(p.valid for p in result.probes[:-1])
        assert not result.probes[-1].valid
        assert result.max_qps == result.probes[-2].qps
        steps = [b.qps - a.qps
                 for a, b in zip(result.probes, result.probes[1:])]
        assert all(abs(s - 20.0) < 1e-9 for s in steps)


class TestReport:
    def test_report_round_trips_as_json(self, tmp_path):
        config = SweepConfig(qps_low=50.0, qps_high=150.0,
                             resolution=25.0, mode="step")
        result = harness(config=config).run()
        path = result.write(tmp_path / "BENCH_fleet.json")
        doc = json.loads(path.read_text())
        assert doc["benchmark"] == "fleet-capacity-sweep"
        assert doc["max_valid_qps"] == result.max_qps
        assert doc["probe_count"] == len(result.probes)
        assert doc["slo"]["latency_bound_s"] == 0.050
        for entry, probe in zip(doc["probes"], result.probes):
            assert entry["qps"] == probe.qps
            assert entry["valid"] == probe.valid

    def test_invalid_probes_carry_referee_reasons(self):
        config = SweepConfig(qps_low=500.0, qps_high=1000.0,
                             resolution=50.0, mode="binary")
        result = harness(config=config).run()
        failing = result.probes[0]
        assert not failing.valid
        assert failing.reasons  # the referee explains itself
