"""Balancing policies: rankings, determinism, and the factory."""

import numpy as np
import pytest

from repro.fleet import (
    POLICY_NAMES,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    WeightedP99Policy,
    make_policy,
)
from repro.fleet.replica import Replica


def replicas(n, outstanding=(), p99=()):
    out = []
    for i in range(n):
        r = Replica(i, sut=None, clock=lambda: 0.0)
        r.outstanding = outstanding[i] if i < len(outstanding) else 0
        for latency in ([p99[i]] * 8 if i < len(p99) else []):
            r.observe_latency(latency)
        out.append(r)
    return out


def fresh(policy, seed=0):
    policy.start_run(np.random.default_rng(seed))
    return policy


class TestRoundRobin:
    def test_rotates_one_step_per_decision(self):
        policy = fresh(RoundRobinPolicy())
        fleet = replicas(3)
        orders = [[r.index for r in policy.rank(fleet)] for _ in range(4)]
        assert orders == [[0, 1, 2], [1, 2, 0], [2, 0, 1], [0, 1, 2]]

    def test_every_replica_gets_equal_share(self):
        policy = fresh(RoundRobinPolicy())
        fleet = replicas(4)
        firsts = [policy.rank(fleet)[0].index for _ in range(40)]
        assert all(firsts.count(i) == 10 for i in range(4))

    def test_empty_candidate_list(self):
        assert fresh(RoundRobinPolicy()).rank([]) == []

    def test_survives_fleet_resize(self):
        policy = fresh(RoundRobinPolicy())
        policy.rank(replicas(5))
        # Shrinking the candidate set must not break the rotation.
        order = policy.rank(replicas(2))
        assert sorted(r.index for r in order) == [0, 1]


class TestLeastOutstanding:
    def test_prefers_idle_replica(self):
        policy = fresh(LeastOutstandingPolicy())
        fleet = replicas(3, outstanding=(5, 0, 2))
        assert [r.index for r in policy.rank(fleet)] == [1, 2, 0]

    def test_ties_break_by_index(self):
        policy = fresh(LeastOutstandingPolicy())
        fleet = replicas(3, outstanding=(1, 1, 1))
        assert [r.index for r in policy.rank(fleet)] == [0, 1, 2]


class TestWeightedP99:
    def test_slow_replica_loses_share(self):
        policy = fresh(WeightedP99Policy())
        fleet = replicas(2, p99=(0.001, 0.100))
        firsts = [policy.rank(fleet)[0].index for _ in range(200)]
        # 100x latency ratio => ~99% of primaries go to the fast one.
        assert firsts.count(0) > 180

    def test_fallback_order_is_fastest_first(self):
        policy = fresh(WeightedP99Policy())
        fleet = replicas(3, p99=(0.050, 0.001, 0.010))
        ranked = policy.rank(fleet)
        rest = [r.index for r in ranked[1:]]
        assert rest == sorted(rest, key=lambda i: fleet[i].p99())

    def test_same_seed_same_choices(self):
        fleet = replicas(3, p99=(0.01, 0.02, 0.03))
        a = fresh(WeightedP99Policy(), seed=7)
        b = fresh(WeightedP99Policy(), seed=7)
        for _ in range(50):
            assert ([r.index for r in a.rank(fleet)]
                    == [r.index for r in b.rank(fleet)])

    def test_cold_start_is_uniformish(self):
        policy = fresh(WeightedP99Policy())
        fleet = replicas(3)  # no latency observations at all
        firsts = [policy.rank(fleet)[0].index for _ in range(300)]
        assert all(firsts.count(i) > 50 for i in range(3))

    def test_single_candidate_consumes_no_entropy(self):
        policy = fresh(WeightedP99Policy(), seed=3)
        fleet = replicas(1)
        before = policy._rng.bit_generator.state["state"]["state"]
        assert [r.index for r in policy.rank(fleet)] == [0]
        assert policy._rng.bit_generator.state["state"]["state"] == before


class TestFactory:
    def test_names_resolve(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_none_defaults_to_round_robin(self):
        assert isinstance(make_policy(None), RoundRobinPolicy)

    def test_instance_passes_through(self):
        policy = LeastOutstandingPolicy()
        assert make_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown balancer policy"):
            make_policy("fastest-finger")

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            make_policy(42)
