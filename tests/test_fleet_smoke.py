"""Tier-1 fleet smoke: balancer determinism and kill-reroute.

Fast virtual-clock checks of the two fleet guarantees the CI gate
cares about: same-seed routing is bit-identical, and losing a replica
mid-run degrades gracefully (rerouted, not dropped).  The deep
behavioral suites live in ``tests/fleet/``; these carry the ``fleet``
marker so ``-m fleet`` selects the whole tier.
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.durability import run_fingerprint
from repro.fleet import ReplicaSet

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = pytest.mark.fleet


def settings(queries=200, seed=0, bound=0.2):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=200.0,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


class _KillAt:
    def __init__(self, fleet, index, at):
        self.fleet, self.index, self.at = fleet, index, at

    def start(self, loop, keep_going):
        loop.schedule_after(
            self.at, lambda: self.fleet.kill_replica(self.index))

    def stop(self):
        pass


def test_balancer_routing_is_seed_deterministic():
    def one_run():
        fleet = ReplicaSet(
            lambda i: FixedLatencySUT(latency=0.004),
            initial_replicas=3, policy="weighted-p99", seed=21)
        result = run_benchmark(fleet, EchoQSL(), settings(seed=21))
        return ([r.issued for r in fleet.replicas],
                run_fingerprint(result))

    routed_a, print_a = one_run()
    routed_b, print_b = one_run()
    assert routed_a == routed_b
    assert print_a == print_b


def test_replica_kill_reroutes_without_losing_queries():
    fleet = ReplicaSet(
        lambda i: FixedLatencySUT(latency=0.030),
        initial_replicas=3, policy="least-outstanding",
        attempt_timeout=0.5)
    killer = _KillAt(fleet, 0, 0.4)
    result = run_benchmark(fleet, EchoQSL(), settings(),
                           services=[killer])
    assert result.valid
    assert not result.log.failed_records()
    assert fleet.stats.kills == 1
    assert fleet.stats.shed_queries == 0
