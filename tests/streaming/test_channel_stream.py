"""Streams over the simulated channel: reordering, loss, reassembly.

The acceptance bar: a reordering transport must not change the verdict.
The channel holds a query's completion until its on-wire chunks land and
the client-side reassembler releases chunks in order, so the referee
sees the same clean streams it would see in-process.  Turning
reassembly off exposes the raw arrivals - and the referee flags them.
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.durability import run_fingerprint
from repro.network.simulated import ChannelModel, SimulatedChannelSUT
from repro.streaming import StreamModel, streaming_echo

from tests.conftest import EchoQSL

pytestmark = pytest.mark.streaming

MODEL = StreamModel(seed=7)


def settings(queries=60, **overrides):
    base = dict(
        scenario=Scenario.SERVER, server_target_qps=100.0,
        server_latency_bound=1.0, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=120.0,
        ttft_target_ns=200_000_000, tpot_target_ns=50_000_000,
    )
    base.update(overrides)
    return TestSettings(**base)


def channel_run(channel_model=None, reassemble=True, run_settings=None):
    sut = streaming_echo(latency=0.001, model=MODEL)
    if channel_model is not None:
        sut = SimulatedChannelSUT(
            sut, channel_model, reassemble_streams=reassemble)
    return sut, run_benchmark(
        sut, EchoQSL(),
        run_settings if run_settings is not None else settings())


def test_reordering_channel_preserves_the_verdict():
    _, direct = channel_run()
    channel, routed = channel_run(
        ChannelModel(latency=0.0, reorder_rate=0.5, seed=3))
    assert direct.valid and routed.valid
    assert direct.validity.reasons == routed.validity.reasons
    # The streams the referee saw are identical: same chunk/token
    # totals, no anomalies, nothing truncated.
    assert routed.log.stream_chunks == direct.log.stream_chunks
    assert routed.log.stream_tokens == direct.log.stream_tokens
    assert not routed.log.stream_chunk_anomalies
    assert not routed.log.truncated_streams
    assert channel.stats.chunks_forwarded > 0
    assert channel.stats.chunks_stranded == 0


def test_zero_effect_channel_is_bit_identical_to_direct():
    _, direct = channel_run()
    _, routed = channel_run(ChannelModel(latency=0.0, seed=3))
    assert run_fingerprint(direct) == run_fingerprint(routed)
    assert direct.summary() == routed.summary()


def test_raw_reordered_arrivals_are_misbehavior():
    channel, result = channel_run(
        ChannelModel(latency=0.0, reorder_rate=0.5, seed=3),
        reassemble=False)
    assert not result.valid
    assert any("stream chunk anomalies" in reason
               for reason in result.validity.reasons), \
        result.validity.reasons


def test_dropped_chunks_truncate_streams_not_the_run():
    channel, result = channel_run(
        ChannelModel(latency=0.0, drop_rate=0.08, seed=3))
    assert channel.stats.chunks_dropped > 0
    # Losing a chunk leaves a gap the reassembler can never fill: the
    # completion still lands (it is retried at the transport level in
    # real systems; here the terminal frame survives or the run fails
    # loudly), and the referee classifies the stream as truncated.
    assert result.log.truncated_streams
    assert not result.valid
    assert any("truncated streams" in reason
               for reason in result.validity.reasons)


def test_held_completions_never_strand_the_run():
    # Heavy reordering with a bandwidth cap: completions queue behind
    # chunks on the same reverse link; every query must still resolve.
    _, result = channel_run(
        ChannelModel(latency=0.0005, reorder_rate=0.7,
                     bandwidth=2_000_000.0, seed=5))
    assert result.log.outstanding == 0
    assert result.valid, result.validity.reasons
