"""Chunk hygiene behind ``InferenceServer``: the client's
``CompletionFilter`` over real sockets.

The satellite case from the ISSUE: duplicate and out-of-order chunk
delivery from a misbehaving streaming backend must be absorbed by
``NetworkSUT``'s filter (dropped and counted, never surfaced to the
referee), and a rerouted stream - the server FAILs the first attempt
after chunks already flowed - must restart cleanly at seq 0 with no
double-counting.
"""

import threading

import pytest

from repro.core.events import WallClock
from repro.core.config import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.core.query import QuerySampleResponse, StreamChunk
from repro.core.sut import SutBase
from repro.harness.netbench import SyntheticQSL
from repro.network.client import NetworkSUT
from repro.network.server import InferenceServer, ServerConfig
from repro.streaming import StreamModel, streaming_echo

pytestmark = [pytest.mark.socket, pytest.mark.streaming]

MODEL = StreamModel(
    first_token_delay=0.001, inter_token_delay=0.0002,
    min_tokens=4, max_tokens=6, seed=13)


def quick_settings(**overrides):
    defaults = dict(
        scenario=Scenario.SERVER,
        server_target_qps=100.0,
        server_latency_bound=0.5,
        min_query_count=30,
        min_duration=0.0,
        watchdog_timeout=20.0,
        ttft_target_ns=200_000_000,
        tpot_target_ns=50_000_000,
    )
    defaults.update(overrides)
    return TestSettings(**defaults)


def plan_key(query):
    """A per-query plan seed visible identically on both sides of the
    wire: the server remaps query ids AND sample ids per attempt, but
    the data-set *index* crosses untouched."""
    return query.samples[0].index


def single_request_config():
    # max_batch=1 guarantees every batch is a single request, the shape
    # the server can attribute chunks to (merged batches drop them).
    return ServerConfig(port=0, max_batch=1, workers=2)


def network_run(backend_factory, settings=None, **sut_kwargs):
    server = InferenceServer(backend_factory, single_request_config())
    server.start()
    sut_kwargs.setdefault("query_timeout", 5.0)
    sut = NetworkSUT(server.address, **sut_kwargs)
    try:
        result = run_benchmark(
            sut, SyntheticQSL(total=128, performance=32),
            settings if settings is not None else quick_settings(),
            clock=WallClock())
    finally:
        sut.close()
        server.stop()
    return sut, server, result


class NoisyStreamer(SutBase):
    """Streams the plan correctly but sprays extras: a mid-stream
    duplicate, an out-of-order jump, and a chunk after the final.

    A seq-0 re-send is deliberately NOT among the extras - the filter
    treats it as a legitimate stream restart, not a flaw.
    """

    def __init__(self):
        super().__init__("noisy-streamer")

    def issue_query(self, query):
        plan = MODEL.plan(plan_key(query))
        events = []
        for seq, event in enumerate(plan.chunks):
            events.append(
                StreamChunk(query.id, seq, event.token_count,
                            last=event.last))
            if seq == 1:
                # Duplicate re-send of seq 1, then a jump ahead.
                events.append(StreamChunk(query.id, 1, 1))
                events.append(StreamChunk(query.id, 99, 1))
        events.append(StreamChunk(query.id, 100, 1))  # after the final
        for i, chunk in enumerate(events):
            self.loop.schedule_after(
                0.0002 * (i + 1),
                lambda c=chunk: self.emit_chunk(query, c))
        responses = [
            QuerySampleResponse(s.id, s.index) for s in query.samples
        ]
        self.loop.schedule_after(
            0.0002 * (len(events) + 2),
            lambda: self.complete(query, responses))


class FlakyFirstAttemptStreamer(SutBase):
    """Streams chunks, then FAILs each query's first attempt - the
    client must retry and the restarted stream must screen clean.

    The server assigns a fresh internal query id per attempt, so both
    the attempt counter and the stream plan key off the sample ids,
    which are stable across retries of the same logical query.
    """

    _attempts = {}
    _lock = threading.Lock()

    def __init__(self):
        super().__init__("flaky-first-attempt")

    def issue_query(self, query):
        key = plan_key(query)
        with self._lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
        plan = MODEL.plan(key)
        for seq, event in enumerate(plan.chunks):
            self.loop.schedule_after(
                event.offset,
                lambda s=seq, e=event: self.emit_chunk(
                    query,
                    StreamChunk(query.id, s, e.token_count, last=e.last)))
        if attempt == 0:
            self.loop.schedule_after(
                plan.duration + 0.0005,
                lambda: self.fail(query, "injected first-attempt loss"))
        else:
            responses = [
                QuerySampleResponse(s.id, s.index) for s in query.samples
            ]
            self.loop.schedule_after(
                plan.duration + 0.0005,
                lambda: self.complete(query, responses))


def test_streaming_backend_over_real_sockets_is_valid():
    sut, server, result = network_run(
        lambda: streaming_echo(latency=0.001, model=MODEL))
    assert result.valid, result.validity.reasons
    assert sut.stats.chunks_received > 0
    assert server.stats.chunks == sut.stats.chunks_received
    assert not result.log.stream_chunk_anomalies
    assert not result.log.truncated_streams
    for record in result.log.completed_records():
        assert record.stream_closed
        assert MODEL.min_tokens <= record.token_count <= MODEL.max_tokens


def test_duplicate_and_out_of_order_chunks_are_filtered():
    sut, server, result = network_run(NoisyStreamer)
    # The filter absorbed every extra: three per query, none reached
    # the referee, and the run's verdict is untouched.
    assert sut.stats.filtered_chunks >= 3 * result.metrics.query_count
    assert result.valid, result.validity.reasons
    assert not result.log.stream_chunk_anomalies
    for record in result.log.completed_records():
        plan = MODEL.plan(plan_key(record.query))
        assert record.chunk_count == len(plan.chunks)
        assert record.stream_closed


def test_rerouted_stream_restarts_cleanly():
    FlakyFirstAttemptStreamer._attempts = {}
    sut, server, result = network_run(
        FlakyFirstAttemptStreamer, max_attempts=3, query_timeout=5.0)
    assert result.valid, result.validity.reasons
    assert sut.stats.retries > 0
    assert not result.log.stream_chunk_anomalies
    assert not result.log.truncated_streams
    # Retried queries restarted their streams; chunk counts match one
    # clean pass of the plan - the dead attempt was not double-counted.
    restarted = [r for r in result.log.completed_records()
                 if r.stream_restarts >= 1]
    assert restarted
    for record in result.log.completed_records():
        plan = MODEL.plan(plan_key(record.query))
        assert record.chunk_count == len(plan.chunks)
        assert record.token_count == plan.token_count
