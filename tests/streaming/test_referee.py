"""The referee's chunk bookkeeping: classification, timing, audit log."""

import json

import pytest

from repro.core.logging import QueryLog
from repro.core.query import (
    Query, QuerySample, QuerySampleResponse, StreamChunk,
)

pytestmark = pytest.mark.streaming


def make_query(qid=1):
    return Query(
        id=qid, samples=(QuerySample(id=100, index=0),), issue_time=0.0)


def issued(log, qid=1, time=1.0):
    query = make_query(qid)
    log.record_issue(query, time, scheduled_time=time)
    return query


def complete(log, query, time):
    log.observe_completion(
        query, time, [QuerySampleResponse(100, 0)], keep_responses=False)


def test_clean_stream_records_timing_and_counts():
    log = QueryLog()
    query = issued(log)
    assert log.record_chunk(query, 1.003, StreamChunk(1, 0, 3)) == "chunk"
    assert log.record_chunk(query, 1.005, StreamChunk(1, 1, 3)) == "chunk"
    assert log.record_chunk(
        query, 1.007, StreamChunk(1, 2, 3, last=True)) == "chunk"
    complete(log, query, 1.008)
    record = log.record_for(1)
    assert record.streamed and record.stream_closed
    assert record.chunk_count == 3 and record.token_count == 9
    assert record.ttft == pytest.approx(0.003)
    assert record.tpot == pytest.approx(0.004 / 8)
    assert log.stream_chunks == 3 and log.stream_tokens == 9
    assert not log.stream_chunk_anomalies and not log.truncated_streams


def test_restart_resets_the_attempt_not_the_query():
    log = QueryLog()
    query = issued(log)
    log.record_chunk(query, 1.003, StreamChunk(1, 0))
    log.record_chunk(query, 1.004, StreamChunk(1, 1))
    # A wrapper reissued the query; the new attempt starts at seq 0.
    assert log.record_chunk(query, 1.050, StreamChunk(1, 0)) == "restart"
    log.record_chunk(query, 1.052, StreamChunk(1, 1, last=True))
    complete(log, query, 1.053)
    record = log.record_for(1)
    assert record.stream_restarts == 1
    assert record.chunk_count == 2  # the dead attempt is not counted
    assert record.first_chunk_time == pytest.approx(1.050)
    assert not log.stream_chunk_anomalies
    assert log.anomaly_count == 0


@pytest.mark.parametrize("shape", ["duplicate", "out-of-order"])
def test_gap_and_duplicate_chunks_are_anomalies(shape):
    log = QueryLog()
    query = issued(log)
    log.record_chunk(query, 1.003, StreamChunk(1, 0))
    if shape == "duplicate":
        # Re-sending seq 1 after progressing past it.
        log.record_chunk(query, 1.004, StreamChunk(1, 1))
        status = log.record_chunk(query, 1.005, StreamChunk(1, 1))
    else:
        # Seq 2 skips ahead of the expected seq 1.
        status = log.record_chunk(query, 1.004, StreamChunk(1, 2))
    assert status == "anomaly"
    assert len(log.stream_chunk_anomalies) == 1
    assert shape in log.stream_chunk_anomalies[0][2]
    assert log.anomaly_count == 1


def test_chunk_after_final_is_an_anomaly():
    log = QueryLog()
    query = issued(log)
    log.record_chunk(query, 1.003, StreamChunk(1, 0, last=True))
    assert log.record_chunk(query, 1.004, StreamChunk(1, 1)) == "anomaly"
    assert "final" in log.stream_chunk_anomalies[0][2]


def test_late_and_unsolicited_chunks_are_classified():
    log = QueryLog()
    query = issued(log)
    complete(log, query, 1.010)
    assert log.record_chunk(query, 1.011, StreamChunk(1, 0)) == "late"
    stranger = make_query(99)
    assert log.record_chunk(
        stranger, 1.012, StreamChunk(99, 0)) == "unsolicited"


def test_completion_without_final_chunk_is_truncated():
    log = QueryLog()
    query = issued(log)
    log.record_chunk(query, 1.003, StreamChunk(1, 0))
    complete(log, query, 1.010)
    assert log.truncated_streams == [(1, 1.010)]
    assert log.anomaly_count == 1
    # The completion itself is still recorded - the answer arrived.
    assert log.record_for(1).completion_time == 1.010


def test_single_token_stream_has_zero_tpot():
    log = QueryLog()
    query = issued(log)
    log.record_chunk(query, 1.002, StreamChunk(1, 0, 1, last=True))
    complete(log, query, 1.003)
    record = log.record_for(1)
    assert record.tpot == 0.0
    assert record.ttft == pytest.approx(0.002)


def test_stream_fields_reach_the_audit_log():
    log = QueryLog()
    query = issued(log)
    log.record_chunk(query, 1.003, StreamChunk(1, 0, 2))
    log.record_chunk(query, 1.005, StreamChunk(1, 1, 2, last=True))
    complete(log, query, 1.006)
    row = next(
        json.loads(line) for line in log.to_jsonl().splitlines()
        if json.loads(line).get("query_id") == 1
    )
    assert row["chunk_count"] == 2
    assert row["token_count"] == 4
    assert row["stream_closed"] is True
    assert row["first_chunk_time"] == pytest.approx(1.003)
    assert row["stream_restarts"] == 0
