"""StreamingSUT: chunks precede the completion, failures pass through."""

import pytest

from repro.core.events import EventLoop, VirtualClock
from repro.core.query import (
    Query, QueryFailure, QuerySample, QuerySampleResponse, StreamChunk,
)
from repro.core.sut import SutBase
from repro.streaming import StreamModel, StreamingSUT, streaming_echo
from repro.sut.echo import EchoSUT

pytestmark = pytest.mark.streaming


def make_query(qid=1, samples=1):
    return Query(
        id=qid,
        samples=tuple(QuerySample(id=100 + i, index=i)
                      for i in range(samples)),
        issue_time=0.0,
    )


def drive(sut, queries):
    """Run ``queries`` through ``sut`` on a fresh loop; returns the
    ordered (query_id, response) deliveries."""
    loop = EventLoop(VirtualClock())
    delivered = []
    sut.start_run(loop, lambda q, r: delivered.append((q.id, r)))
    for query in queries:
        sut.issue_query(query)
    sut.flush()
    loop.run()
    return delivered


def test_chunks_arrive_in_order_then_the_completion():
    model = StreamModel(seed=9)
    sut = streaming_echo(latency=0.001, model=model)
    query = make_query(qid=42)
    delivered = drive(sut, [query])
    plan = model.plan(42)
    chunks = [r for _, r in delivered if isinstance(r, StreamChunk)]
    assert len(chunks) == len(plan.chunks)
    assert [c.seq for c in chunks] == list(range(len(chunks)))
    assert [c.token_count for c in chunks] == \
        [e.token_count for e in plan.chunks]
    assert chunks[-1].last and not any(c.last for c in chunks[:-1])
    # The terminal completion is the very last delivery.
    final_id, final = delivered[-1]
    assert final_id == 42
    assert isinstance(final, list)
    assert [r.sample_id for r in final] == [100]


def test_failures_pass_through_without_a_stream():
    class FailingSUT(SutBase):
        def issue_query(self, query):
            self.loop.schedule_after(
                0.001, lambda: self.fail(query, "backend down"))

    delivered = drive(StreamingSUT(FailingSUT("failing")), [make_query()])
    assert len(delivered) == 1
    assert isinstance(delivered[0][1], QueryFailure)


def test_nested_streaming_wrappers_compose():
    """An inner StreamingSUT's chunks pass through the outer shim; only
    the terminal completion is re-streamed (by the outer)."""
    model = StreamModel(seed=9)
    inner = StreamingSUT(EchoSUT(latency=0.001), model=model)
    outer = StreamingSUT(inner, model=model)
    query = make_query(qid=7)
    delivered = drive(outer, [query])
    plan = model.plan(7)
    chunks = [r for _, r in delivered if isinstance(r, StreamChunk)]
    # Inner stream forwarded + outer restream of the completion.
    assert len(chunks) == 2 * len(plan.chunks)
    assert isinstance(delivered[-1][1], list)


def test_interleaved_queries_keep_their_own_streams():
    model = StreamModel(seed=9)
    sut = streaming_echo(latency=0.001, model=model)
    queries = [make_query(qid=i) for i in range(5)]
    delivered = drive(sut, queries)
    for query in queries:
        seqs = [r.seq for qid, r in delivered
                if qid == query.id and isinstance(r, StreamChunk)]
        assert seqs == list(range(len(model.plan(query.id).chunks)))
