"""Token-level SLO metrics: fallbacks, percentiles, goodput, validation."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.logging import QueryLog
from repro.core.metrics import (
    compute_stream_metrics, effective_ttft, effective_tpot,
    record_meets_stream_slos,
)
from repro.core.query import (
    Query, QuerySample, QuerySampleResponse, StreamChunk,
)

pytestmark = pytest.mark.streaming


def settings(**overrides):
    base = dict(
        scenario=Scenario.SERVER, server_target_qps=100.0,
        server_latency_bound=0.5, min_query_count=1, min_duration=0.0,
    )
    base.update(overrides)
    return TestSettings(**base)


def add_streamed(log, qid, issue, first, last, tokens, chunks=2):
    """One clean streamed completion with the given token timing."""
    query = Query(
        id=qid, samples=(QuerySample(id=qid * 10, index=0),),
        issue_time=issue)
    log.record_issue(query, issue, scheduled_time=issue)
    per_chunk = tokens // chunks
    remainder = tokens - per_chunk * (chunks - 1)
    span = last - first
    for i in range(chunks):
        time = first if chunks == 1 else first + span * i / (chunks - 1)
        count = remainder if i == chunks - 1 else per_chunk
        log.record_chunk(
            query, time,
            StreamChunk(qid, i, count, last=(i == chunks - 1)))
    log.observe_completion(
        query, last + 0.0005,
        [QuerySampleResponse(qid * 10, 0)], keep_responses=False)
    return query


def add_atomic(log, qid, issue, done):
    query = Query(
        id=qid, samples=(QuerySample(id=qid * 10, index=0),),
        issue_time=issue)
    log.record_issue(query, issue, scheduled_time=issue)
    log.observe_completion(
        query, done, [QuerySampleResponse(qid * 10, 0)],
        keep_responses=False)
    return query


def test_effective_ttft_falls_back_to_full_latency():
    log = QueryLog()
    add_atomic(log, 1, issue=0.0, done=0.040)
    record = log.record_for(1)
    assert record.ttft is None
    assert effective_ttft(record) == pytest.approx(0.040)
    assert effective_tpot(record) == 0.0


def test_slo_check_applies_both_targets():
    log = QueryLog()
    # TTFT 10 ms, TPOT (30-10)/(8-1) ~ 2.9 ms over 8 tokens.
    add_streamed(log, 1, issue=0.0, first=0.010, last=0.030, tokens=8)
    record = log.record_for(1)
    ok = settings(ttft_target_ns=20_000_000, tpot_target_ns=5_000_000)
    assert record_meets_stream_slos(record, ok)
    tight_ttft = settings(ttft_target_ns=5_000_000)
    assert not record_meets_stream_slos(record, tight_ttft)
    tight_tpot = settings(tpot_target_ns=1_000_000)
    assert not record_meets_stream_slos(record, tight_tpot)
    # No targets configured: everything complies.
    assert record_meets_stream_slos(record, settings())


def test_metrics_are_none_when_nothing_streamed():
    log = QueryLog()
    add_atomic(log, 1, issue=0.0, done=0.010)
    assert compute_stream_metrics(log, settings()) is None


def test_percentiles_goodput_and_violation_counts():
    log = QueryLog()
    # Ten streamed queries with TTFTs 1..10 ms, identical 1 ms TPOT
    # (9 ms first-to-last over 10 tokens), one per 10 ms of run time.
    for i in range(10):
        issue = i * 0.010
        first = issue + (i + 1) * 0.001
        add_streamed(log, i + 1, issue, first, first + 0.009, tokens=10)
    target = settings(ttft_target_ns=5_000_000)  # 5 ms: TTFTs 6..10 miss
    metrics = compute_stream_metrics(log, target)
    assert metrics.streamed_query_count == 10
    assert metrics.token_count == 100
    assert metrics.ttft_p50 == pytest.approx(0.0055, rel=0.1)
    assert metrics.ttft_p99 == pytest.approx(0.010, rel=0.02)
    assert metrics.tpot_p50 == pytest.approx(0.001)
    assert metrics.ttft_violations == 5
    assert metrics.tpot_violations == 0
    assert metrics.slo_compliant_count == 5
    # Goodput counts only the 5 compliant queries over the run window.
    duration = max(r.completion_time for r in log.completed_records()) \
        - min(r.issue_time for r in log.completed_records())
    assert metrics.goodput == pytest.approx(5 / duration)


def test_mixed_population_judges_compliance_over_all_completions():
    log = QueryLog()
    add_streamed(log, 1, issue=0.0, first=0.002, last=0.010, tokens=8)
    # The atomic query's effective TTFT is its 80 ms latency - a miss.
    add_atomic(log, 2, issue=0.0, done=0.080)
    metrics = compute_stream_metrics(
        log, settings(ttft_target_ns=50_000_000))
    assert metrics.streamed_query_count == 1     # percentiles: streamed only
    assert metrics.ttft_violations == 1          # compliance: all completions
    assert metrics.slo_compliant_count == 1


def test_restarts_are_counted_but_not_penalized():
    log = QueryLog()
    query = add_streamed(log, 1, issue=0.0, first=0.002, last=0.010,
                         tokens=8)
    log2 = QueryLog()
    q = Query(id=1, samples=(QuerySample(id=10, index=0),), issue_time=0.0)
    log2.record_issue(q, 0.0)
    log2.record_chunk(q, 0.001, StreamChunk(1, 0))
    log2.record_chunk(q, 0.002, StreamChunk(1, 0))   # restart
    log2.record_chunk(q, 0.003, StreamChunk(1, 1, last=True))
    log2.observe_completion(
        q, 0.004, [QuerySampleResponse(10, 0)], keep_responses=False)
    metrics = compute_stream_metrics(log2, settings())
    assert metrics.restart_count == 1
    assert log2.anomaly_count == 0
