"""StreamReassembler: in-order release, duplicates, restarts, stranding."""

import pytest

from repro.core.query import StreamChunk
from repro.streaming import StreamReassembler

pytestmark = pytest.mark.streaming


def chunk(seq, last=False, qid=1):
    return StreamChunk(qid, seq, 1, last=last)


def seqs(released):
    return [c.seq for c in released]


def test_in_order_arrivals_release_immediately():
    r = StreamReassembler()
    for seq in range(3):
        assert seqs(r.push(1, chunk(seq))) == [seq]
    assert r.duplicates_dropped == 0
    assert r.finish(1) == 0


def test_early_arrivals_are_held_until_the_gap_fills():
    r = StreamReassembler()
    assert r.push(1, chunk(2)) == []
    assert r.push(1, chunk(1)) == []
    assert seqs(r.push(1, chunk(0))) == [0, 1, 2]
    assert r.held_peak == 3


def test_duplicates_are_dropped_whether_released_or_held():
    # Note seq 0 is exempt: a re-sent seq 0 is indistinguishable from a
    # stream restart and is treated as one.
    r = StreamReassembler()
    r.push(1, chunk(0))
    r.push(1, chunk(1))
    assert r.push(1, chunk(1)) == []      # already released
    r.push(1, chunk(3))
    assert r.push(1, chunk(3)) == []      # still held
    assert r.duplicates_dropped == 2
    assert seqs(r.push(1, chunk(2))) == [2, 3]


def test_restart_discards_the_old_attempts_buffer():
    r = StreamReassembler()
    r.push(1, chunk(0))
    r.push(1, chunk(2))                    # held behind the gap at 1
    assert seqs(r.push(1, chunk(0))) == [0]  # restart: fresh attempt
    # Seq 1 of the *new* attempt releases cleanly; the stale held seq-2
    # chunk did not leak into it.
    assert seqs(r.push(1, chunk(1))) == [1]
    assert seqs(r.push(1, chunk(2, last=True))) == [2]


def test_finish_reports_stranded_chunks():
    r = StreamReassembler()
    r.push(1, chunk(0))
    r.push(1, chunk(2))                    # chunk 1 was lost on the wire
    r.push(1, chunk(3, last=True))
    assert r.finish(1) == 2                # 2 and 3 never released
    assert r.open_streams == 0


def test_streams_are_independent_per_query():
    r = StreamReassembler()
    r.push(1, chunk(1, qid=1))             # held: gap at 0
    assert seqs(r.push(2, chunk(0, qid=2))) == [0]
    assert r.open_streams == 2
    assert r.finish(1) == 1
    assert r.finish(2) == 0
