"""Tests for the streaming inference subsystem (repro.streaming)."""
