"""Streams compose with the resilience stack: retries, failover, fleets.

The guarantee under test is the ISSUE's composition clause: a retried,
rerouted, or hedged stream restarts cleanly at seq 0, the referee logs a
*restart* rather than an anomaly, and dead-attempt chunks are never
double-counted.
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.core.query import QuerySampleResponse, StreamChunk
from repro.core.sut import SutBase
from repro.durability import SelfHealingSUT
from repro.faults import ResilientSUT, RetryPolicy
from repro.fleet import ReplicaSet
from repro.streaming import StreamModel, StreamingSUT, streaming_echo

from tests.conftest import EchoQSL

pytestmark = pytest.mark.streaming

MODEL = StreamModel(
    first_token_delay=0.001, inter_token_delay=0.0005,
    min_tokens=4, max_tokens=6, seed=11)


def settings(queries=30, **overrides):
    base = dict(
        scenario=Scenario.SERVER, server_target_qps=50.0,
        server_latency_bound=1.0, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=120.0,
        ttft_target_ns=200_000_000, tpot_target_ns=50_000_000,
    )
    base.update(overrides)
    return TestSettings(**base)


class FlakyStreamer(SutBase):
    """Streams every attempt's chunks, but swallows the completion on
    each query's first attempt - the stream goes quiet after the final
    chunk and the wrapper's deadline must fire."""

    def __init__(self, model=MODEL, latency=0.001):
        super().__init__("flaky-streamer")
        self.model = model
        self.latency = latency
        self.attempts = {}

    def issue_query(self, query):
        attempt = self.attempts.get(query.id, 0)
        self.attempts[query.id] = attempt + 1
        plan = self.model.plan(query.id)
        for seq, event in enumerate(plan.chunks):
            self.loop.schedule_after(
                event.offset,
                lambda s=seq, e=event: self.emit_chunk(
                    query,
                    StreamChunk(query.id, s, e.token_count, last=e.last)))
        if attempt > 0:
            responses = [
                QuerySampleResponse(s.id, s.index) for s in query.samples
            ]
            self.loop.schedule_after(
                plan.duration + self.latency,
                lambda: self.complete(query, responses))


def assert_clean_streams(result, model=MODEL):
    assert result.valid, result.validity.reasons
    log = result.log
    assert not log.stream_chunk_anomalies
    assert not log.truncated_streams
    for record in log.completed_records():
        plan = model.plan(record.query.id)
        assert record.chunk_count == len(plan.chunks)
        assert record.token_count == plan.token_count
        assert record.stream_closed


def test_resilient_retry_restarts_the_stream():
    sut = ResilientSUT(
        FlakyStreamer(),
        policy=RetryPolicy(
            max_attempts=3, attempt_timeout=0.010,
            backoff_base=0.002, jitter="none"),
    )
    result = run_benchmark(sut, EchoQSL(), settings())
    assert_clean_streams(result)
    # Every query needed its second attempt...
    assert sut.stats.retries == result.metrics.query_count
    # ...and the referee saw each as exactly one restart, not misbehavior.
    for record in result.log.completed_records():
        assert record.stream_restarts == 1
    assert result.metrics.stream.restart_count == result.metrics.query_count


class FlawedStreamer(SutBase):
    """Streams the full plan, then answers with a malformed (empty)
    response set - the healing layer fails over on the flaw."""

    def __init__(self, model=MODEL, latency=0.001):
        super().__init__("flawed-streamer")
        self.model = model
        self.latency = latency

    def issue_query(self, query):
        plan = self.model.plan(query.id)
        for seq, event in enumerate(plan.chunks):
            self.loop.schedule_after(
                event.offset,
                lambda s=seq, e=event: self.emit_chunk(
                    query,
                    StreamChunk(query.id, s, e.token_count, last=e.last)))
        self.loop.schedule_after(
            plan.duration + self.latency,
            lambda: self.complete(query, []))


def test_healing_failover_restarts_the_stream():
    primary = FlawedStreamer()
    standby = streaming_echo(latency=0.001, model=MODEL)
    sut = SelfHealingSUT(primary, standby, attempt_timeout=0.050)
    result = run_benchmark(sut, EchoQSL(), settings())
    assert_clean_streams(result)
    assert sut.stats.failovers > 0
    # Each failed-over query restarted its stream on the standby - a
    # restart, not misbehavior.  (Once the breaker opens, later queries
    # route straight to the standby and stream cleanly first try.)
    restarted = sum(1 for r in result.log.completed_records()
                    if r.stream_restarts >= 1)
    assert restarted >= sut.stats.failovers


def test_healing_passthrough_forwards_chunks_untouched():
    sut = SelfHealingSUT(streaming_echo(latency=0.001, model=MODEL))
    result = run_benchmark(sut, EchoQSL(), settings())
    assert_clean_streams(result)
    assert result.metrics.stream.restart_count == 0


def test_replicaset_forwards_streams_per_replica():
    sut = ReplicaSet(
        lambda i: streaming_echo(latency=0.001, model=MODEL),
        initial_replicas=3)
    result = run_benchmark(sut, EchoQSL(), settings())
    assert_clean_streams(result)
    assert result.metrics.stream.restart_count == 0


def test_replicaset_reroute_restarts_the_stream():
    # Replica 0 is flaky (streams but never completes first attempts);
    # the reroute lands queries on a healthy replica whose fresh stream
    # must restart at seq 0.
    def factory(i):
        if i == 0:
            return FlakyStreamer()
        return streaming_echo(latency=0.001, model=MODEL)

    sut = ReplicaSet(factory, initial_replicas=2, attempt_timeout=0.010)
    result = run_benchmark(sut, EchoQSL(), settings())
    assert_clean_streams(result)
    assert sut.stats.reroutes > 0
    assert any(r.stream_restarts > 0
               for r in result.log.completed_records())
