"""The seeded stream model: deterministic plans, honest validation."""

import pytest

from repro.streaming import StreamModel

pytestmark = pytest.mark.streaming


def test_plans_are_deterministic_per_query_id():
    model = StreamModel(seed=3)
    assert model.plan(17) == model.plan(17)
    assert StreamModel(seed=3).plan(17) == model.plan(17)


def test_different_queries_and_seeds_get_different_plans():
    model = StreamModel(seed=3)
    plans = {model.plan(qid).chunks for qid in range(20)}
    assert len(plans) > 1
    assert StreamModel(seed=4).plan(17) != model.plan(17)


def test_plan_shape_respects_the_model():
    model = StreamModel(
        first_token_delay=0.002, inter_token_delay=0.0005,
        min_tokens=5, max_tokens=9, tokens_per_chunk=2, seed=0)
    for qid in range(50):
        plan = model.plan(qid)
        assert 5 <= plan.token_count <= 9
        assert sum(c.token_count for c in plan.chunks) == plan.token_count
        assert all(c.token_count <= 2 for c in plan.chunks)
        # Exactly one final chunk, at the end.
        assert [c.last for c in plan.chunks].count(True) == 1
        assert plan.chunks[-1].last
        # Offsets are non-decreasing; the first token obeys its delay.
        offsets = [c.offset for c in plan.chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == pytest.approx(0.002)
        assert plan.duration == offsets[-1]


def test_jitter_perturbs_but_never_reorders():
    jittered = StreamModel(jitter=0.0004, seed=5)
    for qid in range(20):
        offsets = [c.offset for c in jittered.plan(qid).chunks]
        assert offsets == sorted(offsets)
        assert all(offset >= 0 for offset in offsets)


@pytest.mark.parametrize("kwargs", [
    dict(first_token_delay=-0.001),
    dict(inter_token_delay=-0.001),
    dict(min_tokens=0),
    dict(max_tokens=2, min_tokens=3),
    dict(tokens_per_chunk=0),
    dict(jitter=-0.1),
])
def test_invalid_models_are_rejected(kwargs):
    with pytest.raises(ValueError):
        StreamModel(**kwargs)
