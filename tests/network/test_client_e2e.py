"""End-to-end Network division: the unmodified LoadGen over real sockets.

The acceptance path for the subsystem: a Server-scenario run on the wall
clock, through ``InferenceServer`` + ``NetworkSUT`` on loopback, must
come out VALID with correct response payloads - and every failure mode
(dead server, dropped connection, slow backend) must surface through the
failed-query machinery, never as a hang.
"""

import threading
import time

import pytest

from repro.core.config import Scenario, TestSettings
from repro.core.events import WallClock
from repro.core.loadgen import run_benchmark
from repro.harness.netbench import (
    SyntheticQSL,
    latency_overhead,
    parallel_echo_backend,
    run_over_localhost,
)
from repro.network.client import NetworkSUT, parse_address
from repro.network.server import InferenceServer, ServerConfig
from repro.sut.echo import EchoSUT

pytestmark = pytest.mark.socket


def quick_settings(**overrides):
    defaults = dict(
        scenario=Scenario.SERVER,
        server_target_qps=200.0,
        server_latency_bound=0.1,
        min_query_count=40,
        min_duration=0.0,
        watchdog_timeout=20.0,
    )
    defaults.update(overrides)
    return TestSettings(**defaults)


def test_parse_address():
    assert parse_address("127.0.0.1:90") == ("127.0.0.1", 90)
    assert parse_address(("h", 5)) == ("h", 5)
    with pytest.raises(ValueError):
        parse_address("no-port")


def test_server_scenario_run_is_valid_over_localhost():
    qsl = SyntheticQSL(total=256, performance=64)
    bundle = run_over_localhost(
        lambda: EchoSUT(latency=0.002), qsl, quick_settings())
    assert bundle.valid, bundle.result.validity.reasons
    assert bundle.result.metrics.query_count >= 40
    assert bundle.client_stats.gave_up_queries == 0
    assert bundle.server_stats["completed"] >= 40
    # Wire timings were captured for every completed query.
    assert len(bundle.transport) == bundle.result.metrics.query_count
    assert all(t.round_trip > 0 for t in bundle.transport.values())


def test_parallel_backend_serves_over_localhost():
    """The ``repro serve --backend parallel`` configuration end to end:
    LoadGen -> TCP -> InferenceServer -> shared process pool.  The wire
    contract is EchoSUT's, so validity proves payload correctness; the
    server's stop() must also release the pool (checked via its stats
    after the run)."""
    qsl = SyntheticQSL(total=256, performance=64)
    backend = parallel_echo_backend(workers=2, compute_time=0.001)
    bundle = run_over_localhost(backend, qsl, quick_settings())
    assert bundle.valid, bundle.result.validity.reasons
    assert bundle.server_stats["completed"] >= 40
    assert bundle.client_stats.gave_up_queries == 0
    # run_over_localhost stopped the server, which closed the pool.
    assert backend.pool.stats.per_worker_jobs
    assert not backend.pool.alive_workers


def test_response_payloads_cross_the_wire_intact():
    qsl = SyntheticQSL(total=64, performance=16)
    settings = quick_settings(min_query_count=20)
    server = InferenceServer(lambda: EchoSUT(latency=0.001),
                             ServerConfig(port=0))
    server.start()
    sut = NetworkSUT(server.address, query_timeout=5.0)
    try:
        result = run_benchmark(sut, qsl, settings, clock=WallClock(),
                               log_sample_probability=1.0)
        assert result.valid
        # The echo backend answers each sample with its index; the audit
        # log retained every response, so check them all.
        for record in result.log.completed_records():
            assert record.responses is not None
            by_id = {r.sample_id: r.data for r in record.responses}
            for sample in record.query.samples:
                assert by_id[sample.id] == sample.index
    finally:
        sut.close()
        server.stop()


def test_single_stream_scenario_also_works():
    qsl = SyntheticQSL(total=64, performance=16)
    settings = TestSettings(
        scenario=Scenario.SINGLE_STREAM,
        min_query_count=30,
        min_duration=0.0,
        watchdog_timeout=20.0,
    )
    bundle = run_over_localhost(
        lambda: EchoSUT(latency=0.001), qsl, settings)
    assert bundle.valid, bundle.result.validity.reasons


def test_network_overhead_is_measurable_but_bounded():
    qsl = SyntheticQSL(total=128, performance=32)
    settings = quick_settings()
    baseline = run_benchmark(EchoSUT(latency=0.002), qsl, settings,
                             clock=WallClock())
    net = run_over_localhost(lambda: EchoSUT(latency=0.002), qsl, settings)
    assert baseline.valid and net.valid
    overhead = latency_overhead(net, baseline)
    # Loopback + protocol overhead is real but far below the backend's
    # own 2 ms service time on any sane machine.
    assert overhead["mean_overhead_s"] < 0.002
    assert overhead["wire_share_s"] > 0


def test_dead_server_fails_queries_instead_of_hanging():
    qsl = SyntheticQSL(total=64, performance=16)
    server = InferenceServer(lambda: EchoSUT(latency=0.001),
                             ServerConfig(port=0))
    server.start()
    sut = NetworkSUT(server.address, query_timeout=0.2, max_attempts=1,
                     reconnect_backoff=0.01)
    # Kill the server shortly after the run starts: in-flight and future
    # queries must resolve as recorded failures, and the run must
    # terminate on its own well before the watchdog.
    killer = threading.Timer(0.05, lambda: server.stop(drain=False))
    killer.start()
    try:
        start = time.monotonic()
        result = run_benchmark(
            sut, qsl, quick_settings(watchdog_timeout=15.0),
            clock=WallClock())
        elapsed = time.monotonic() - start
    finally:
        killer.cancel()
        sut.close()
        server.stop()
    assert not result.valid
    failed = [r for r in result.log.records() if r.failed]
    assert failed, "expected recorded query failures after server death"
    reasons = {r.failure_reason for r in failed}
    assert any("connection" in reason or "deadline" in reason
               or "no live connection" in reason for reason in reasons)
    assert elapsed < 15.0, "run should finish well before the watchdog"


def test_slow_backend_hits_deadline_and_is_reported():
    qsl = SyntheticQSL(total=64, performance=16)
    server = InferenceServer(lambda: EchoSUT(latency=0.5),
                             ServerConfig(port=0, workers=1))
    server.start()
    sut = NetworkSUT(server.address, query_timeout=0.05, max_attempts=2)
    settings = quick_settings(
        server_target_qps=50.0, min_query_count=10, watchdog_timeout=15.0)
    try:
        result = run_benchmark(sut, qsl, settings, clock=WallClock())
    finally:
        sut.close()
        server.stop(drain=False, timeout=2.0)
    assert not result.valid
    assert sut.stats.retries > 0
    assert sut.stats.gave_up_queries > 0
    failed = [r for r in result.log.records() if r.failed]
    assert any("deadline" in r.failure_reason for r in failed)


def test_retry_recovers_from_one_lost_connection():
    qsl = SyntheticQSL(total=64, performance=16)
    server = InferenceServer(lambda: EchoSUT(latency=0.002),
                             ServerConfig(port=0, workers=2))
    server.start()
    # Two pooled connections: when one is severed mid-run the in-flight
    # queries on it retry over the survivor.
    sut = NetworkSUT(server.address, connections=2, query_timeout=1.0,
                     max_attempts=3, reconnect_backoff=0.01)

    def sever_one():
        with server._sessions_lock:
            sessions = list(server._sessions)
        if sessions:
            sessions[0].close()

    killer = threading.Timer(0.08, sever_one)
    killer.start()
    try:
        result = run_benchmark(
            sut, qsl,
            quick_settings(min_query_count=60, watchdog_timeout=15.0),
            clock=WallClock())
    finally:
        killer.cancel()
        sut.close()
        server.stop()
    # The run survives the severed connection; any query that lost its
    # attempt either recovered via retry or was recorded as failed
    # (never left hanging).
    assert sut.stats.connections_lost >= 1
    resolved = [r for r in result.log.records() if r.resolved]
    assert len(resolved) == len(result.log.records())
