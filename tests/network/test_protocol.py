"""Wire protocol: codec round trips, incremental framing, strictness."""

import numpy as np
import pytest

from repro.core.query import Query, QuerySample, QuerySampleResponse
from repro.network import protocol
from repro.network.protocol import (
    MAGIC,
    VERSION,
    FrameReader,
    FrameType,
    ProtocolError,
    decode_value,
    encode_frame,
    encode_value,
)


def roundtrip(value):
    return decode_value(encode_value(value))


class TestPayloadCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -1, 2**40, 0.0, -2.5, "", "héllo",
        b"", b"\x00\xff", [], [1, 2, 3], {}, {"a": 1, "b": [None, "x"]},
        {"nested": {"deep": [{"k": b"v"}]}},
    ])
    def test_scalars_and_containers(self, value):
        assert roundtrip(value) == value

    def test_tuple_decodes_as_list(self):
        assert roundtrip((1, 2)) == [1, 2]

    @pytest.mark.parametrize("dtype", ["<f4", "<f8", "<i4", "<u1", "<i8"])
    def test_ndarray_dtypes(self, dtype):
        array = np.arange(24, dtype=np.dtype(dtype)).reshape(2, 3, 4)
        back = roundtrip(array)
        assert back.dtype == array.dtype
        assert back.shape == array.shape
        assert np.array_equal(back, array)

    def test_zero_dim_ndarray(self):
        array = np.array(3.5, dtype=np.float32)
        back = roundtrip(array)
        assert back.shape == ()
        assert back == pytest.approx(3.5)

    def test_object_dtype_rejected_on_encode(self):
        with pytest.raises(TypeError):
            encode_value(np.array([object()]))

    def test_foreign_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(set([1]))

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(TypeError):
            encode_value({1: "x"})

    def test_unknown_tag_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_value(b"Q")

    def test_truncated_payload_is_protocol_error(self):
        blob = encode_value("hello world")
        with pytest.raises(ProtocolError):
            decode_value(blob[:-3])

    def test_trailing_bytes_are_protocol_error(self):
        with pytest.raises(ProtocolError):
            decode_value(encode_value(7) + b"\x00")

    def test_invalid_utf8_is_protocol_error(self):
        blob = b"S" + (4).to_bytes(4, "big") + b"\xff\xfe\xfd\xfc"
        with pytest.raises(ProtocolError):
            decode_value(blob)


class TestFraming:
    def test_frame_roundtrip(self):
        frame = encode_frame(FrameType.STATS, {"completed": 12})
        reader = FrameReader()
        frames = reader.feed(frame)
        assert frames == [(FrameType.STATS, {"completed": 12})]
        assert reader.pending_bytes == 0

    def test_byte_at_a_time_reassembly(self):
        frame = encode_frame(FrameType.FAIL, {"query_id": 9, "reason": "x"})
        reader = FrameReader()
        collected = []
        for i in range(len(frame)):
            collected.extend(reader.feed(frame[i:i + 1]))
        assert len(collected) == 1
        assert collected[0][0] is FrameType.FAIL

    def test_multiple_frames_in_one_chunk(self):
        chunk = protocol.drain_frame() + protocol.stats_frame({"a": 1})
        frames = FrameReader().feed(chunk)
        assert [f[0] for f in frames] == [FrameType.DRAIN, FrameType.STATS]

    def test_bad_magic(self):
        frame = bytearray(encode_frame(FrameType.DRAIN, {}))
        frame[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="magic"):
            FrameReader().feed(bytes(frame))

    def test_wrong_version(self):
        frame = bytearray(encode_frame(FrameType.DRAIN, {}))
        frame[2] = VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            FrameReader().feed(bytes(frame))

    def test_unknown_frame_type(self):
        frame = bytearray(encode_frame(FrameType.DRAIN, {}))
        frame[3] = 200
        with pytest.raises(ProtocolError, match="frame type"):
            FrameReader().feed(bytes(frame))

    def test_oversized_length_prefix(self):
        header = protocol._HEADER.pack(
            MAGIC, VERSION, int(FrameType.DRAIN),
            protocol.MAX_FRAME_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="cap"):
            FrameReader().feed(header)

    def test_wrong_payload_size_for_content(self):
        # A frame whose declared length exceeds its content's need: the
        # trailing bytes prove the payload size is wrong.
        body = encode_value({"query_id": 1}) + b"\x00\x00"
        frame = protocol._HEADER.pack(
            MAGIC, VERSION, int(FrameType.DRAIN), len(body)
        ) + body
        with pytest.raises(ProtocolError, match="trailing"):
            FrameReader().feed(frame)


class TestMessages:
    def test_hello_roundtrip(self):
        (ftype, payload), = FrameReader().feed(
            protocol.hello_frame("client-1", "loadgen"))
        assert ftype is FrameType.HELLO
        msg = protocol.parse_hello(payload)
        assert msg["name"] == "client-1"
        assert msg["role"] == "loadgen"

    def test_hello_version_mismatch(self):
        with pytest.raises(ProtocolError, match="version"):
            protocol.parse_hello({"name": "x", "role": "r", "version": 99})

    def test_issue_roundtrip(self):
        query = Query(id=7, samples=(
            QuerySample(id=1, index=10), QuerySample(id=2, index=11)))
        (_, payload), = FrameReader().feed(protocol.issue_frame(query))
        query_id, samples = protocol.parse_issue(payload)
        assert query_id == 7
        assert samples == [QuerySample(1, 10), QuerySample(2, 11)]

    def test_issue_empty_samples_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_issue({"query_id": 1, "samples": []})

    def test_complete_roundtrip_with_ndarray_payload(self):
        responses = [
            QuerySampleResponse(1, np.ones((2, 2), dtype=np.float32)),
            QuerySampleResponse(2, None),
        ]
        frame = protocol.complete_frame(
            5, responses, server_recv=1.5, server_send=2.25)
        (_, payload), = FrameReader().feed(frame)
        qid, back, recv, send = protocol.parse_complete(payload)
        assert (qid, recv, send) == (5, 1.5, 2.25)
        assert back[0].sample_id == 1
        assert np.array_equal(back[0].data, np.ones((2, 2), dtype=np.float32))
        assert back[1].data is None

    def test_fail_roundtrip(self):
        (_, payload), = FrameReader().feed(protocol.fail_frame(3, "nope"))
        assert protocol.parse_fail(payload) == (3, "nope")

    def test_missing_field_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="missing"):
            protocol.parse_fail({"query_id": 3})

    def test_non_mapping_payload_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="mapping"):
            protocol.parse_issue([1, 2, 3])

    def test_load_roundtrip(self):
        (_, payload), = FrameReader().feed(protocol.load_frame([3, 1, 4]))
        assert protocol.parse_load(payload) == [3, 1, 4]
