"""InferenceServer startup hardening: bind retry and error classes."""

import errno
import socket
import threading
import time

import pytest

from repro.network import ServerStartupError
from repro.network.server import (
    InferenceServer,
    ServerConfig,
    _classify_bind_error,
)
from repro.sut.echo import EchoSUT

pytestmark = pytest.mark.socket


class TestClassifier:
    @pytest.mark.parametrize("code, reason", [
        (errno.EADDRINUSE, "port-in-use"),
        (errno.EACCES, "permission-denied"),
        (errno.EPERM, "permission-denied"),
        (errno.EADDRNOTAVAIL, "bad-address"),
        (errno.ECONNREFUSED, "bind-failed"),
    ])
    def test_errno_mapping(self, code, reason):
        assert _classify_bind_error(OSError(code, "boom")) == reason

    def test_unknown_errno_is_bind_failed(self):
        assert _classify_bind_error(OSError()) == "bind-failed"


class TestConfigValidation:
    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError, match="bind_retries"):
            ServerConfig(bind_retries=-1)
        with pytest.raises(ValueError, match="bind_backoff"):
            ServerConfig(bind_backoff=-0.1)


def occupy_port():
    """Bind an ephemeral localhost port; returns (socket, port)."""
    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    return blocker, blocker.getsockname()[1]


class TestBindRetry:
    def test_port_in_use_without_retries_is_classified(self):
        blocker, port = occupy_port()
        try:
            config = ServerConfig(port=port, bind_retries=0)
            server = InferenceServer(lambda: EchoSUT(), config)
            with pytest.raises(ServerStartupError) as excinfo:
                server.start()
            assert excinfo.value.reason == "port-in-use"
            assert excinfo.value.port == port
            assert isinstance(excinfo.value.cause, OSError)
        finally:
            blocker.close()

    def test_transient_port_conflict_is_retried_through(self):
        blocker, port = occupy_port()
        releaser = threading.Timer(0.15, blocker.close)
        releaser.start()
        config = ServerConfig(port=port, bind_retries=5,
                              bind_backoff=0.05, workers=1)
        server = InferenceServer(lambda: EchoSUT(), config)
        try:
            address = server.start()  # must outwait the blocker
            assert address[1] == port
        finally:
            releaser.cancel()
            server.stop()
            blocker.close()

    def test_non_transient_errors_are_not_retried(self):
        # TEST-NET-1 is not a local address: binding fails immediately
        # and retrying would never help.
        config = ServerConfig(host="192.0.2.1", port=0, bind_retries=5,
                              bind_backoff=10.0)
        server = InferenceServer(lambda: EchoSUT(), config)
        started = time.monotonic()
        with pytest.raises(ServerStartupError) as excinfo:
            server.start()
        assert excinfo.value.reason in ("bad-address", "bind-failed",
                                        "permission-denied")
        # No exponential backoff was slept: the failure was instant.
        assert time.monotonic() - started < 1.0
