"""Graceful drain, leak-free teardown, and completion hygiene across
the faults x network x parallel composition (``repro serve`` path)."""

import os
import time

import pytest

from repro.core.config import Scenario, TestSettings
from repro.core.events import WallClock
from repro.core.loadgen import run_benchmark
from repro.faults import FaultPlan, FaultType, FaultySUT, ResilientSUT
from repro.faults.resilient import RetryPolicy
from repro.harness.netbench import SyntheticQSL, parallel_echo_backend
from repro.network import protocol
from repro.network.client import NetworkSUT
from repro.network.protocol import FrameType
from repro.network.server import InferenceServer, ServerConfig
from repro.sut.echo import EchoSUT

from tests.network.test_server import RawClient, issue

pytestmark = pytest.mark.socket


def shm_segments():
    """Names of live shared-memory segments (Linux tmpfs view)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux: skip the leak accounting
        return set()


class TestDrain:
    def test_drain_refuses_new_work_but_flushes_inflight(self):
        config = ServerConfig(port=0, workers=2, max_queue=32, max_batch=4)
        with InferenceServer(lambda: EchoSUT(latency=0.05), config) as srv:
            client = RawClient(srv.address)
            issue(client, query_id=1, sample_ids=[1])  # 50 ms in flight
            deadline = time.monotonic() + 5.0
            while (srv.stats.queries_received < 1
                   and time.monotonic() < deadline):
                time.sleep(0.002)  # admit query 1 before the drain flips
            srv.begin_drain()
            issue(client, query_id=2, sample_ids=[2])
            outcomes = {}
            for _ in range(2):
                ftype, payload = client.recv()
                if ftype is FrameType.FAIL:
                    qid, reason = protocol.parse_fail(payload)
                    outcomes[qid] = reason
                else:
                    qid, *_ = protocol.parse_complete(payload)
                    outcomes[qid] = "ok"
            # The in-flight query completed; the post-drain one did not.
            assert outcomes[1] == "ok"
            assert "server is draining" in outcomes[2]
            assert srv.drain(timeout=5.0) is True
            client.close()

    def test_drain_times_out_when_inflight_never_finishes(self):
        config = ServerConfig(port=0, workers=1, max_queue=4, max_batch=1)
        slow = lambda: EchoSUT(latency=30.0)  # noqa: E731
        srv = InferenceServer(slow, config)
        srv.start()
        try:
            client = RawClient(srv.address)
            issue(client, query_id=1, sample_ids=[1])
            time.sleep(0.05)  # let the worker pick it up
            started = time.monotonic()
            assert srv.drain(timeout=0.2) is False
            assert time.monotonic() - started < 2.0
            client.close()
        finally:
            srv.stop(drain=False)

    def test_drain_on_an_idle_server_is_instant(self):
        config = ServerConfig(port=0, workers=1, max_queue=4, max_batch=1)
        with InferenceServer(lambda: EchoSUT(), config) as srv:
            assert srv.drain(timeout=1.0) is True

    def test_drain_after_stop_reports_drained(self):
        # drain() is the universal shutdown front door (the CLI calls it
        # unconditionally); on a stopped or never-started server it must
        # succeed immediately instead of spinning on dead queues.
        config = ServerConfig(port=0, workers=1, max_queue=4, max_batch=1)
        srv = InferenceServer(lambda: EchoSUT(), config)
        srv.start()
        srv.stop()
        assert srv.drain(timeout=1.0) is True


class TestNoLeaks:
    def test_parallel_backend_leaves_no_shared_memory_behind(self):
        """The ``repro serve --backend parallel`` teardown contract:
        after drain + stop, every worker process and every shared-memory
        segment the pool created is gone - whatever order the shutdown
        came in."""
        before = shm_segments()
        backend = parallel_echo_backend(workers=2, compute_time=0.001)
        config = ServerConfig(port=0, workers=2, max_queue=32, max_batch=4)
        srv = InferenceServer(backend, config)
        srv.start()
        client = RawClient(srv.address)
        for qid in range(8):
            issue(client, query_id=qid, sample_ids=[qid])
        for _ in range(8):
            assert client.recv()[0] is FrameType.COMPLETE
        assert srv.drain(timeout=5.0) is True
        srv.stop(drain=False)
        client.close()
        assert not backend.pool.alive_workers
        assert shm_segments() - before == set()

    def test_stop_without_drain_still_closes_the_backend(self):
        before = shm_segments()
        backend = parallel_echo_backend(workers=2, compute_time=0.001)
        config = ServerConfig(port=0, workers=1, max_queue=8, max_batch=4)
        srv = InferenceServer(backend, config)
        srv.start()
        srv.stop()  # the KeyboardInterrupt-without-drain ordering
        assert not backend.pool.alive_workers
        assert shm_segments() - before == set()


class TestFilterComposition:
    @pytest.mark.socket(timeout=60.0)
    def test_duplicates_and_phantoms_from_a_parallel_server_are_absorbed(self):
        """Satellite coverage for the faults x network x parallel stack:
        a fault layer duplicates completions and fabricates unsolicited
        ones *between* the LoadGen and a NetworkSUT backed by a parallel
        InferenceServer.  The ResilientSUT's CompletionFilter must
        absorb every duplicate and phantom so the referee still reaches
        a VALID verdict."""
        backend = parallel_echo_backend(workers=2, compute_time=0.001)
        config = ServerConfig(port=0, workers=2, max_queue=64, max_batch=8)
        plan = FaultPlan(
            rates={FaultType.DUPLICATE: 0.3, FaultType.UNSOLICITED: 0.2},
            seed=5)
        with InferenceServer(backend, config) as srv:
            net = NetworkSUT(srv.address, query_timeout=5.0)
            sut = ResilientSUT(
                FaultySUT(net, plan),
                RetryPolicy(attempt_timeout=1.0), seed=5)
            settings = TestSettings(
                scenario=Scenario.SERVER, server_target_qps=150.0,
                server_latency_bound=0.2, min_query_count=40,
                min_duration=0.0, watchdog_timeout=30.0)
            try:
                result = run_benchmark(
                    sut, SyntheticQSL(total=256, performance=64),
                    settings, clock=WallClock())
            finally:
                net.close()
        assert result.valid, result.validity.reasons
        # The injected garbage actually existed and was absorbed below
        # the referee: no duplicate/unsolicited verdicts in the result.
        assert sut.stats.filtered_completions > 0
        assert all("duplicate" not in reason and "unsolicited" not in reason
                   for reason in result.validity.reasons)
