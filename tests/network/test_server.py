"""InferenceServer: sessions, admission, batching, misbehavior containment.

These tests speak the wire protocol directly over raw localhost sockets,
so server behavior is pinned independently of the client adapter.
"""

import socket
import threading
import time

import pytest

from repro.network import protocol
from repro.network.protocol import FrameReader, FrameType
from repro.network.server import InferenceServer, ServerConfig
from repro.sut.echo import EchoSUT

pytestmark = pytest.mark.socket


class RawClient:
    """A hand-rolled protocol speaker for poking the server directly."""

    def __init__(self, address, hello=True):
        self.sock = socket.create_connection(address, timeout=5.0)
        self.reader = FrameReader()
        self.frames = []
        if hello:
            self.send(protocol.hello_frame("raw-test", "loadgen"))
            assert self.recv()[0] is FrameType.HELLO

    def send(self, frame):
        self.sock.sendall(frame)

    def send_bytes(self, blob):
        self.sock.sendall(blob)

    def recv(self, timeout=5.0):
        """Next frame, reading from the socket as needed."""
        if self.frames:
            return self.frames.pop(0)
        self.sock.settimeout(timeout)
        while not self.frames:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self.frames.extend(self.reader.feed(data))
        return self.frames.pop(0)

    def expect_closed(self, timeout=5.0):
        self.sock.settimeout(timeout)
        while True:
            data = self.sock.recv(65536)
            if not data:
                return True
            self.frames.extend(self.reader.feed(data))

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def issue(client, query_id, sample_ids):
    client.send(protocol.encode_frame(FrameType.ISSUE, {
        "query_id": query_id,
        "samples": [[sid, sid + 100] for sid in sample_ids],
    }))


@pytest.fixture
def server():
    config = ServerConfig(port=0, workers=2, max_queue=32, max_batch=4)
    with InferenceServer(lambda: EchoSUT(latency=0.001), config) as srv:
        yield srv


def test_hello_exchange_and_complete_roundtrip(server):
    client = RawClient(server.address)
    issue(client, query_id=5, sample_ids=[1, 2])
    ftype, payload = client.recv()
    assert ftype is FrameType.COMPLETE
    qid, responses, s_recv, s_send = protocol.parse_complete(payload)
    assert qid == 5
    # The echo backend answers each sample with its library index.
    assert {(r.sample_id, r.data) for r in responses} == {(1, 101), (2, 102)}
    assert s_send >= s_recv
    client.close()


def test_first_frame_must_be_hello(server):
    client = RawClient(server.address, hello=False)
    issue(client, query_id=1, sample_ids=[1])
    assert client.expect_closed()
    client.close()
    assert server.stats.protocol_errors >= 1


def test_garbage_bytes_poison_only_that_connection(server):
    bad = RawClient(server.address)
    good = RawClient(server.address)
    bad.send_bytes(b"\xde\xad\xbe\xef" * 4)
    assert bad.expect_closed()
    # The other session keeps serving.
    issue(good, query_id=2, sample_ids=[7])
    assert good.recv()[0] is FrameType.COMPLETE
    assert server.stats.protocol_errors >= 1
    bad.close()
    good.close()


def test_queue_full_is_immediate_fail_not_a_hang():
    config = ServerConfig(port=0, workers=1, max_queue=1, max_batch=1)
    slow = lambda: EchoSUT(latency=0.3)
    with InferenceServer(slow, config) as server:
        client = RawClient(server.address)
        for qid in range(6):
            issue(client, query_id=qid, sample_ids=[qid])
        outcomes = {}
        for _ in range(6):
            ftype, payload = client.recv(timeout=10.0)
            if ftype is FrameType.FAIL:
                qid, reason = protocol.parse_fail(payload)
                outcomes[qid] = reason
            else:
                qid, *_ = protocol.parse_complete(payload)
                outcomes[qid] = "ok"
        rejections = [r for r in outcomes.values() if "queue is full" in r]
        assert rejections, f"expected queue-full FAILs, got {outcomes}"
        assert server.stats.rejected == len(rejections)
        client.close()


def test_edge_batching_merges_requests():
    config = ServerConfig(
        port=0, workers=1, max_queue=64, max_batch=8, batch_window=0.05)
    with InferenceServer(lambda: EchoSUT(latency=0.001), config) as server:
        client = RawClient(server.address)
        for qid in range(8):
            issue(client, query_id=qid, sample_ids=[qid])
        for _ in range(8):
            assert client.recv()[0] is FrameType.COMPLETE
        # The batch window must have merged several one-sample requests.
        assert server.stats.batches < 8
        assert server.stats.batched_samples == 8
        client.close()


def test_drain_replies_with_final_stats(server):
    client = RawClient(server.address)
    issue(client, query_id=1, sample_ids=[3])
    assert client.recv()[0] is FrameType.COMPLETE
    client.send(protocol.drain_frame())
    ftype, payload = client.recv()
    assert ftype is FrameType.STATS
    assert payload.get("drained") is True
    assert payload["completed"] >= 1
    # Post-drain issues are refused, not served.
    issue(client, query_id=2, sample_ids=[4])
    ftype, payload = client.recv()
    assert ftype is FrameType.FAIL
    _, reason = protocol.parse_fail(payload)
    assert "draining" in reason
    client.close()


def test_stats_frame_snapshot(server):
    client = RawClient(server.address)
    issue(client, query_id=1, sample_ids=[1])
    assert client.recv()[0] is FrameType.COMPLETE
    client.send(protocol.stats_frame({}))
    ftype, payload = client.recv()
    assert ftype is FrameType.STATS
    assert payload["completed"] >= 1
    assert payload["connections"] >= 1
    client.close()


def test_client_may_not_send_server_frames(server):
    client = RawClient(server.address)
    client.send(protocol.complete_frame(1, [], 0.0, 0.0))
    assert client.expect_closed()
    assert server.stats.protocol_errors >= 1
    client.close()


def test_misbehaving_backend_fails_queries_not_server():
    from repro.core.sut import SutBase
    from repro.core.query import QuerySampleResponse

    class WrongIdsSUT(SutBase):
        def __init__(self):
            super().__init__("wrong-ids")

        def issue_query(self, query):
            self.complete(query, [
                QuerySampleResponse(s.id + 9999, None) for s in query.samples
            ])

    config = ServerConfig(port=0, workers=1, max_batch=1)
    with InferenceServer(WrongIdsSUT, config) as server:
        client = RawClient(server.address)
        issue(client, query_id=1, sample_ids=[1])
        ftype, payload = client.recv()
        assert ftype is FrameType.FAIL
        _, reason = protocol.parse_fail(payload)
        assert "does not match" in reason or "backend" in reason
        # Server survives to serve a STATS request.
        client.send(protocol.stats_frame({}))
        assert client.recv()[0] is FrameType.STATS
        client.close()


def test_non_encodable_backend_payload_is_failed():
    from repro.core.sut import SutBase
    from repro.core.query import QuerySampleResponse

    class WeirdPayloadSUT(SutBase):
        def __init__(self):
            super().__init__("weird")

        def issue_query(self, query):
            self.complete(query, [
                QuerySampleResponse(s.id, object()) for s in query.samples
            ])

    config = ServerConfig(port=0, workers=1, max_batch=1)
    with InferenceServer(WeirdPayloadSUT, config) as server:
        client = RawClient(server.address)
        issue(client, query_id=1, sample_ids=[1])
        ftype, payload = client.recv()
        assert ftype is FrameType.FAIL
        _, reason = protocol.parse_fail(payload)
        assert "wire-encodable" in reason
        client.close()


def test_shared_backend_instance_is_serialized():
    backend = EchoSUT(latency=0.001)
    config = ServerConfig(port=0, workers=3, max_batch=1)
    with InferenceServer(backend, config) as server:
        client = RawClient(server.address)
        for qid in range(10):
            issue(client, query_id=qid, sample_ids=[qid])
        for _ in range(10):
            assert client.recv()[0] is FrameType.COMPLETE
        assert backend.queries_served == 10
        client.close()


# -- stop() teardown regressions (ISSUE 4 satellite) -------------------


def test_stop_joins_every_thread_including_blocked_readers():
    """A session blocked in recv() must not outlive stop(): sessions
    are closed before any join, so the reader wakes immediately and the
    re-snapshotting join loop leaves no server thread alive."""
    # A unique name keeps the thread-liveness check blind to stragglers
    # from other tests' (default-named) servers.
    config = ServerConfig(port=0, workers=2, max_queue=8, max_batch=4,
                          name="stop-join-probe")
    srv = InferenceServer(lambda: EchoSUT(latency=0.001), config)
    srv.start()
    name_prefix = f"{srv.config.name}-"
    clients = [RawClient(srv.address) for _ in range(3)]
    # Give the accept loop time to register and spawn every session.
    deadline = time.monotonic() + 5.0
    while len(srv._sessions) < 3 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert len(srv._sessions) == 3
    srv.stop()
    leftovers = [
        t for t in threading.enumerate()
        if t.name.startswith(name_prefix) and t.is_alive()
    ]
    assert leftovers == []
    assert srv._threads == []
    for client in clients:
        client.close()


def test_stop_refuses_new_session_threads():
    """_spawn after stop() must not start a thread (the window where a
    freshly accepted connection races the teardown)."""
    config = ServerConfig(port=0, workers=1, max_queue=8, max_batch=4)
    srv = InferenceServer(lambda: EchoSUT(latency=0.001), config)
    srv.start()
    srv.stop()
    assert srv._spawn(lambda: None, "too-late") is False
    assert srv._threads == []


def test_stop_twice_is_idempotent():
    config = ServerConfig(port=0, workers=1, max_queue=8, max_batch=4)
    srv = InferenceServer(lambda: EchoSUT(latency=0.001), config)
    srv.start()
    srv.stop()
    srv.stop()  # second call must be a no-op, not an error


def test_queue_offer_after_close_never_enqueues():
    """put-vs-close: once closed, offer() must refuse and leave the
    queue untouched no matter how the calls interleave."""
    from repro.network.server import _PendingRequest, _RequestQueue

    def request(qid):
        return _PendingRequest(
            session=None, query_id=qid, samples=[], recv_time=0.0)

    q = _RequestQueue(max_queue=64)
    assert q.offer(request(1)) is True
    q.close()
    assert q.offer(request(2)) is False
    assert q.depth == 1  # only the pre-close item remains

    # Racing writers against close: whatever lands after close must be
    # refused, so drained items never include a post-close query id.
    q = _RequestQueue(max_queue=10_000)
    stop_flag = threading.Event()
    accepted = []

    def writer(base):
        i = 0
        while not stop_flag.is_set():
            if q.offer(request(base + i)):
                accepted.append(base + i)
            i += 1

    threads = [
        threading.Thread(target=writer, args=(base,))
        for base in (0, 1_000_000, 2_000_000)
    ]
    for t in threads:
        t.start()
    time.sleep(0.05)
    q.close()
    post_close_probe = q.offer(request(9_999_999))
    stop_flag.set()
    for t in threads:
        t.join(timeout=5.0)
    assert post_close_probe is False
    drained = []
    while True:
        batch = q.take_batch(max_samples=1_000_000, window=0.0)
        if batch is None:
            break
        drained.extend(r.query_id for r in batch)
    # Everything accepted was drained, and nothing else snuck in.
    assert sorted(drained) == sorted(accepted)
