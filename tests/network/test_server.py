"""InferenceServer: sessions, admission, batching, misbehavior containment.

These tests speak the wire protocol directly over raw localhost sockets,
so server behavior is pinned independently of the client adapter.
"""

import socket
import time

import pytest

from repro.network import protocol
from repro.network.protocol import FrameReader, FrameType
from repro.network.server import InferenceServer, ServerConfig
from repro.sut.echo import EchoSUT

pytestmark = pytest.mark.socket


class RawClient:
    """A hand-rolled protocol speaker for poking the server directly."""

    def __init__(self, address, hello=True):
        self.sock = socket.create_connection(address, timeout=5.0)
        self.reader = FrameReader()
        self.frames = []
        if hello:
            self.send(protocol.hello_frame("raw-test", "loadgen"))
            assert self.recv()[0] is FrameType.HELLO

    def send(self, frame):
        self.sock.sendall(frame)

    def send_bytes(self, blob):
        self.sock.sendall(blob)

    def recv(self, timeout=5.0):
        """Next frame, reading from the socket as needed."""
        if self.frames:
            return self.frames.pop(0)
        self.sock.settimeout(timeout)
        while not self.frames:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self.frames.extend(self.reader.feed(data))
        return self.frames.pop(0)

    def expect_closed(self, timeout=5.0):
        self.sock.settimeout(timeout)
        while True:
            data = self.sock.recv(65536)
            if not data:
                return True
            self.frames.extend(self.reader.feed(data))

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def issue(client, query_id, sample_ids):
    client.send(protocol.encode_frame(FrameType.ISSUE, {
        "query_id": query_id,
        "samples": [[sid, sid + 100] for sid in sample_ids],
    }))


@pytest.fixture
def server():
    config = ServerConfig(port=0, workers=2, max_queue=32, max_batch=4)
    with InferenceServer(lambda: EchoSUT(latency=0.001), config) as srv:
        yield srv


def test_hello_exchange_and_complete_roundtrip(server):
    client = RawClient(server.address)
    issue(client, query_id=5, sample_ids=[1, 2])
    ftype, payload = client.recv()
    assert ftype is FrameType.COMPLETE
    qid, responses, s_recv, s_send = protocol.parse_complete(payload)
    assert qid == 5
    # The echo backend answers each sample with its library index.
    assert {(r.sample_id, r.data) for r in responses} == {(1, 101), (2, 102)}
    assert s_send >= s_recv
    client.close()


def test_first_frame_must_be_hello(server):
    client = RawClient(server.address, hello=False)
    issue(client, query_id=1, sample_ids=[1])
    assert client.expect_closed()
    client.close()
    assert server.stats.protocol_errors >= 1


def test_garbage_bytes_poison_only_that_connection(server):
    bad = RawClient(server.address)
    good = RawClient(server.address)
    bad.send_bytes(b"\xde\xad\xbe\xef" * 4)
    assert bad.expect_closed()
    # The other session keeps serving.
    issue(good, query_id=2, sample_ids=[7])
    assert good.recv()[0] is FrameType.COMPLETE
    assert server.stats.protocol_errors >= 1
    bad.close()
    good.close()


def test_queue_full_is_immediate_fail_not_a_hang():
    config = ServerConfig(port=0, workers=1, max_queue=1, max_batch=1)
    slow = lambda: EchoSUT(latency=0.3)
    with InferenceServer(slow, config) as server:
        client = RawClient(server.address)
        for qid in range(6):
            issue(client, query_id=qid, sample_ids=[qid])
        outcomes = {}
        for _ in range(6):
            ftype, payload = client.recv(timeout=10.0)
            if ftype is FrameType.FAIL:
                qid, reason = protocol.parse_fail(payload)
                outcomes[qid] = reason
            else:
                qid, *_ = protocol.parse_complete(payload)
                outcomes[qid] = "ok"
        rejections = [r for r in outcomes.values() if "queue is full" in r]
        assert rejections, f"expected queue-full FAILs, got {outcomes}"
        assert server.stats.rejected == len(rejections)
        client.close()


def test_edge_batching_merges_requests():
    config = ServerConfig(
        port=0, workers=1, max_queue=64, max_batch=8, batch_window=0.05)
    with InferenceServer(lambda: EchoSUT(latency=0.001), config) as server:
        client = RawClient(server.address)
        for qid in range(8):
            issue(client, query_id=qid, sample_ids=[qid])
        for _ in range(8):
            assert client.recv()[0] is FrameType.COMPLETE
        # The batch window must have merged several one-sample requests.
        assert server.stats.batches < 8
        assert server.stats.batched_samples == 8
        client.close()


def test_drain_replies_with_final_stats(server):
    client = RawClient(server.address)
    issue(client, query_id=1, sample_ids=[3])
    assert client.recv()[0] is FrameType.COMPLETE
    client.send(protocol.drain_frame())
    ftype, payload = client.recv()
    assert ftype is FrameType.STATS
    assert payload.get("drained") is True
    assert payload["completed"] >= 1
    # Post-drain issues are refused, not served.
    issue(client, query_id=2, sample_ids=[4])
    ftype, payload = client.recv()
    assert ftype is FrameType.FAIL
    _, reason = protocol.parse_fail(payload)
    assert "draining" in reason
    client.close()


def test_stats_frame_snapshot(server):
    client = RawClient(server.address)
    issue(client, query_id=1, sample_ids=[1])
    assert client.recv()[0] is FrameType.COMPLETE
    client.send(protocol.stats_frame({}))
    ftype, payload = client.recv()
    assert ftype is FrameType.STATS
    assert payload["completed"] >= 1
    assert payload["connections"] >= 1
    client.close()


def test_client_may_not_send_server_frames(server):
    client = RawClient(server.address)
    client.send(protocol.complete_frame(1, [], 0.0, 0.0))
    assert client.expect_closed()
    assert server.stats.protocol_errors >= 1
    client.close()


def test_misbehaving_backend_fails_queries_not_server():
    from repro.core.sut import SutBase
    from repro.core.query import QuerySampleResponse

    class WrongIdsSUT(SutBase):
        def __init__(self):
            super().__init__("wrong-ids")

        def issue_query(self, query):
            self.complete(query, [
                QuerySampleResponse(s.id + 9999, None) for s in query.samples
            ])

    config = ServerConfig(port=0, workers=1, max_batch=1)
    with InferenceServer(WrongIdsSUT, config) as server:
        client = RawClient(server.address)
        issue(client, query_id=1, sample_ids=[1])
        ftype, payload = client.recv()
        assert ftype is FrameType.FAIL
        _, reason = protocol.parse_fail(payload)
        assert "does not match" in reason or "backend" in reason
        # Server survives to serve a STATS request.
        client.send(protocol.stats_frame({}))
        assert client.recv()[0] is FrameType.STATS
        client.close()


def test_non_encodable_backend_payload_is_failed():
    from repro.core.sut import SutBase
    from repro.core.query import QuerySampleResponse

    class WeirdPayloadSUT(SutBase):
        def __init__(self):
            super().__init__("weird")

        def issue_query(self, query):
            self.complete(query, [
                QuerySampleResponse(s.id, object()) for s in query.samples
            ])

    config = ServerConfig(port=0, workers=1, max_batch=1)
    with InferenceServer(WeirdPayloadSUT, config) as server:
        client = RawClient(server.address)
        issue(client, query_id=1, sample_ids=[1])
        ftype, payload = client.recv()
        assert ftype is FrameType.FAIL
        _, reason = protocol.parse_fail(payload)
        assert "wire-encodable" in reason
        client.close()


def test_shared_backend_instance_is_serialized():
    backend = EchoSUT(latency=0.001)
    config = ServerConfig(port=0, workers=3, max_batch=1)
    with InferenceServer(backend, config) as server:
        client = RawClient(server.address)
        for qid in range(10):
            issue(client, query_id=qid, sample_ids=[qid])
        for _ in range(10):
            assert client.recv()[0] is FrameType.COMPLETE
        assert backend.queries_served == 10
        client.close()
