"""SimulatedChannelSUT: deterministic virtual-time network effects."""

import pytest

from repro.core.config import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.faults.resilient import ResilientSUT, RetryPolicy
from repro.harness.netbench import SyntheticQSL, run_over_simulated_channel
from repro.network.simulated import (
    ChannelModel,
    SimulatedChannelSUT,
)
from repro.sut.echo import EchoSUT


def server_settings(**overrides):
    defaults = dict(
        scenario=Scenario.SERVER,
        server_target_qps=200.0,
        server_latency_bound=0.1,
        min_query_count=60,
        min_duration=0.0,
        watchdog_timeout=60.0,
    )
    defaults.update(overrides)
    return TestSettings(**defaults)


def run_channel(model, settings=None, latency=0.002):
    return run_over_simulated_channel(
        EchoSUT(latency=latency), SyntheticQSL(), settings or server_settings(),
        model)


class TestModelValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ChannelModel(drop_rate=1.5)
        with pytest.raises(ValueError):
            ChannelModel(latency=-1)
        with pytest.raises(ValueError):
            ChannelModel(bandwidth=0)


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        model = ChannelModel(latency=0.003, jitter=0.001, drop_rate=0.0,
                             seed=11)
        a = run_channel(model)
        b = run_channel(model)
        log_a = [(r.query.id, r.issue_time, r.completion_time)
                 for r in a.result.log.completed_records()]
        log_b = [(r.query.id, r.issue_time, r.completion_time)
                 for r in b.result.log.completed_records()]
        assert log_a == log_b
        assert a.channel_stats == b.channel_stats

    def test_channel_does_not_perturb_the_arrival_draw(self):
        """The traffic pattern (which samples, when scheduled) must be
        identical with and without the channel - the channel only delays
        delivery, it does not consume the scenario's RNG stream."""
        settings = server_settings()
        qsl = SyntheticQSL()
        direct = run_benchmark(EchoSUT(latency=0.002), qsl, settings)
        channel = run_over_simulated_channel(
            EchoSUT(latency=0.002), qsl, settings,
            ChannelModel(latency=0.001, seed=3))
        direct_seq = [r.query.sample_indices
                      for r in direct.log.completed_records()]
        channel_seq = [r.query.sample_indices
                       for r in channel.result.log.completed_records()]
        assert direct_seq == channel_seq


class TestChannelEffects:
    def test_latency_shifts_the_distribution(self):
        fast = run_channel(ChannelModel(latency=0.0005, seed=5))
        slow = run_channel(ChannelModel(latency=0.010, seed=5))
        assert fast.valid
        delta = (slow.result.metrics.latency_mean
                 - fast.result.metrics.latency_mean)
        # Two extra one-way hops of (10 - 0.5) ms each.
        assert delta == pytest.approx(2 * 0.0095, rel=0.05)

    def test_qos_degrades_to_invalid_as_latency_grows(self):
        settings = server_settings(server_latency_bound=0.015)
        good = run_channel(ChannelModel(latency=0.001, seed=5), settings)
        bad = run_channel(ChannelModel(latency=0.030, seed=5), settings)
        assert good.valid
        assert not bad.valid

    def test_bandwidth_cap_adds_serialization_delay(self):
        free = run_channel(ChannelModel(latency=0.001, seed=5))
        # ~75 byte ISSUE frames at 10 kB/s cost ~7.5 ms each.
        capped = run_channel(
            ChannelModel(latency=0.001, bandwidth=10_000, seed=5))
        assert (capped.result.metrics.latency_mean
                > free.result.metrics.latency_mean + 0.005)

    def test_reordering_is_counted(self):
        res = run_channel(
            ChannelModel(latency=0.001, reorder_rate=0.5, seed=5))
        assert res.channel_stats.reordered_frames > 0

    def test_transport_records_cover_completed_queries(self):
        res = run_channel(ChannelModel(latency=0.002, seed=5))
        completed = res.result.log.completed_records()
        assert len(res.transport) >= len(completed)
        for record in completed:
            timing = res.transport[record.query.id]
            # One-way latency each direction bounds the wire share.
            assert timing.round_trip >= 2 * 0.002 - 1e-9
            assert timing.server_time >= 0

    def test_offline_scenario_flush_does_not_overtake_the_wire(self):
        settings = TestSettings(
            scenario=Scenario.OFFLINE,
            offline_sample_count=512,
            min_duration=0.0,
            watchdog_timeout=120.0,
        )
        res = run_channel(ChannelModel(latency=0.005, seed=5), settings)
        assert res.valid, res.result.validity.reasons


class TestLossAndRecovery:
    def test_drops_are_silent_and_counted(self):
        res = run_channel(ChannelModel(latency=0.001, drop_rate=0.2, seed=5))
        stats = res.channel_stats
        assert stats.queries_dropped + stats.completions_dropped > 0
        # Dropped queries never resolve; the watchdog ends the run and
        # the verdict is INVALID - but it is a verdict, not a hang.
        assert not res.valid

    def test_resilient_wrapper_recovers_dropped_frames(self):
        """Channel loss + the retry wrapper = the submitter-side recovery
        story, all in virtual time."""
        channel = SimulatedChannelSUT(
            EchoSUT(latency=0.002),
            ChannelModel(latency=0.001, drop_rate=0.1, seed=5))
        sut = ResilientSUT(channel, RetryPolicy(
            max_attempts=6, attempt_timeout=0.02))
        result = run_benchmark(sut, SyntheticQSL(), server_settings())
        assert result.valid, result.validity.reasons
        assert sut.stats.retries > 0
        assert sut.stats.recovered_queries > 0
