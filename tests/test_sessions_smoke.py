"""Tier-1 session smoke: seeded determinism, cache audit, validity.

Fast virtual-clock checks of the session-workload guarantees the CI
gate cares about: two same-seed session runs are bit-identical down to
the prefix-cache hit trail, the cache audit accepts the trail, and the
summary reports per-session percentiles.  The deep behavioral suites
live in ``tests/sessions/``; everything here carries the ``sessions``
marker so ``-m sessions`` selects the whole tier.  See
``docs/sessions.md``.
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.durability import run_fingerprint
from repro.sessions import (
    PrefixCacheSUT,
    audit_cache_events,
    replay_graph_from_settings,
)
from repro.sut.echo import EchoSUT

from tests.conftest import EchoQSL

pytestmark = pytest.mark.sessions


def settings(seed=0, **overrides):
    base = dict(
        scenario=Scenario.SESSION, server_target_qps=100.0,
        session_count=16, session_think_time_mean=0.05,
        min_duration=0.0, watchdog_timeout=600.0, seed=seed)
    base.update(overrides)
    return TestSettings(**base)


def session_run(run_settings=None, capacity_tokens=4096):
    sut = PrefixCacheSUT(EchoSUT(latency=0.002),
                         capacity_tokens=capacity_tokens)
    result = run_benchmark(
        sut, EchoQSL(),
        run_settings if run_settings is not None else settings())
    return result, sut


def test_seeded_session_runs_are_bit_identical():
    (first, first_sut), (second, second_sut) = session_run(), session_run()
    assert first.valid
    assert first.summary() == second.summary()
    assert run_fingerprint(first) == run_fingerprint(second)
    # Determinism reaches the cache: identical hit/miss/evict trails.
    assert first_sut.stats == second_sut.stats
    assert first_sut.events == second_sut.events
    assert first_sut.stats.accesses == first.metrics.query_count


def test_alternate_seed_changes_the_workload():
    (base, _), (other, _) = session_run(), session_run(settings(seed=1))
    assert run_fingerprint(base) != run_fingerprint(other)


def test_cache_trail_passes_the_referee_audit():
    run_settings = settings()
    result, sut = session_run(run_settings)
    assert result.valid
    problems = audit_cache_events(
        sut.events, replay_graph_from_settings(run_settings),
        sut.capacity_tokens)
    assert problems == []


def test_summary_reports_per_session_percentiles():
    result, sut = session_run()
    summary = result.summary()
    for line in ("Sessions          :", "Session lat p50/p90/p99",
                 "Turn TTFT p50/p90/p99"):
        assert line in summary
    assert result.metrics.session.completed_session_count == 16
    assert result.metrics.primary_metric_name == "completed sessions/s"
