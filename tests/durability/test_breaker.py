"""CircuitBreaker state machine: trip, reject, probe, close, re-trip."""

import pytest

from repro.durability import (
    STATE_CODES,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)


class Clock:
    """A hand-cranked injected clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make(clock, **policy):
    defaults = dict(window=10, failure_threshold=0.5, min_samples=4,
                    open_duration=1.0, half_open_probes=2)
    defaults.update(policy)
    return CircuitBreaker(BreakerPolicy(**defaults), clock=clock)


def fail_until_open(breaker):
    while breaker.state is BreakerState.CLOSED:
        assert breaker.admit() == "admit"
        breaker.record_failure()


class TestClosed:
    def test_starts_closed_and_admits(self):
        b = make(Clock())
        assert b.state is BreakerState.CLOSED
        assert b.admit() == "admit"

    def test_stays_closed_below_min_samples(self):
        b = make(Clock(), min_samples=4)
        for _ in range(3):
            b.admit()
            b.record_failure()
        assert b.state is BreakerState.CLOSED
        assert b.failure_rate == 1.0

    def test_trips_at_threshold_with_enough_samples(self):
        b = make(Clock(), min_samples=4, failure_threshold=0.5)
        outcomes = [True, True, False, False]  # rate hits 0.5 at n=4
        for ok in outcomes:
            b.admit()
            b.record_success() if ok else b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.stats.opens == 1

    def test_successes_keep_the_rate_below_threshold(self):
        b = make(Clock(), min_samples=4, failure_threshold=0.5)
        for i in range(20):
            b.admit()
            if i % 4 == 0:  # 25% failure rate, always below the line
                b.record_failure()
            else:
                b.record_success()
        assert b.state is BreakerState.CLOSED

    def test_window_slides_old_outcomes_out(self):
        b = make(Clock(), window=4, min_samples=4)
        for _ in range(8):  # ancient successes slide out entirely
            b.admit()
            b.record_success()
        for _ in range(2):
            b.admit()
            b.record_failure()
        # Window holds [ok, ok, fail, fail]: exactly at the 0.5 line.
        assert b.state is BreakerState.OPEN


class TestOpen:
    def test_open_rejects_until_the_cooldown_elapses(self):
        clock = Clock()
        b = make(clock, open_duration=1.0)
        fail_until_open(b)
        assert b.admit() == "reject"
        clock.advance(0.5)
        assert b.admit() == "reject"
        assert b.stats.rejected == 2

    def test_cooldown_expiry_moves_to_half_open_probe(self):
        clock = Clock()
        b = make(clock, open_duration=1.0)
        fail_until_open(b)
        clock.advance(1.0)
        assert b.admit() == "probe"
        assert b.state is BreakerState.HALF_OPEN

    def test_straggler_outcomes_while_open_are_ignored(self):
        clock = Clock()
        b = make(clock)
        fail_until_open(b)
        b.record_success()  # a late completion from before the trip
        b.record_failure()
        assert b.state is BreakerState.OPEN
        assert b.admit() == "reject"


class TestHalfOpen:
    def open_then_cool(self, clock=None, **policy):
        clock = clock or Clock()
        b = make(clock, **policy)
        fail_until_open(b)
        clock.advance(b.policy.open_duration)
        return b, clock

    def test_probe_budget_is_bounded(self):
        b, _ = self.open_then_cool(half_open_probes=2)
        assert b.admit() == "probe"
        assert b.admit() == "probe"
        assert b.admit() == "reject"  # budget spent, outcomes pending
        assert b.stats.probes == 2

    def test_enough_probe_successes_close_the_breaker(self):
        b, _ = self.open_then_cool(half_open_probes=2)
        b.admit()
        b.admit()
        b.record_success(probe=True)
        assert b.state is BreakerState.HALF_OPEN  # one is not enough
        b.record_success(probe=True)
        assert b.state is BreakerState.CLOSED
        assert b.stats.closes == 1
        assert b.admit() == "admit"

    def test_one_probe_failure_reopens(self):
        clock = Clock()
        b, _ = self.open_then_cool(clock=clock, half_open_probes=2)
        b.admit()
        b.record_failure(probe=True)
        assert b.state is BreakerState.OPEN
        assert b.stats.opens == 2
        # ... and the new cooldown starts from the re-trip.
        clock.advance(b.policy.open_duration - 0.01)
        assert b.admit() == "reject"
        clock.advance(0.02)
        assert b.admit() == "probe"

    def test_closing_clears_the_failure_window(self):
        b, _ = self.open_then_cool(half_open_probes=1, min_samples=4)
        b.admit()
        b.record_success(probe=True)
        assert b.state is BreakerState.CLOSED
        # The pre-trip failures must not count toward the next trip.
        b.admit()
        b.record_failure()
        assert b.state is BreakerState.CLOSED


class TestBookkeeping:
    def test_transitions_are_logged_with_timestamps(self):
        clock = Clock()
        b = make(clock, open_duration=1.0, half_open_probes=1)
        fail_until_open(b)
        clock.advance(1.0)
        b.admit()
        b.record_success(probe=True)
        assert [(src.value, dst.value) for _, src, dst in b.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        times = [t for t, _, _ in b.transitions]
        assert times == sorted(times)

    def test_on_transition_callback_fires(self):
        seen = []
        b = CircuitBreaker(
            BreakerPolicy(min_samples=1, failure_threshold=1.0),
            clock=lambda: 7.0,
            on_transition=lambda t, s, d: seen.append((t, s, d)))
        b.admit()
        b.record_failure()
        assert seen == [(7.0, BreakerState.CLOSED, BreakerState.OPEN)]

    def test_state_codes_cover_every_state(self):
        assert set(STATE_CODES) == set(BreakerState)
        assert len(set(STATE_CODES.values())) == len(BreakerState)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(window=0),
        dict(failure_threshold=0.0),
        dict(failure_threshold=1.5),
        dict(min_samples=0),
        dict(min_samples=21),  # > default window of 20
        dict(open_duration=0.0),
        dict(half_open_probes=0),
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)
