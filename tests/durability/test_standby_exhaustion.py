"""SelfHealingSUT when every fallback is exhausted.

The healing layer's promise is graceful degradation, not magic: when
the primary AND the standby are both broken, each query must still get
exactly one terminal outcome - a classified failure, delivered inside
the deadline - and the run machinery keeps going.
"""

import pytest

from repro.core.events import EventLoop, VirtualClock
from repro.core.query import (
    Query,
    QueryFailure,
    QuerySample,
    QuerySampleResponse,
)
from repro.core.sut import SutBase
from repro.durability import BreakerPolicy, BreakerState, SelfHealingSUT


class BlackholeSUT(SutBase):
    """Accepts every query and never answers."""

    def __init__(self, name="blackhole"):
        super().__init__(name)
        self.swallowed = 0

    def issue_query(self, query):
        self.swallowed += 1

    def flush(self):
        pass


class MalformedSUT(SutBase):
    """Answers instantly with a response set of the wrong cardinality."""

    def __init__(self, name="malformed"):
        super().__init__(name)

    def issue_query(self, query):
        bad = [QuerySampleResponse(s.id, s.index)
               for s in query.samples]
        bad.append(QuerySampleResponse(bad[-1].sample_id + 999, None))
        self.complete(query, bad)

    def flush(self):
        pass


def make_query(qid=1):
    return Query(id=qid, samples=(QuerySample(id=qid, index=0),))


def harness(sut):
    """Start ``sut`` on a fresh virtual loop; returns (loop, outcomes)."""
    loop = EventLoop(VirtualClock())
    outcomes = []
    sut.start_run(loop, lambda q, r: outcomes.append((q, r)))
    return loop, outcomes


trippy = BreakerPolicy(window=2, min_samples=1, failure_threshold=1.0,
                       open_duration=1.0, half_open_probes=1)


class TestBothBackendsBroken:
    def test_malformed_primary_and_standby_fail_with_flaw(self):
        sut = SelfHealingSUT(MalformedSUT("p"), MalformedSUT("s"),
                             policy=trippy, attempt_timeout=0.1)
        loop, outcomes = harness(sut)
        sut.issue_query(make_query())
        loop.run()
        assert len(outcomes) == 1
        _, response = outcomes[0]
        assert isinstance(response, QueryFailure)
        assert "expected" in response.reason  # the screening flaw text
        assert sut.stats.failovers == 1  # the standby did get its shot

    def test_blackholed_primary_and_standby_fail_at_the_deadline(self):
        sut = SelfHealingSUT(BlackholeSUT("p"), BlackholeSUT("s"),
                             policy=trippy, attempt_timeout=0.1,
                             hedge_delay=0.05)
        loop, outcomes = harness(sut)
        sut.issue_query(make_query())
        loop.run()
        assert len(outcomes) == 1
        _, response = outcomes[0]
        assert isinstance(response, QueryFailure)
        assert "primary or standby" in response.reason
        assert loop.now == pytest.approx(0.1)  # not one instant later
        assert sut.stats.hedged_queries == 1
        assert sut.stats.deadline_failures == 1

    def test_every_query_gets_exactly_one_terminal_outcome(self):
        sut = SelfHealingSUT(MalformedSUT("p"), BlackholeSUT("s"),
                             policy=trippy, attempt_timeout=0.1)
        loop, outcomes = harness(sut)
        for qid in range(1, 6):
            sut.issue_query(make_query(qid))
        loop.run()
        assert sorted(q.id for q, _ in outcomes) == [1, 2, 3, 4, 5]
        assert all(isinstance(r, QueryFailure) for _, r in outcomes)


class TestNoStandbyShedding:
    def test_open_breaker_sheds_fast_without_a_standby(self):
        sut = SelfHealingSUT(MalformedSUT("p"), policy=trippy,
                             attempt_timeout=0.1)
        loop, outcomes = harness(sut)
        sut.issue_query(make_query(1))  # flaw trips the breaker
        loop.run()
        assert sut.breaker.state is BreakerState.OPEN
        sut.issue_query(make_query(2))  # shed instantly, no deadline
        assert len(outcomes) == 2
        _, shed = outcomes[-1]
        assert isinstance(shed, QueryFailure)
        assert "circuit breaker open" in shed.reason
        assert sut.stats.shed_queries == 1


class TestTotalTimeout:
    def test_validation_rejects_budget_below_attempt_timeout(self):
        with pytest.raises(ValueError, match="total_timeout"):
            SelfHealingSUT(BlackholeSUT(), attempt_timeout=0.2,
                           total_timeout=0.1)

    def test_budget_equal_to_attempt_timeout_bounds_the_query(self):
        sut = SelfHealingSUT(BlackholeSUT("p"), BlackholeSUT("s"),
                             policy=trippy, attempt_timeout=0.05,
                             total_timeout=0.05)
        loop, outcomes = harness(sut)
        sut.issue_query(make_query())
        loop.run()
        assert len(outcomes) == 1
        assert isinstance(outcomes[0][1], QueryFailure)
        assert loop.now == pytest.approx(0.05)
