"""Resume-by-replay: byte-identical continuation of interrupted runs."""

import os

import pytest

from repro.core import Scenario, TestMode, TestSettings, run_benchmark
from repro.durability import (
    JournalWriter,
    ResumeError,
    RunJournal,
    read_frames,
    read_run_journal,
    resume_run,
    run_fingerprint,
)
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT


def settings(**overrides):
    base = dict(scenario=Scenario.SERVER, server_target_qps=300.0,
                server_latency_bound=0.05, min_query_count=80,
                min_duration=0.0, watchdog_timeout=30.0, seed=7)
    base.update(overrides)
    return TestSettings(**base)


def golden(s=None):
    return run_benchmark(FixedLatencySUT(0.003), EchoQSL(), s or settings())


def journaled(path, s=None, **journal_kwargs):
    journal = RunJournal(path, **journal_kwargs)
    return run_benchmark(FixedLatencySUT(0.003), EchoQSL(), s or settings(),
                         journal=journal)


class TestJournaledRuns:
    def test_journaling_does_not_perturb_the_run(self, tmp_path):
        plain = golden()
        logged = journaled(tmp_path / "run.rjnl")
        assert run_fingerprint(logged) == run_fingerprint(plain)

    def test_completed_journal_is_sealed_and_replayable(self, tmp_path):
        path = tmp_path / "run.rjnl"
        journaled(path)
        state = read_run_journal(path)
        assert state.ended and not state.truncated
        assert len(state.issued) == 80
        assert state.resolved_ids == set(state.issued)

    def test_checkpoints_record_monotonic_progress(self, tmp_path):
        path = tmp_path / "run.rjnl"
        journaled(path, settings(min_query_count=400),
                  checkpoint_period=0.05)
        state = read_run_journal(path)
        assert len(state.checkpoints) >= 2
        issued = [c["issued"] for c in state.checkpoints]
        assert issued == sorted(issued)
        assert all(c["outstanding"] >= 0 for c in state.checkpoints)


def truncate_fraction(path, fraction, stray=0):
    """Chop the journal to simulate a crash partway through the run."""
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(int(size * fraction) + stray)


class TestResume:
    @pytest.mark.parametrize("fraction,stray", [
        (0.2, 0),   # early crash, clean frame boundary unlikely anyway
        (0.5, 3),   # mid-run crash with a torn tail frame
        (0.8, 0),   # late crash
    ])
    def test_resume_is_byte_identical_to_the_golden_run(
            self, tmp_path, fraction, stray):
        reference = run_fingerprint(golden())
        path = tmp_path / "run.rjnl"
        journaled(path)
        truncate_fraction(path, fraction, stray)

        resumed = resume_run(str(path), FixedLatencySUT(0.003), EchoQSL())
        assert run_fingerprint(resumed) == reference
        # The journal is re-sealed: a second read shows one complete run.
        state = read_run_journal(path)
        assert state.ended and not state.truncated
        assert len(state.issued) == 80

    def test_resume_replays_without_touching_the_sut(self, tmp_path):
        # Crash after the run actually finished (tail end cut past the
        # last terminal record is impossible; cut only the end record).
        path = tmp_path / "run.rjnl"
        journaled(path)
        records, _, _ = read_frames(path)
        assert records[-1][0] == "end"
        # Rewrite the journal without the end record: the "crash during
        # sealing" case - every query already has a terminal record.
        with JournalWriter(tmp_path / "cut.rjnl") as w:
            for kind, fields in records[:-1]:
                w.append(kind, fields)
        sut = FixedLatencySUT(0.003)
        resumed = resume_run(str(tmp_path / "cut.rjnl"), sut, EchoQSL())
        assert run_fingerprint(resumed) == run_fingerprint(golden())
        assert sut.issued == 0  # everything came from the journal

    def test_accuracy_mode_resume_preserves_payloads(self, tmp_path):
        s = settings(mode=TestMode.ACCURACY, min_query_count=40)
        reference = run_fingerprint(
            run_benchmark(FixedLatencySUT(0.003), EchoQSL(), s))
        path = tmp_path / "acc.rjnl"
        journaled(path, s)
        assert read_run_journal(path).keep_payloads
        truncate_fraction(path, 0.5)
        resumed = resume_run(str(path), FixedLatencySUT(0.003), EchoQSL())
        assert run_fingerprint(resumed) == reference
        # Payload check is part of the fingerprint, but be explicit:
        assert any(r.responses and r.responses[0].data is not None
                   for r in resumed.log.records())

    def test_double_interruption_still_converges(self, tmp_path):
        reference = run_fingerprint(golden())
        path = tmp_path / "run.rjnl"
        journaled(path)
        truncate_fraction(path, 0.3)
        resume_run(str(path), FixedLatencySUT(0.003), EchoQSL())
        truncate_fraction(path, 0.7, stray=2)
        resumed = resume_run(str(path), FixedLatencySUT(0.003), EchoQSL())
        assert run_fingerprint(resumed) == reference

    def test_resume_metrics_account_replay_vs_recompute(self, tmp_path):
        path = tmp_path / "run.rjnl"
        journaled(path)
        truncate_fraction(path, 0.5)
        registry = MetricsRegistry()
        resume_run(str(path), FixedLatencySUT(0.003), EchoQSL(),
                   registry=registry)
        replayed = registry.get(
            "durability_replayed_completions_total").value
        recomputed = registry.get(
            "durability_recomputed_queries_total").value
        assert replayed > 0 and recomputed > 0
        assert replayed + recomputed == 80
        assert registry.get("durability_resumes_total").value == 1


class TestDivergence:
    def test_tampered_sample_ids_are_caught(self, tmp_path):
        path = tmp_path / "run.rjnl"
        journaled(path)
        records, _, _ = read_frames(path)
        # Corrupt one issued record's sample-id CRC: the journal now
        # claims a different query was sent under that id.
        tampered = tmp_path / "tampered.rjnl"
        with JournalWriter(tampered) as w:
            flipped = False
            for kind, fields in records[:-1]:
                if kind == "issued" and not flipped:
                    fields = dict(fields, crc=fields["crc"] ^ 0xFFFF)
                    flipped = True
                w.append(kind, fields)
        with pytest.raises(ResumeError) as info:
            resume_run(str(tampered), FixedLatencySUT(0.003), EchoQSL())
        assert info.value.reason == "replay-divergence"

    def test_foreign_terminal_records_are_caught(self, tmp_path):
        path = tmp_path / "run.rjnl"
        journaled(path)
        truncate_fraction(path, 0.6)
        # A completion for a query this run will never issue.
        _, _, intact = read_frames(path)
        with JournalWriter(path, append=True, truncate_to=intact) as w:
            w.append("completed", {"q": 987_654_321, "t": 0.01, "r": None})
        with pytest.raises(ResumeError) as info:
            resume_run(str(path), FixedLatencySUT(0.003), EchoQSL())
        assert info.value.reason == "replay-divergence"

    def test_missing_journal_is_classified(self, tmp_path):
        with pytest.raises(Exception) as info:
            resume_run(str(tmp_path / "ghost.rjnl"),
                       FixedLatencySUT(0.003), EchoQSL())
        assert getattr(info.value, "reason", None) == "no-journal"
