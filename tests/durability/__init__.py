"""Tests for repro.durability: journal, breaker, healing, resume."""
