"""SelfHealingSUT: shedding, standby reroute, hedging, failover."""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.durability import BreakerPolicy, BreakerState, SelfHealingSUT
from repro.faults import OutageSUT
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT

POLICY = BreakerPolicy(window=10, failure_threshold=0.5, min_samples=4,
                       open_duration=0.2, half_open_probes=2)


def server_settings(queries=120, qps=200.0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=0.05, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=30.0)


class MalformedSUT(SutBase):
    """Answers instantly but with wrong sample ids: a flawed primary."""

    def __init__(self):
        super().__init__("malformed")

    def issue_query(self, query):
        self.complete(query, [
            QuerySampleResponse(s.id + 5555, None) for s in query.samples
        ])


class TestOutageNoStandby:
    def test_breaker_sheds_load_instead_of_burning_deadlines(self):
        primary = OutageSUT(FixedLatencySUT(0.002), outage_start=0.1,
                            outage_duration=0.3)
        sut = SelfHealingSUT(primary, policy=POLICY, attempt_timeout=0.02)
        result = run_benchmark(sut, EchoQSL(), server_settings())
        # The run terminates (no hang), the breaker tripped, and the
        # open state rejected queries in O(1) with a classified reason.
        assert not result.valid
        assert sut.stats.shed_queries > 0
        assert sut.breaker.stats.opens >= 1
        assert any("circuit breaker open" in r.failure_reason
                   for r in result.log.records() if r.failure_reason)

    def test_breaker_recovers_after_the_outage(self):
        primary = OutageSUT(FixedLatencySUT(0.002), outage_start=0.05,
                            outage_duration=0.2)
        sut = SelfHealingSUT(primary, policy=POLICY, attempt_timeout=0.02)
        run_benchmark(sut, EchoQSL(), server_settings(queries=300))
        # closed -> open at trip, then probes eventually close it again.
        pairs = [(s.value, d.value) for _, s, d in sut.breaker.transitions]
        assert ("closed", "open") in pairs
        assert ("half_open", "closed") in pairs
        assert sut.breaker.state is BreakerState.CLOSED


class TestStandby:
    def test_standby_carries_the_load_through_the_outage(self):
        primary = OutageSUT(FixedLatencySUT(0.002), outage_start=0.1,
                            outage_duration=0.3)
        standby = FixedLatencySUT(0.004, name="standby")
        sut = SelfHealingSUT(primary, standby, policy=POLICY,
                             attempt_timeout=0.02)
        result = run_benchmark(sut, EchoQSL(), server_settings())
        # Some queries die in the trip window, but everything shed while
        # open is answered by the standby instead of failing.
        assert sut.stats.standby_queries > 0
        assert sut.stats.standby_completions >= sut.stats.standby_queries
        assert sut.stats.shed_queries == 0
        completed = sum(1 for r in result.log.records()
                        if r.completion_time is not None)
        assert completed > sut.breaker.stats.rejected

    def test_healthy_primary_never_touches_the_standby(self):
        standby = FixedLatencySUT(0.004, name="standby")
        sut = SelfHealingSUT(FixedLatencySUT(0.002), standby, policy=POLICY,
                             attempt_timeout=0.02)
        result = run_benchmark(sut, EchoQSL(), server_settings())
        assert result.valid
        assert standby.issued == 0
        assert sut.stats.standby_completions == 0


class TestHedging:
    def test_slow_primary_is_hedged_and_the_standby_wins(self):
        # Primary at 15 ms vs a 5 ms hedge fires the standby (2 ms),
        # which always answers first; the filter absorbs the loser.
        primary = FixedLatencySUT(0.015)
        standby = FixedLatencySUT(0.002, name="standby")
        sut = SelfHealingSUT(primary, standby, policy=POLICY,
                             attempt_timeout=0.05, hedge_delay=0.005)
        result = run_benchmark(sut, EchoQSL(), server_settings())
        assert result.valid
        assert sut.stats.hedged_queries > 0
        assert sut.stats.hedge_wins > 0
        assert sut.stats.filtered_completions > 0  # primary stragglers

    def test_fast_primary_wins_and_hedges_stay_idle(self):
        primary = FixedLatencySUT(0.001)
        standby = FixedLatencySUT(0.002, name="standby")
        sut = SelfHealingSUT(primary, standby, policy=POLICY,
                             attempt_timeout=0.05, hedge_delay=0.01)
        result = run_benchmark(sut, EchoQSL(), server_settings())
        assert result.valid
        assert sut.stats.hedged_queries == 0


class TestFailover:
    def test_flawed_primary_fails_over_to_the_standby(self):
        standby = FixedLatencySUT(0.002, name="standby")
        sut = SelfHealingSUT(MalformedSUT(), standby, policy=POLICY,
                             attempt_timeout=0.05)
        result = run_benchmark(sut, EchoQSL(), server_settings(queries=40))
        # Every query is answered badly by the primary, fails over, and
        # completes cleanly on the standby.
        assert result.valid
        assert sut.stats.failovers > 0
        assert sut.stats.standby_completions > 0
        assert sut.stats.primary_failures > 0

    def test_flawed_primary_without_standby_fails_the_query(self):
        sut = SelfHealingSUT(MalformedSUT(), policy=POLICY,
                             attempt_timeout=0.05)
        result = run_benchmark(sut, EchoQSL(), server_settings(queries=40))
        assert not result.valid
        assert any(r.failure_reason for r in result.log.records())


class TestMetricsAndValidation:
    def test_breaker_families_are_registered_and_move(self):
        registry = MetricsRegistry()
        primary = OutageSUT(FixedLatencySUT(0.002), outage_start=0.1,
                            outage_duration=0.3)
        standby = FixedLatencySUT(0.004, name="standby")
        sut = SelfHealingSUT(primary, standby, policy=POLICY,
                             attempt_timeout=0.02, registry=registry)
        run_benchmark(sut, EchoQSL(), server_settings())
        assert registry.get("breaker_rejected_queries_total").value > 0
        assert registry.get("breaker_standby_completions_total").value > 0
        assert registry.get("breaker_recorded_failures_total").value > 0
        transitions = registry.get("breaker_transitions_total")
        seen = {(labels["source"], labels["target"]): child.value
                for labels, child in transitions.series()}
        assert seen[("closed", "open")] >= 1
        # The state gauge is callback-backed off the live breaker.
        assert registry.get("breaker_state").value in (0.0, 1.0, 2.0)

    def test_hedge_delay_requires_a_standby(self):
        with pytest.raises(ValueError):
            SelfHealingSUT(FixedLatencySUT(), hedge_delay=0.01)

    def test_hedge_delay_must_undercut_the_deadline(self):
        with pytest.raises(ValueError):
            SelfHealingSUT(FixedLatencySUT(), FixedLatencySUT(name="s"),
                           attempt_timeout=0.05, hedge_delay=0.05)

    def test_attempt_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            SelfHealingSUT(FixedLatencySUT(), attempt_timeout=0.0)

    def test_breaker_property_requires_a_run(self):
        sut = SelfHealingSUT(FixedLatencySUT())
        with pytest.raises(RuntimeError):
            sut.breaker
