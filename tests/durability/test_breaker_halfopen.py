"""CircuitBreaker half-open: concurrent probes, stragglers, re-trips."""

import pytest

from repro.durability import BreakerPolicy, BreakerState, CircuitBreaker


def make_breaker(**overrides):
    """A tripped-open breaker plus its settable clock."""
    t = [0.0]
    knobs = dict(window=4, failure_threshold=0.5, min_samples=2,
                 open_duration=1.0, half_open_probes=2)
    knobs.update(overrides)
    policy = BreakerPolicy(**knobs)
    breaker = CircuitBreaker(policy, clock=lambda: t[0])
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    return breaker, t


class TestConcurrentProbes:
    def test_probe_slots_are_capped_by_policy(self):
        breaker, t = make_breaker()
        t[0] = 1.5  # past open_duration: next admit goes half-open
        assert breaker.admit() == "probe"
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.admit() == "probe"
        # Both probe slots are in flight: further traffic is rejected
        # until a probe reports back.
        assert breaker.admit() == "reject"
        assert breaker.admit() == "reject"

    def test_all_probe_successes_close_the_breaker(self):
        breaker, t = make_breaker()
        t[0] = 1.5
        assert breaker.admit() == "probe"
        assert breaker.admit() == "probe"
        breaker.record_success(probe=True)
        assert breaker.state is BreakerState.HALF_OPEN  # 1 of 2
        breaker.record_success(probe=True)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.stats.closes == 1
        assert breaker.admit() == "admit"

    def test_probe_failure_reopens_with_another_probe_in_flight(self):
        breaker, t = make_breaker()
        t[0] = 1.5
        assert breaker.admit() == "probe"
        assert breaker.admit() == "probe"
        breaker.record_failure(probe=True)
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats.opens == 2
        # The re-opened breaker rejects immediately; the still-in-flight
        # probe's eventual outcome must not disturb the fresh open.
        assert breaker.admit() == "reject"
        breaker.record_success(probe=True)  # straggler from old probe
        assert breaker.state is BreakerState.OPEN
        assert breaker.admit() == "reject"

    def test_probe_slot_frees_on_success_before_closing(self):
        breaker, t = make_breaker(half_open_probes=3)
        t[0] = 1.5
        assert [breaker.admit() for _ in range(4)] == [
            "probe", "probe", "probe", "reject"]
        breaker.record_success(probe=True)
        assert breaker.state is BreakerState.HALF_OPEN
        # One slot freed: a new probe may enter while two are out.
        assert breaker.admit() == "probe"

    def test_reopened_breaker_probes_again_after_another_wait(self):
        breaker, t = make_breaker()
        t[0] = 1.5
        assert breaker.admit() == "probe"
        breaker.record_failure(probe=True)  # re-open at t=1.5
        t[0] = 2.0  # only 0.5s into the new open window
        assert breaker.admit() == "reject"
        t[0] = 2.6  # past open_duration again
        assert breaker.admit() == "probe"


class TestStragglerSignals:
    def test_half_open_ignores_non_probe_stragglers(self):
        breaker, t = make_breaker()
        t[0] = 1.5
        assert breaker.admit() == "probe"
        # A late success from a pre-trip admission arrives while the
        # breaker is probing; it must not count toward closing.
        breaker.record_success()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(probe=True)
        assert breaker.state is BreakerState.HALF_OPEN  # 1 of 2 probes

    def test_open_state_ignores_ordinary_outcomes(self):
        breaker, t = make_breaker()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.stats.opens == 1
