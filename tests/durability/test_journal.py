"""Journal format: CRC framing, torn tails, classified errors, fsync."""

import os
import pickle
import struct
import zlib

import pytest

from repro.core import Scenario, TestSettings
from repro.core.query import Query, QuerySample, QuerySampleResponse
from repro.durability import (
    JOURNAL_VERSION,
    MAGIC,
    FsyncPolicy,
    JournalError,
    JournalWriter,
    RunJournal,
    read_frames,
    read_run_journal,
)
from repro.metrics import MetricsRegistry


def query(qid, sample_ids=(1, 2)):
    samples = tuple(QuerySample(id=s, index=s + 100) for s in sample_ids)
    return Query(id=qid, samples=samples, issue_time=0.0)


class TestWriterReader:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.rjnl"
        with JournalWriter(path) as w:
            w.append("header", {"version": 1})
            w.append("issued", {"q": 7, "t": 0.5})
            w.append("completed", {"q": 7, "t": 0.9, "r": [(1, None)]})
        records, truncated, intact = read_frames(path)
        assert records == [
            ("header", {"version": 1}),
            ("issued", {"q": 7, "t": 0.5}),
            ("completed", {"q": 7, "t": 0.9, "r": [(1, None)]}),
        ]
        assert not truncated
        assert intact == os.path.getsize(path)

    def test_empty_journal_is_magic_only(self, tmp_path):
        path = tmp_path / "empty.rjnl"
        JournalWriter(path).close()
        records, truncated, intact = read_frames(path)
        assert records == [] and not truncated
        assert intact == len(MAGIC)

    def test_torn_tail_is_tolerated_not_fatal(self, tmp_path):
        path = tmp_path / "torn.rjnl"
        with JournalWriter(path) as w:
            for i in range(10):
                w.append("issued", {"q": i})
        size = os.path.getsize(path)
        # Chop mid-way through the last frame: crash-mid-append.
        with open(path, "r+b") as f:
            f.truncate(size - 3)
        records, truncated, intact = read_frames(path)
        assert truncated
        assert [f_["q"] for _, f_ in records] == list(range(9))
        assert intact < size - 3

    def test_corrupt_crc_marks_the_tail_torn(self, tmp_path):
        path = tmp_path / "crc.rjnl"
        with JournalWriter(path) as w:
            w.append("issued", {"q": 1})
            w.append("issued", {"q": 2})
        with open(path, "r+b") as f:
            f.seek(-1, os.SEEK_END)
            last = f.read(1)
            f.seek(-1, os.SEEK_END)
            f.write(bytes([last[0] ^ 0xFF]))
        records, truncated, _ = read_frames(path)
        assert truncated
        assert [f_["q"] for _, f_ in records] == [1]

    def test_append_after_tear_truncates_to_last_intact_frame(self, tmp_path):
        """The resume-append invariant: records appended after a torn
        frame would be unreachable (readers stop at the tear), so the
        writer must discard the tail first."""
        path = tmp_path / "resume.rjnl"
        with JournalWriter(path) as w:
            for i in range(5):
                w.append("issued", {"q": i})
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 2)
        _, truncated, intact = read_frames(path)
        assert truncated
        with JournalWriter(path, append=True, truncate_to=intact) as w:
            w.append("issued", {"q": 99})
        records, truncated, _ = read_frames(path)
        assert not truncated
        # The torn record (q=4) is gone; the append follows q=3 and every
        # record is reachable again.
        assert [f_["q"] for _, f_ in records] == [0, 1, 2, 3, 99]

    def test_plain_append_continues_an_intact_file(self, tmp_path):
        path = tmp_path / "grow.rjnl"
        with JournalWriter(path) as w:
            w.append("issued", {"q": 1})
        with JournalWriter(path, append=True) as w:
            w.append("issued", {"q": 2})
        records, truncated, _ = read_frames(path)
        assert not truncated
        assert [f_["q"] for _, f_ in records] == [1, 2]

    def test_append_to_closed_writer_is_classified(self, tmp_path):
        w = JournalWriter(tmp_path / "x.rjnl")
        w.close()
        with pytest.raises(JournalError) as info:
            w.append("issued", {})
        assert info.value.reason == "closed"

    def test_on_append_reports_running_record_count(self, tmp_path):
        counts = []
        with JournalWriter(tmp_path / "x.rjnl", on_append=counts.append) as w:
            for i in range(4):
                w.append("issued", {"q": i})
        assert counts == [1, 2, 3, 4]

    def test_undecodable_payload_is_treated_as_torn(self, tmp_path):
        path = tmp_path / "junk.rjnl"
        payload = b"\x80\x05junk-not-a-pickle"
        with open(path, "wb") as f:
            f.write(MAGIC)
            f.write(struct.pack("<II", len(payload), zlib.crc32(payload)))
            f.write(payload)
        records, truncated, intact = read_frames(path)
        assert records == [] and truncated
        assert intact == len(MAGIC)


class TestClassifiedErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError) as info:
            read_frames(tmp_path / "nope.rjnl")
        assert info.value.reason == "no-journal"

    def test_foreign_magic(self, tmp_path):
        path = tmp_path / "alien.bin"
        path.write_bytes(b"ELF!....not a journal")
        with pytest.raises(JournalError) as info:
            read_frames(path)
        assert info.value.reason == "bad-magic"

    def test_headerless_journal_cannot_be_resumed(self, tmp_path):
        path = tmp_path / "nohdr.rjnl"
        with JournalWriter(path) as w:
            w.append("issued", {"q": 1})
        with pytest.raises(JournalError) as info:
            read_run_journal(path)
        assert info.value.reason == "no-header"

    def test_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "future.rjnl"
        with JournalWriter(path) as w:
            w.append("header", {"version": JOURNAL_VERSION + 1,
                                "settings": None, "keep_payloads": False,
                                "log_sample_probability": 0.0})
        with pytest.raises(JournalError) as info:
            read_run_journal(path)
        assert info.value.reason == "version-mismatch"


class TestFsyncPolicies:
    def test_always_fsyncs_every_record(self, tmp_path):
        with JournalWriter(tmp_path / "a.rjnl", fsync="always") as w:
            for i in range(5):
                w.append("issued", {"q": i})
            assert w.stats.fsyncs == 5

    def test_interval_batches_fsyncs(self, tmp_path):
        with JournalWriter(tmp_path / "i.rjnl", fsync="interval",
                           fsync_interval=4) as w:
            for i in range(9):
                w.append("issued", {"q": i})
            assert w.stats.fsyncs == 2  # at records 4 and 8
        # close() forces the final partial interval down.

    def test_never_fsyncs_but_still_flushes(self, tmp_path):
        path = tmp_path / "n.rjnl"
        with JournalWriter(path, fsync="never") as w:
            w.append("issued", {"q": 1})
            assert w.stats.fsyncs == 0
        assert read_frames(path)[0]

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JournalWriter(tmp_path / "x.rjnl", fsync_interval=0)


def settings():
    return TestSettings(scenario=Scenario.SINGLE_STREAM,
                        min_query_count=4, min_duration=0.0)


class TestRunJournal:
    def test_log_events_round_trip_through_state(self, tmp_path):
        path = tmp_path / "run.rjnl"
        j = RunJournal(path)
        j.begin(settings(), keep_payloads=False, log_sample_probability=0.0)
        q = query(11, sample_ids=(3, 4))
        j.on_log_event("issued", q, 0.25, None)
        j.on_log_event("completed", q, 0.50,
                       [QuerySampleResponse(3, "x"), QuerySampleResponse(4, "y")])
        j.on_log_event("failed", query(12), 0.75, "backend exploded")
        j.checkpoint(0.8, issued=2, outstanding=0)
        j.close()

        state = read_run_journal(path)
        assert state.settings.scenario is Scenario.SINGLE_STREAM
        assert not state.ended and not state.truncated
        assert state.issued[11].sample_count == 2
        # Performance mode drops payloads: timing is all resume needs.
        assert state.completions[11] == (0.50, None)
        assert state.failures[12] == (0.75, "backend exploded")
        assert state.checkpoints == [
            {"t": 0.8, "issued": 2, "outstanding": 0}]

    def test_accuracy_mode_keeps_response_payloads(self, tmp_path):
        path = tmp_path / "acc.rjnl"
        j = RunJournal(path)
        j.begin(settings(), keep_payloads=True, log_sample_probability=1.0)
        q = query(1, sample_ids=(5,))
        j.on_log_event("issued", q, 0.1, None)
        j.on_log_event("completed", q, 0.2, [QuerySampleResponse(5, [9, 9])])
        j.close()
        state = read_run_journal(path)
        assert state.keep_payloads
        assert state.completions[1] == (0.2, [(5, [9, 9])])

    def test_finish_seals_with_an_end_digest(self, tmp_path):
        path = tmp_path / "sealed.rjnl"

        class FakeMetrics:
            query_count = 4
            primary_metric = 123.0

        class FakeResult:
            metrics = FakeMetrics()
            valid = True

        j = RunJournal(path)
        j.begin(settings(), keep_payloads=False, log_sample_probability=0.0)
        j.finish(FakeResult())
        state = read_run_journal(path)
        assert state.ended
        # finish() closed the file; later events are silently dropped,
        # not errors (the run loop's finally may still fire).
        j.on_log_event("issued", query(1), 0.0, None)
        j.checkpoint(1.0)

    def test_resume_skips_events_already_on_disk(self, tmp_path):
        path = tmp_path / "dedup.rjnl"
        j = RunJournal(path)
        j.begin(settings(), keep_payloads=False, log_sample_probability=0.0)
        q = query(5)
        j.on_log_event("issued", q, 0.1, None)
        j.on_log_event("completed", q, 0.2, [])
        j.close()

        state = read_run_journal(path)
        j2 = RunJournal(path)
        j2.resume_from(state)
        j2.begin(settings(), keep_payloads=False, log_sample_probability=0.0)
        j2.on_log_event("issued", q, 0.1, None)       # already journaled
        j2.on_log_event("completed", q, 0.2, [])      # already journaled
        j2.on_log_event("issued", query(6), 0.3, None)  # new
        j2.close()
        assert j2.stats.skipped == 2

        reread = read_run_journal(path)
        assert reread.record_count == state.record_count + 1
        assert set(reread.issued) == {5, 6}

    def test_resume_from_after_begin_is_refused(self, tmp_path):
        j = RunJournal(tmp_path / "late.rjnl")
        j.begin(settings(), keep_payloads=False, log_sample_probability=0.0)
        with pytest.raises(JournalError) as info:
            j.resume_from(None)
        assert info.value.reason == "already-begun"

    def test_registry_counters_mirror_the_writer(self, tmp_path):
        registry = MetricsRegistry()
        j = RunJournal(tmp_path / "m.rjnl", fsync=FsyncPolicy.ALWAYS,
                       registry=registry)
        j.begin(settings(), keep_payloads=False, log_sample_probability=0.0)
        q = query(1)
        j.on_log_event("issued", q, 0.0, None)
        j.on_log_event("completed", q, 0.1, [])
        j.checkpoint(0.2)
        j.close()
        records = registry.get("durability_journal_records_total")
        kinds = {labels["kind"]: child.value
                 for labels, child in records.series()}
        assert kinds["header"] == 1
        assert kinds["issued"] == 1
        assert kinds["completed"] == 1
        assert kinds["checkpoint"] == 1
        assert registry.get("durability_journal_bytes_total").value > 0
        # fsync=always: one platter write per appended record.
        assert registry.get("durability_journal_fsyncs_total").value == 4
        assert registry.get("durability_checkpoints_total").value == 1

    def test_checkpoint_period_validation(self, tmp_path):
        with pytest.raises(ValueError):
            RunJournal(tmp_path / "x.rjnl", checkpoint_period=0.0)

    def test_pickle_payloads_are_framed_not_raw(self, tmp_path):
        # The file must start with the magic and decode frame-by-frame;
        # a naive pickle.load of the whole file must NOT work.
        path = tmp_path / "framed.rjnl"
        with JournalWriter(path) as w:
            w.append("issued", {"q": 1})
        blob = path.read_bytes()
        assert blob.startswith(MAGIC)
        with pytest.raises(Exception):
            pickle.loads(blob)
