"""Tier-1 gray-failure smoke: chaos runs are survivable and bit-identical.

Fast virtual-clock checks of the robustness contract this repo's
referee makes (docs/chaos.md): a fleet under a seeded ChaosSchedule -
zone outage, gray-failure brownout, asymmetric partition - loses zero
queries, double-counts nothing, and replays bit-identically from the
same seed, down to the orchestrator's ChaosDecision trace and the
outlier detector's ejection trail.  The deep behavioral suites live in
``tests/faults/test_chaos_orchestrator.py`` and
``tests/fleet/test_outlier.py``; these carry the ``chaos`` marker so
``-m chaos`` selects the whole tier (see CONTRIBUTING.md).
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.durability import run_fingerprint
from repro.faults import ChaosEvent, ChaosOrchestrator, ChaosSchedule
from repro.fleet import OutlierDetector, OutlierPolicy, ReplicaSet
from repro.sessions import per_replica_cache_factory

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = pytest.mark.chaos

#: Zone outage overlapping a gray-failure brownout: the correlated-
#: failure shape the acceptance criteria call out.
SCHEDULE = ChaosSchedule((
    ChaosEvent(0.25, 0.45, "gray-failure", "replica:1", 10.0),
    ChaosEvent(0.50, 0.40, "zone-outage", "z1"),
))

DETECTOR_POLICY = OutlierPolicy(min_observations=8, ejection_duration=0.1,
                                probe_timeout=0.008)


def session_settings(seed=0):
    return TestSettings(
        scenario=Scenario.SESSION, server_target_qps=40.0,
        server_latency_bound=0.2, session_count=48,
        session_turns_min=2, session_turns_max=6,
        session_think_time_mean=0.05,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def chaos_session_run(seed=0, protected=True):
    orchestrator = ChaosOrchestrator(SCHEDULE)
    fleet = ReplicaSet(
        orchestrator.wrap_factory(
            lambda i: FixedLatencySUT(latency=0.002)),
        initial_replicas=4, zones=2, policy="zone-spread", seed=seed,
        cache_factory=per_replica_cache_factory(capacity_tokens=8192),
    )
    orchestrator.bind(fleet)
    services = [orchestrator]
    detector = None
    if protected:
        detector = OutlierDetector(fleet, DETECTOR_POLICY, seed=seed)
        services.append(detector)
    result = run_benchmark(fleet, EchoQSL(), session_settings(seed),
                           services=services)
    return fleet, orchestrator, detector, result


def test_chaos_run_loses_no_queries_and_stays_valid():
    fleet, orchestrator, detector, result = chaos_session_run(seed=3)
    assert result.valid
    # The referee invariant: every issued query completed exactly once.
    assert not result.log.failed_records()
    records = result.log.completed_records()
    assert len({r.query.id for r in records}) == len(records)
    # The schedule actually fired, and recovery closed every window.
    injected = [d for d in orchestrator.trace if d.action == "inject"]
    assert len(injected) == 2
    assert orchestrator.active_faults == 0
    assert fleet.stats.zone_kills == 1


def test_same_seed_chaos_runs_are_bit_identical():
    def fingerprinted(seed):
        fleet, orchestrator, detector, result = chaos_session_run(seed)
        return (run_fingerprint(result),
                orchestrator.trace,
                detector.trace,
                [r.issued for r in fleet.replicas],
                fleet.stats.summary())
    first, second = fingerprinted(7), fingerprinted(7)
    assert first == second
    assert fingerprinted(8) != first


def test_detector_trail_reacts_to_the_brownout():
    fleet, orchestrator, detector, result = chaos_session_run(seed=3)
    # The 10x brownout on replica 1 is the detector's quarry; whatever
    # the exact trail, it must only ever concern that replica and the
    # fleet must end the run at full strength.
    assert all(e.replica == 1 for e in detector.trace)
    from repro.fleet import ReplicaHealth

    assert all(r.health is not ReplicaHealth.EJECTED
               for r in fleet.replicas)
