"""Real-model backends under the LoadGen."""

import pytest

from repro.core import Scenario, TestMode, TestSettings, run_benchmark
from repro.datasets import DatasetQSL
from repro.models.runtime import (
    build_cipher_translator,
    build_glyph_classifier,
    build_glyph_detector,
)
from repro.sut.backend import ClassifierSUT, DetectorSUT, TranslatorSUT


def perf_settings(**kwargs):
    defaults = dict(scenario=Scenario.SINGLE_STREAM, min_query_count=64,
                    min_duration=0.2)
    defaults.update(kwargs)
    return TestSettings(**defaults)


class TestClassifierSUT:
    def test_performance_run_valid(self, imagenet):
        qsl = DatasetQSL(imagenet)
        model = build_glyph_classifier(imagenet, "light")
        sut = ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.002 * n)
        result = run_benchmark(sut, qsl, perf_settings())
        assert result.valid
        assert result.primary_metric == pytest.approx(0.002)

    def test_compute_seconds_accumulates(self, imagenet):
        qsl = DatasetQSL(imagenet)
        model = build_glyph_classifier(imagenet, "light")
        sut = ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.001)
        run_benchmark(sut, qsl, perf_settings())
        assert sut.compute_seconds > 0.0

    def test_measured_time_mode(self, imagenet):
        """Without a service_time_fn, latency reflects real execution."""
        qsl = DatasetQSL(imagenet)
        model = build_glyph_classifier(imagenet, "light")
        sut = ClassifierSUT(model, qsl)
        result = run_benchmark(
            sut, qsl, perf_settings(min_query_count=32, min_duration=0.0))
        assert result.metrics.latency_mean > 0.0

    def test_batched_offline_query(self, imagenet):
        qsl = DatasetQSL(imagenet)
        model = build_glyph_classifier(imagenet, "light")
        sut = ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.0005 * n,
                            batch_size=32)
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                offline_sample_count=128, min_duration=0.0)
        result = run_benchmark(sut, qsl, settings)
        assert result.valid is False or result.metrics.sample_count >= 128
        assert result.metrics.sample_count >= 128


class TestDetectorSUT:
    def test_accuracy_payloads_are_detections(self, coco):
        qsl = DatasetQSL(coco)
        model = build_glyph_detector(coco, "heavy")
        sut = DetectorSUT(model, qsl, service_time_fn=lambda n: 0.001)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        result = run_benchmark(sut, qsl, settings)
        payloads = result.log.logged_responses()
        assert len(payloads) == len(coco)
        some = next(iter(payloads.values()))
        assert isinstance(some, list)


class TestTranslatorSUT:
    def test_translates_sources(self, wmt):
        qsl = DatasetQSL(wmt)
        model = build_cipher_translator(wmt)
        sut = TranslatorSUT(model, qsl, service_time_fn=lambda n: 0.001)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        result = run_benchmark(sut, qsl, settings)
        payloads = result.log.logged_responses()
        index_map = result.log.sample_index_map()
        sid, tokens = next(iter(payloads.items()))
        source = wmt.get_sample(index_map[sid])
        assert len(tokens) == len(source)
