"""DVFS/thermal behaviour and the 60-second rule's rationale."""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile

from tests.conftest import EchoQSL


def phone(cold_boost=1.5, tau=10.0):
    return DeviceModel(
        name="thermal-phone", processor=ProcessorType.DSP, peak_gops=60.0,
        base_utilization=0.6, saturation_gops=3.0, overhead=1e-3,
        max_batch=4, cold_boost=cold_boost, thermal_time_constant=tau,
    )


class TestSpeedMultiplier:
    def test_starts_at_boost_decays_to_one(self):
        device = phone()
        assert device.speed_multiplier(0.0) == pytest.approx(1.5)
        assert device.speed_multiplier(10.0) == pytest.approx(
            1.0 + 0.5 / 2.718281828, rel=1e-6)
        assert device.speed_multiplier(300.0) == pytest.approx(1.0, abs=1e-9)

    def test_monotone_decay(self):
        device = phone()
        values = [device.speed_multiplier(t) for t in (0, 5, 10, 30, 60)]
        assert values == sorted(values, reverse=True)

    def test_no_boost_is_identity(self):
        device = phone(cold_boost=1.0)
        assert device.speed_multiplier(0.0) == 1.0
        assert device.speed_multiplier(100.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            phone(cold_boost=0.9)
        with pytest.raises(ValueError):
            phone(tau=0.0)
        with pytest.raises(ValueError):
            phone().speed_multiplier(-1.0)


class TestMinDurationRationale:
    """Section III-D: short runs measure the DVFS boost, not the
    equilibrium - the 60-second rule closes that loophole."""

    def _p90(self, duration):
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                min_query_count=64, min_duration=duration)
        sut = SimulatedSUT(phone(), WorkloadProfile(1.138))
        result = run_benchmark(sut, EchoQSL(), settings)
        return result.primary_metric

    def test_short_run_flatters_the_device(self):
        short = self._p90(duration=1.0)
        long = self._p90(duration=60.0)
        # The 1-second run reports meaningfully better latency.
        assert short < 0.9 * long

    def test_long_run_converges_to_equilibrium(self):
        device = phone()
        equilibrium = device.service_time(1.138, 1)
        long = self._p90(duration=60.0)
        assert long == pytest.approx(equilibrium, rel=0.05)
