"""Analytic device model properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sut.device import ComputeMotif, DeviceModel, ProcessorType


def device(**kwargs):
    defaults = dict(
        name="dev", processor=ProcessorType.GPU, peak_gops=1000.0,
        base_utilization=0.2, saturation_gops=50.0, overhead=1e-3,
        max_batch=32,
    )
    defaults.update(kwargs)
    return DeviceModel(**defaults)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("peak_gops", 0.0),
        ("base_utilization", 0.0),
        ("base_utilization", 1.5),
        ("saturation_gops", 0.0),
        ("overhead", -1.0),
        ("max_batch", 0),
        ("engines", 0),
    ])
    def test_bad_parameters_rejected(self, field, value):
        with pytest.raises(ValueError):
            device(**{field: value})

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            device(structure_efficiency={ComputeMotif.RNN: 1.5})


class TestUtilization:
    def test_ramps_from_base_to_one(self):
        d = device(base_utilization=0.2, saturation_gops=50.0)
        assert d.utilization(1e-9) == pytest.approx(0.2, abs=0.01)
        assert d.utilization(25.0) == pytest.approx(0.6)
        assert d.utilization(50.0) == 1.0
        assert d.utilization(500.0) == 1.0   # saturated

    @given(st.floats(min_value=0.01, max_value=1000.0),
           st.floats(min_value=0.01, max_value=1000.0))
    def test_monotone_in_work(self, a, b):
        d = device()
        lo, hi = sorted((a, b))
        assert d.utilization(lo) <= d.utilization(hi) + 1e-12

    def test_nonpositive_work_rejected(self):
        with pytest.raises(ValueError):
            device().utilization(0.0)


class TestServiceTime:
    def test_includes_overhead(self):
        d = device(overhead=5e-3)
        assert d.service_time(1.0, 1) > 5e-3

    def test_monotone_in_batch(self):
        d = device()
        times = [d.service_time(2.0, b) for b in (1, 2, 4, 8, 16, 32)]
        assert times == sorted(times)

    def test_batching_amortizes_per_sample_cost(self):
        d = device(base_utilization=0.05, saturation_gops=100.0)
        per_sample_1 = d.service_time(2.0, 1) / 1
        per_sample_32 = d.service_time(2.0, 32) / 32
        assert per_sample_32 < per_sample_1 / 3

    def test_motif_efficiency_slows_depthwise(self):
        d = device(structure_efficiency={
            ComputeMotif.DENSE_CNN: 1.0, ComputeMotif.DEPTHWISE_CNN: 0.5,
        })
        dense = d.service_time(2.0, 8, ComputeMotif.DENSE_CNN)
        dw = d.service_time(2.0, 8, ComputeMotif.DEPTHWISE_CNN)
        assert dw > dense

    def test_unknown_motif_defaults_to_full_efficiency(self):
        d = device()
        assert d.motif_efficiency(ComputeMotif.RNN) == 1.0

    def test_invalid_inputs_rejected(self):
        d = device()
        with pytest.raises(ValueError):
            d.service_time(0.0, 1)
        with pytest.raises(ValueError):
            d.service_time(1.0, 0)


class TestThroughput:
    def test_best_offline_picks_a_good_batch(self):
        d = device(base_utilization=0.05, saturation_gops=100.0)
        best = d.best_offline_throughput(2.0)
        for batch in (1, 2, 4, 8, 16, 32):
            assert best >= d.throughput_at_batch(2.0, batch) - 1e-9

    def test_engines_multiply_throughput(self):
        single = device(engines=1)
        dual = device(engines=2)
        assert dual.best_offline_throughput(2.0) == pytest.approx(
            2 * single.best_offline_throughput(2.0))

    def test_structure_observation_of_section_7d(self):
        """175x the ops but only ~50-60x the time (Section VII-D)."""
        d = device(
            peak_gops=100_000, base_utilization=0.05,
            saturation_gops=200.0, max_batch=128,
            structure_efficiency={
                ComputeMotif.DENSE_CNN: 1.0,
                ComputeMotif.DEPTHWISE_CNN: 0.33,
            },
        )
        heavy = d.best_offline_throughput(433.0, ComputeMotif.DENSE_CNN)
        light = d.best_offline_throughput(2.47, ComputeMotif.DEPTHWISE_CNN)
        ratio = light / heavy
        ops_ratio = 433.0 / 2.47
        assert ratio == pytest.approx(ops_ratio * 0.33, rel=0.15)
        assert 45 < ratio < 70
