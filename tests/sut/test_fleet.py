"""The simulated fleet: plans, coverage, and published distributions."""

import pytest

from repro.core import Scenario, Task, task_rules
from repro.sut.device import ComputeMotif, ProcessorType
from repro.sut.fleet import (
    FIGURE_5,
    TABLE_VI,
    TABLE_VII,
    build_fleet,
    framework_matrix,
    planned_matrix,
    task_workload,
)


@pytest.fixture(scope="module")
def fleet():
    return build_fleet()


class TestFleetComposition:
    def test_over_30_systems(self, fleet):
        assert len(fleet) > 30

    def test_unique_names(self, fleet):
        names = [s.name for s in fleet]
        assert len(set(names)) == len(names)

    def test_every_processor_type_present(self, fleet):
        procs = {s.device.processor for s in fleet}
        assert procs == set(ProcessorType)

    def test_categories_cover_all_three(self, fleet):
        assert {s.category for s in fleet} == {"available", "preview", "rdo"}

    def test_performance_spans_orders_of_magnitude(self, fleet):
        peaks = [s.device.peak_gops for s in fleet]
        assert max(peaks) / min(peaks) > 1e4


class TestPlannedDistributions:
    def test_planned_matrix_matches_table_vi_exactly(self, fleet):
        matrix = planned_matrix(fleet)
        for task in Task:
            for scenario in Scenario:
                # TABLE_VI is the paper's data: four scenario columns.
                # Post-paper scenarios (session) must plan zero runs.
                assert matrix[task][scenario] == \
                    TABLE_VI[task].get(scenario, 0), (task, scenario)

    def test_totals_match_figure_5(self, fleet):
        matrix = planned_matrix(fleet)
        for task in Task:
            assert sum(matrix[task].values()) == FIGURE_5[task]

    def test_166_total_results(self, fleet):
        assert sum(len(s.submissions()) for s in fleet) == 166

    def test_gnmt_multistream_is_empty(self, fleet):
        for system in fleet:
            for task, scenario in system.submissions():
                assert not (task is Task.MACHINE_TRANSLATION
                            and scenario is Scenario.MULTI_STREAM)

    def test_framework_matrix_matches_table_vii(self, fleet):
        assert framework_matrix(fleet) == TABLE_VII


class TestWorkloads:
    def test_vision_workloads_use_table_i_gops(self):
        wl = task_workload(Task.IMAGE_CLASSIFICATION_HEAVY)
        assert wl.gops_per_sample == pytest.approx(8.2)
        assert wl.motif is ComputeMotif.DENSE_CNN
        assert wl.variability == 0.0

    def test_light_models_are_depthwise(self):
        assert task_workload(Task.IMAGE_CLASSIFICATION_LIGHT).motif is \
            ComputeMotif.DEPTHWISE_CNN
        assert task_workload(Task.OBJECT_DETECTION_LIGHT).motif is \
            ComputeMotif.DEPTHWISE_CNN

    def test_gnmt_workload_is_variable_rnn(self):
        wl = task_workload(Task.MACHINE_TRANSLATION)
        assert wl.motif is ComputeMotif.RNN
        assert wl.variability > 0.0
        assert wl.gops_per_sample > 1.0


class TestPlanFeasibility:
    """Every planned server combo can meet its bound at batch 1 or at
    some batch the dispatcher can reach - a static sanity check that the
    tuning harness will find a nonzero capacity."""

    def test_server_plans_feasible(self, fleet):
        for system in fleet:
            for task, scenario in system.submissions():
                if scenario is not Scenario.SERVER:
                    continue
                workload = task_workload(task)
                bound = task_rules(task).server_latency_bound
                best = min(
                    system.device.service_time(
                        workload.gops_per_sample, batch, workload.motif)
                    for batch in (1, 2, 4, 8)
                )
                assert best < bound, (system.name, task)

    def test_multistream_plans_feasible(self, fleet):
        for system in fleet:
            for task, scenario in system.submissions():
                if scenario is not Scenario.MULTI_STREAM:
                    continue
                workload = task_workload(task)
                interval = task_rules(task).multistream_interval
                service = system.device.service_time(
                    workload.gops_per_sample, 1, workload.motif)
                assert service < interval, (system.name, task)
