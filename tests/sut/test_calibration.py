"""Device-model fitting from latency measurements."""

import numpy as np
import pytest

from repro.sut.calibration import fit_device_model
from repro.sut.device import DeviceModel, ProcessorType


def truth_device(**kwargs):
    defaults = dict(
        name="truth", processor=ProcessorType.GPU, peak_gops=20_000.0,
        base_utilization=0.1, saturation_gops=80.0, overhead=8e-4,
        max_batch=64,
    )
    defaults.update(kwargs)
    return DeviceModel(**defaults)


def measure(device, gops, batches, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for batch in batches:
        latency = device.service_time(gops, batch)
        if noise:
            latency *= float(np.exp(rng.normal(0.0, noise)))
        out.append((batch, latency))
    return out


BATCHES = (1, 2, 4, 8, 16, 32, 64)
GOPS = 8.2


class TestFit:
    def test_recovers_noiseless_latency_curve(self):
        device = truth_device()
        fit = fit_device_model(measure(device, GOPS, BATCHES), GOPS)
        assert fit.rms_relative_error < 0.03
        for batch in BATCHES:
            predicted = fit.device.service_time(GOPS, batch)
            assert predicted == pytest.approx(
                device.service_time(GOPS, batch), rel=0.06)

    def test_tolerates_measurement_noise(self):
        device = truth_device()
        fit = fit_device_model(
            measure(device, GOPS, BATCHES, noise=0.05), GOPS)
        assert fit.rms_relative_error < 0.12

    def test_fitted_device_extrapolates_throughput(self):
        device = truth_device()
        fit = fit_device_model(measure(device, GOPS, BATCHES), GOPS)
        assert fit.device.best_offline_throughput(GOPS) == pytest.approx(
            device.best_offline_throughput(GOPS), rel=0.10)

    def test_cpu_like_shape_also_fits(self):
        cpu = truth_device(peak_gops=500.0, base_utilization=0.85,
                           saturation_gops=10.0, overhead=1e-4,
                           max_batch=16)
        fit = fit_device_model(
            measure(cpu, GOPS, (1, 2, 4, 8, 16)), GOPS)
        assert fit.rms_relative_error < 0.05

    def test_metadata_passthrough(self):
        fit = fit_device_model(
            measure(truth_device(), GOPS, BATCHES), GOPS,
            name="bench-board", processor=ProcessorType.FPGA, max_batch=32)
        assert fit.device.name == "bench-board"
        assert fit.device.processor is ProcessorType.FPGA
        assert fit.device.max_batch == 32

    def test_predicted_view(self):
        fit = fit_device_model(measure(truth_device(), GOPS, BATCHES), GOPS)
        predicted = fit.predicted(GOPS)
        assert len(predicted) == len(BATCHES)


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_device_model([(1, 0.01), (2, 0.02)], GOPS)

    def test_bad_values(self):
        with pytest.raises(ValueError):
            fit_device_model([(0, 0.01), (2, 0.02), (4, 0.03)], GOPS)
        with pytest.raises(ValueError):
            fit_device_model([(1, -0.01), (2, 0.02), (4, 0.03)], GOPS)
        with pytest.raises(ValueError):
            fit_device_model([(1, 0.01), (2, 0.02), (4, 0.03)], 0.0)
