"""Preprocessing timing policies (untimed v0.5 rule vs timed proposal)."""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.runtime import build_glyph_classifier
from repro.sut.backend import ClassifierSUT, PreprocessingModel


@pytest.fixture(scope="module")
def setup():
    dataset = SyntheticImageNet(size=200)
    qsl = DatasetQSL(dataset)
    model = build_glyph_classifier(dataset, "light")
    return qsl, model


def run_with(qsl, model, preprocessing):
    sut = ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.004 * n,
                        preprocessing=preprocessing)
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=100, min_duration=0.2)
    return sut, run_benchmark(sut, qsl, settings)


def test_untimed_preprocessing_does_not_affect_latency(setup):
    qsl, model = setup
    _plain_sut, plain = run_with(qsl, model, None)
    sut, result = run_with(
        qsl, model, PreprocessingModel(seconds_per_sample=0.002, timed=False))
    assert result.primary_metric == pytest.approx(plain.primary_metric)
    # ...but the work happened and is accounted for.
    assert sut.untimed_preprocess_seconds > 0
    assert sut.timed_preprocess_seconds == 0


def test_timed_preprocessing_adds_to_latency(setup):
    qsl, model = setup
    sut, result = run_with(
        qsl, model, PreprocessingModel(seconds_per_sample=0.002, timed=True))
    assert result.primary_metric == pytest.approx(0.004 + 0.002)
    assert sut.timed_preprocess_seconds > 0
    assert sut.untimed_preprocess_seconds == 0


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        PreprocessingModel(seconds_per_sample=-0.001)


def test_timed_policy_can_change_validity(setup):
    """A run that meets a bound with untimed preprocessing can fail it
    once the whole pipeline is timed - why the metric matters."""
    qsl, model = setup
    bound = 0.005
    settings = TestSettings(scenario=Scenario.SERVER,
                            server_target_qps=50.0,
                            server_latency_bound=bound,
                            min_query_count=100, min_duration=0.5)
    untimed = run_benchmark(
        ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.004,
                      preprocessing=PreprocessingModel(0.002, timed=False)),
        qsl, settings)
    timed = run_benchmark(
        ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.004,
                      preprocessing=PreprocessingModel(0.002, timed=True)),
        qsl, settings)
    assert untimed.valid
    assert not timed.valid
