"""Device power/energy modeling."""

import pytest

from repro.core.events import EventLoop
from repro.core.sampler import QueryFactory
from repro.sut.device import ComputeMotif, DeviceModel, ProcessorType
from repro.sut.fleet import build_fleet
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


def device(**kwargs):
    defaults = dict(
        name="p", processor=ProcessorType.GPU, peak_gops=1000.0,
        base_utilization=0.2, saturation_gops=50.0, overhead=1e-3,
        max_batch=32, idle_watts=5.0, peak_watts=50.0,
    )
    defaults.update(kwargs)
    return DeviceModel(**defaults)


class TestPowerModel:
    def test_power_interpolates_between_idle_and_peak(self):
        d = device()
        assert d.power_at(1e-9) == pytest.approx(5.0 + 45.0 * 0.2, rel=0.01)
        assert d.power_at(50.0) == pytest.approx(50.0)
        assert d.power_at(500.0) == pytest.approx(50.0)

    def test_energy_is_power_times_duration(self):
        d = device()
        duration = d.service_time(2.0, 8)
        energy = d.dispatch_energy(2.0, 8)
        assert energy == pytest.approx(duration * d.power_at(16.0))

    def test_batching_improves_energy_per_sample(self):
        d = device(base_utilization=0.05)
        assert d.energy_per_sample(2.0, 32) < d.energy_per_sample(2.0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            device(idle_watts=-1.0)
        with pytest.raises(ValueError):
            device(idle_watts=10.0, peak_watts=5.0)


class TestSimulatedEnergy:
    def test_sut_accumulates_energy(self):
        sut = SimulatedSUT(device(), WorkloadProfile(2.0))
        loop = EventLoop()
        done = []
        sut.start_run(loop, lambda q, r: done.append(q))
        sut.issue_query(QueryFactory().make_query(list(range(8))))
        loop.run()
        assert done
        assert sut.energy_joules == pytest.approx(
            device().dispatch_energy(2.0, 8))

    def test_energy_resets_per_run(self):
        sut = SimulatedSUT(device(), WorkloadProfile(2.0))
        for _ in range(2):
            loop = EventLoop()
            sut.start_run(loop, lambda q, r: None)
            sut.issue_query(QueryFactory().make_query([0]))
            loop.run()
        assert sut.energy_joules == pytest.approx(
            device().dispatch_energy(2.0, 1))


class TestFleetPower:
    def test_three_orders_of_magnitude(self):
        """Section I: systems 'span at least three orders of magnitude
        in power consumption'."""
        watts = [s.device.peak_watts for s in build_fleet()]
        assert max(watts) / min(watts) >= 1e2 * 5   # > 500x, ~3 orders

    def test_every_device_has_sane_power(self):
        for system in build_fleet():
            d = system.device
            assert 0 < d.idle_watts < d.peak_watts

    def test_efficiency_varies_across_the_fleet(self):
        """Inferences per joule on the light model differ by orders of
        magnitude between embedded parts and datacenter parts."""
        efficiencies = {}
        for system in build_fleet():
            d = system.device
            energy = d.energy_per_sample(
                1.138, min(8, d.max_batch), ComputeMotif.DEPTHWISE_CNN)
            efficiencies[system.name] = 1.0 / energy
        spread = max(efficiencies.values()) / min(efficiencies.values())
        assert spread > 10
