"""EchoSUT: zero-latency echo plus the finite-capacity slot model."""

import pytest

from repro.core.events import EventLoop, VirtualClock
from repro.core.query import Query, QuerySample
from repro.sut.echo import EchoSUT


def drive(sut, queries):
    loop = EventLoop(VirtualClock())
    finished = {}
    sut.start_run(loop, lambda q, r: finished.setdefault(q.id, loop.now))
    for query in queries:
        sut.issue_query(query)
    loop.run()
    return finished


def burst(count):
    return [Query(id=i, samples=(QuerySample(i * 10, 0),), issue_time=0.0)
            for i in range(count)]


def test_rejects_bad_knobs():
    with pytest.raises(ValueError, match="latency"):
        EchoSUT(latency=-1.0)
    with pytest.raises(ValueError, match="concurrency"):
        EchoSUT(concurrency=0)


def test_infinite_capacity_completes_a_burst_in_one_service_time():
    finished = drive(EchoSUT(latency=0.002), burst(5))
    assert all(t == pytest.approx(0.002) for t in finished.values())


def test_single_slot_serializes_a_burst():
    finished = drive(EchoSUT(latency=0.002, concurrency=1), burst(4))
    assert sorted(finished.values()) == pytest.approx(
        [0.002, 0.004, 0.006, 0.008])


def test_slots_drain_a_burst_in_parallel_waves():
    finished = drive(EchoSUT(latency=0.002, concurrency=2), burst(6))
    assert sorted(finished.values()) == pytest.approx(
        [0.002, 0.002, 0.004, 0.004, 0.006, 0.006])


def test_slots_free_up_between_bursts():
    sut = EchoSUT(latency=0.002, concurrency=1)
    loop = EventLoop(VirtualClock())
    finished = {}
    sut.start_run(loop, lambda q, r: finished.setdefault(q.id, loop.now))
    sut.issue_query(burst(1)[0])
    loop.run()
    # Much later, the slot must start fresh from "now", not chain off
    # the stale busy-until time.
    loop.schedule_after(1.0, lambda: sut.issue_query(
        Query(id=99, samples=(QuerySample(990, 0),), issue_time=1.002)))
    loop.run()
    assert finished[99] == pytest.approx(1.004)
