"""Event-driven simulated SUT: batching, chunking, padding waste."""

import numpy as np
import pytest

from repro.core.events import EventLoop
from repro.core.sampler import QueryFactory
from repro.sut.device import ComputeMotif, DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


def make_device(**kwargs):
    defaults = dict(
        name="dev", processor=ProcessorType.GPU, peak_gops=1000.0,
        base_utilization=0.5, saturation_gops=10.0, overhead=1e-3,
        max_batch=8,
    )
    defaults.update(kwargs)
    return DeviceModel(**defaults)


class Harness:
    """Drives a SimulatedSUT directly, collecting completions."""

    def __init__(self, sut):
        self.loop = EventLoop()
        self.sut = sut
        self.factory = QueryFactory()
        self.completions = []
        sut.start_run(self.loop, self._on_complete)

    def _on_complete(self, query, responses):
        self.completions.append((self.loop.now, query, responses))

    def issue(self, sample_count=1, at=None):
        query = self.factory.make_query(list(range(sample_count)))
        if at is None:
            self.sut.issue_query(query)
        else:
            self.loop.schedule(at, lambda: self.sut.issue_query(query))
        return query


class TestBasicService:
    def test_single_query_completes_after_service_time(self):
        device = make_device()
        sut = SimulatedSUT(device, WorkloadProfile(2.0))
        h = Harness(sut)
        h.issue(1)
        h.loop.run()
        (when, query, responses), = h.completions
        assert when == pytest.approx(device.service_time(2.0, 1))
        assert len(responses) == 1

    def test_every_sample_gets_a_response(self):
        sut = SimulatedSUT(make_device(), WorkloadProfile(1.0))
        h = Harness(sut)
        query = h.issue(5)
        h.loop.run()
        _, _, responses = h.completions[0]
        assert {r.sample_id for r in responses} == \
            {s.id for s in query.samples}

    def test_start_run_resets_state(self):
        sut = SimulatedSUT(make_device(), WorkloadProfile(1.0))
        h1 = Harness(sut)
        h1.issue(3)
        h1.loop.run()
        h2 = Harness(sut)   # re-register with a fresh loop
        h2.issue(3)
        h2.loop.run()
        assert len(h2.completions) == 1


class TestChunkingAndBatching:
    def test_large_query_split_into_max_batch_chunks(self):
        sut = SimulatedSUT(make_device(max_batch=8), WorkloadProfile(1.0))
        h = Harness(sut)
        h.issue(20)
        h.loop.run()
        assert sut.dispatch_batches == [8, 8, 4]
        assert len(h.completions) == 1   # one query, one completion

    def test_queued_singles_batch_together(self):
        # One engine busy: queries arriving during service batch up.
        device = make_device(max_batch=8)
        sut = SimulatedSUT(device, WorkloadProfile(4.0))
        h = Harness(sut)
        h.issue(1, at=0.0)
        first_service = device.service_time(4.0, 1)
        for k in range(4):
            h.issue(1, at=first_service * 0.5 + k * 1e-6)
        h.loop.run()
        assert sut.dispatch_batches[0] == 1
        assert sut.dispatch_batches[1] == 4

    def test_fifo_order_respected(self):
        sut = SimulatedSUT(make_device(max_batch=1), WorkloadProfile(4.0))
        h = Harness(sut)
        queries = [h.issue(1, at=k * 1e-6) for k in range(4)]
        h.loop.run()
        completed_ids = [q.id for _t, q, _r in h.completions]
        assert completed_ids == [q.id for q in queries]

    def test_engines_run_concurrently(self):
        device = make_device(engines=2, max_batch=1)
        sut = SimulatedSUT(device, WorkloadProfile(4.0))
        h = Harness(sut)
        h.issue(1, at=0.0)
        h.issue(1, at=0.0)
        h.loop.run()
        service = device.service_time(4.0, 1)
        times = [t for t, _q, _r in h.completions]
        assert times[0] == pytest.approx(service)
        assert times[1] == pytest.approx(service)


class TestBatchWindow:
    def test_window_delays_small_dispatch(self):
        device = make_device(max_batch=8)
        sut = SimulatedSUT(device, WorkloadProfile(1.0),
                           batch_window=0.010, preferred_batch=8)
        h = Harness(sut)
        h.issue(1, at=0.0)
        h.loop.run()
        when, _, _ = h.completions[0]
        assert when == pytest.approx(0.010 + device.service_time(1.0, 1))

    def test_full_batch_dispatches_immediately(self):
        device = make_device(max_batch=4)
        sut = SimulatedSUT(device, WorkloadProfile(1.0),
                           batch_window=0.050, preferred_batch=4)
        h = Harness(sut)
        h.issue(4, at=0.0)
        h.loop.run()
        when, _, _ = h.completions[0]
        assert when == pytest.approx(device.service_time(1.0, 4))

    def test_flush_overrides_window(self):
        device = make_device(max_batch=8)
        sut = SimulatedSUT(device, WorkloadProfile(1.0),
                           batch_window=10.0, preferred_batch=8)
        h = Harness(sut)
        h.issue(1, at=0.0)
        h.loop.schedule(0.001, sut.flush)
        h.loop.run()
        when, _, _ = h.completions[0]
        assert when < 0.1

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            SimulatedSUT(make_device(), WorkloadProfile(1.0),
                         batch_window=-1.0)


class TestVariability:
    def test_zero_variability_is_deterministic(self):
        sut = SimulatedSUT(make_device(), WorkloadProfile(1.0, variability=0.0))
        h = Harness(sut)
        h.issue(8)
        h.loop.run()
        base = h.completions[0][0]
        sut2 = SimulatedSUT(make_device(), WorkloadProfile(1.0, variability=0.0))
        h2 = Harness(sut2)
        h2.issue(8)
        h2.loop.run()
        assert h2.completions[0][0] == base

    def test_variability_pays_the_max_multiplier(self):
        flat = SimulatedSUT(make_device(max_batch=64),
                            WorkloadProfile(1.0, variability=0.0))
        hf = Harness(flat)
        hf.issue(64)
        hf.loop.run()
        varied = SimulatedSUT(make_device(max_batch=64),
                              WorkloadProfile(1.0, variability=0.8))
        hv = Harness(varied)
        hv.issue(64)
        hv.loop.run()
        assert hv.completions[0][0] > hf.completions[0][0]

    def test_within_query_sorting_reduces_padding(self):
        """A multi-chunk query sorts its samples: homogeneous chunks
        beat the cost of padding every chunk to the global max."""
        device = make_device(max_batch=8, overhead=0.0)
        sut = SimulatedSUT(device, WorkloadProfile(1.0, variability=1.0),
                           seed=3)
        h = Harness(sut)
        h.issue(64)
        h.loop.run()
        done = h.completions[0][0]
        # Upper bound: every one of the 8 chunks paying the global max.
        rng = np.random.default_rng(3)
        draws = rng.lognormal(0.0, 1.0, 64) / np.exp(0.5)
        worst = 8 * device.service_time(1.0 * draws.max(), 8)
        assert done < 0.8 * worst

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(0.0)
        with pytest.raises(ValueError):
            WorkloadProfile(1.0, variability=-0.1)
