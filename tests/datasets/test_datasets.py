"""Synthetic data sets: determinism, labels, calibration splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    FIRST_WORD_ID,
    GroundTruthObject,
    SyntheticCoco,
    SyntheticImageNet,
    SyntheticWmt,
)
from repro.datasets.glyphs import (
    glyph_templates,
    make_glyph_bank,
    place_glyph,
    resize_glyphs,
)


class TestGlyphs:
    def test_bank_shape_and_binary(self):
        bank = make_glyph_bank(8, 8, seed=1)
        assert bank.shape == (8, 8, 8)
        assert set(np.unique(bank)) <= {0.0, 1.0}

    def test_pairwise_separation(self):
        bank = make_glyph_bank(16, 8, seed=1)
        for i in range(16):
            for j in range(i + 1, 16):
                distance = np.sum(bank[i] != bank[j])
                assert distance >= int(0.4 * 64)

    def test_block_structure(self):
        """Block-2 glyphs are constant on 2x2 blocks."""
        bank = make_glyph_bank(4, 8, seed=2, block=2)
        for glyph in bank:
            blocks = glyph.reshape(4, 2, 4, 2)
            assert np.all(blocks == blocks[:, :1, :, :1])

    def test_deterministic_per_seed(self):
        assert np.array_equal(make_glyph_bank(4, 8, seed=3),
                              make_glyph_bank(4, 8, seed=3))
        assert not np.array_equal(make_glyph_bank(4, 8, seed=3),
                                  make_glyph_bank(4, 8, seed=4))

    def test_templates_zero_mean_unit_norm(self):
        bank = make_glyph_bank(4, 8, seed=1)
        templates = glyph_templates(bank)
        assert templates.shape == (8, 8, 1, 4)
        for c in range(4):
            t = templates[:, :, 0, c]
            assert t.mean() == pytest.approx(0.0, abs=1e-6)
            assert np.linalg.norm(t) == pytest.approx(1.0, abs=1e-5)

    def test_resize_roundtrip_for_block_glyphs(self):
        bank = make_glyph_bank(4, 8, seed=1, block=2)
        small = resize_glyphs(bank, 4)
        back = resize_glyphs(small, 8)
        assert np.array_equal(bank, back)

    def test_place_glyph_bbox_and_bounds(self):
        image = np.zeros((16, 16), dtype=np.float32)
        glyph = np.ones((4, 4), dtype=np.float32)
        box = place_glyph(image, glyph, 3, 5)
        assert box == (3, 5, 7, 9)
        assert image[3:7, 5:9].sum() == 16

    def test_place_glyph_out_of_bounds_rejected(self):
        image = np.zeros((8, 8), dtype=np.float32)
        glyph = np.ones((4, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            place_glyph(image, glyph, 6, 6)

    def test_too_many_classes_errors_cleanly(self):
        with pytest.raises((RuntimeError, ValueError)):
            make_glyph_bank(2000, 4, seed=0)


class TestSyntheticImageNet:
    def test_sample_shape_and_dtype(self, imagenet):
        sample = imagenet.get_sample(0)
        assert sample.shape == (32, 32, 1)
        assert sample.dtype == np.float32

    def test_samples_deterministic(self, imagenet):
        assert np.array_equal(imagenet.get_sample(7), imagenet.get_sample(7))

    def test_label_consistent_with_sample(self, imagenet):
        """The glyph drawn in the image is the labelled class's glyph."""
        for index in range(10):
            label = imagenet.get_label(index)
            image = imagenet.get_sample(index)[:, :, 0]
            template = imagenet.glyphs[label]
            best = -np.inf
            limit = imagenet.image_size - imagenet.glyph_size
            for top in range(limit + 1):
                for left in range(limit + 1):
                    patch = image[top:top + 8, left:left + 8]
                    best = max(best, float((patch * template).sum()))
            # A perfect glyph correlates at its (binary) energy.
            assert best >= 0.9 * template.sum()

    def test_labels_cover_classes(self, imagenet):
        labels = {imagenet.get_label(i) for i in range(200)}
        assert len(labels) > 10

    def test_calibration_split_disjoint_from_eval(self, imagenet):
        cal = set(imagenet.calibration_indices)
        ev = set(imagenet.evaluation_indices)
        assert cal.isdisjoint(ev)
        assert cal | ev == set(range(len(imagenet)))

    def test_index_bounds(self, imagenet):
        with pytest.raises(IndexError):
            imagenet.get_sample(len(imagenet))
        with pytest.raises(IndexError):
            imagenet.get_label(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SyntheticImageNet(size=0)
        with pytest.raises(ValueError):
            SyntheticImageNet(glyph_size=40, image_size=32)


class TestSyntheticCoco:
    def test_ground_truth_boxes_in_bounds(self, coco):
        for index in range(30):
            for obj in coco.get_label(index):
                y1, x1, y2, x2 = obj.box
                assert 0 <= y1 < y2 <= coco.image_size
                assert 0 <= x1 < x2 <= coco.image_size

    def test_at_least_one_object_per_image(self, coco):
        assert all(len(coco.get_label(i)) >= 1 for i in range(50))

    def test_class_ids_one_based(self, coco):
        ids = {obj.class_id for i in range(50) for obj in coco.get_label(i)}
        assert min(ids) >= 1
        assert max(ids) <= coco.num_classes

    def test_boxes_match_drawn_glyphs(self, coco):
        """Inside each ground-truth box the image contains its glyph."""
        for index in range(10):
            image = coco.get_sample(index)[:, :, 0]
            for obj in coco.get_label(index):
                y1, x1, y2, x2 = (int(v) for v in obj.box)
                size = y2 - y1
                bank = (coco.glyphs if size == coco.glyph_size
                        else coco.large_glyphs)
                glyph = bank[obj.class_id - 1]
                patch = image[y1:y2, x1:x2]
                correlation = float((patch * glyph).sum())
                assert correlation >= 0.9 * glyph.sum()

    def test_two_object_scales_present(self, coco):
        sizes = set()
        for i in range(60):
            for obj in coco.get_label(i):
                sizes.add(int(obj.box[2] - obj.box[0]))
        assert sizes == set(coco.object_scales)

    def test_objects_do_not_overlap_heavily(self, coco):
        from repro.models.nms import iou_matrix
        for index in range(30):
            boxes = np.array([o.box for o in coco.get_label(index)])
            if len(boxes) < 2:
                continue
            ious = iou_matrix(boxes, boxes)
            np.fill_diagonal(ious, 0.0)
            assert ious.max() < 0.5

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SyntheticCoco(image_size=10, glyph_size=8)


class TestSyntheticWmt:
    def test_cipher_is_a_bijection(self, wmt):
        values = list(wmt.cipher.values())
        assert len(set(values)) == len(values)
        assert set(wmt.cipher.keys()) == set(values)

    def test_no_special_tokens_in_sentences(self, wmt):
        for i in range(40):
            assert min(wmt.get_sample(i)) >= FIRST_WORD_ID
            assert min(wmt.get_label(i)) >= FIRST_WORD_ID

    def test_reference_is_reversed_cipher_with_synonyms(self, wmt):
        matches = 0
        total = 0
        for i in range(60):
            source = wmt.get_sample(i)
            reference = wmt.get_label(i)
            assert len(reference) == len(source)
            ideal = wmt.ideal_translation(source)
            for got, want, src in zip(reference, ideal, reversed(source)):
                total += 1
                if got == want:
                    matches += 1
                else:
                    assert got == wmt.synonyms[src]
        assert matches / total == pytest.approx(1 - wmt.synonym_rate, abs=0.05)

    def test_lengths_within_configured_range(self, wmt):
        lengths = [len(wmt.get_sample(i)) for i in range(80)]
        assert min(lengths) >= wmt.min_length
        assert max(lengths) <= wmt.max_length

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SyntheticWmt(vocab_size=3)
        with pytest.raises(ValueError):
            SyntheticWmt(min_length=5, max_length=4)


class TestDatasetQSL:
    def test_protocol_enforced(self, imagenet):
        from repro.datasets import DatasetQSL
        qsl = DatasetQSL(imagenet)
        with pytest.raises(RuntimeError):
            qsl.get_sample(0)
        qsl.load_samples([0, 1])
        assert qsl.get_sample(0) is not None
        qsl.unload_samples([0])
        with pytest.raises(RuntimeError):
            qsl.get_sample(0)
        assert qsl.loaded_count == 1

    def test_load_validates_indices(self, imagenet):
        from repro.datasets import DatasetQSL
        qsl = DatasetQSL(imagenet)
        with pytest.raises(IndexError):
            qsl.load_samples([len(imagenet)])

    def test_counts_and_events(self, imagenet):
        from repro.datasets import DatasetQSL
        qsl = DatasetQSL(imagenet, performance_sample_count=32)
        assert qsl.total_sample_count == len(imagenet)
        assert qsl.performance_sample_count == 32
        qsl.load_samples([1, 2, 3])
        qsl.unload_samples([1, 2, 3])
        assert qsl.events == ["load:3", "unload:3"]
