"""Closed-division lifecycles for the detection and translation tasks.

The classifier lifecycle is covered in ``test_submission_lifecycle``;
these exercise the same accuracy-target machinery with the mAP and BLEU
metrics and the corresponding runnable models.
"""

import pytest

from repro.accuracy import check_accuracy
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticCoco, SyntheticWmt
from repro.models.quantization import NumericFormat, QuantizationSpec
from repro.models.registry import model_info
from repro.models.runtime import (
    build_cipher_translator,
    build_glyph_detector,
    evaluate_detector,
    evaluate_translator,
)
from repro.submission import (
    BenchmarkResult,
    Category,
    Division,
    Submission,
    SystemDescription,
    check_submission,
)
from repro.sut.backend import DetectorSUT, TranslatorSUT


def make_submission(entry, numerics=(NumericFormat.FP32,)):
    return Submission(
        system=SystemDescription(
            name="lifecycle", submitter="tests", processor="CPU",
            accelerator_count=0, host_cpu_count=2,
            software_stack="repro-numpy", memory_gb=8.0, numerics=numerics),
        division=Division.CLOSED, category=Category.AVAILABLE,
        results=[entry])


class TestDetectionLifecycle:
    @pytest.fixture(scope="class")
    def coco(self):
        return SyntheticCoco(size=120)

    def _entry(self, coco, model, target):
        qsl = DatasetQSL(coco)

        def sut():
            return DetectorSUT(model, qsl,
                               service_time_fn=lambda n: 0.01 * n)

        perf = run_benchmark(sut(), qsl, TestSettings(
            scenario=Scenario.SINGLE_STREAM,
            task=Task.OBJECT_DETECTION_HEAVY,
            min_query_count=64, min_duration=0.5))
        acc_run = run_benchmark(sut(), qsl, TestSettings(
            scenario=Scenario.SINGLE_STREAM, mode=TestMode.ACCURACY))
        accuracy = check_accuracy(acc_run, coco, "detection", target)
        return BenchmarkResult(
            task=Task.OBJECT_DETECTION_HEAVY,
            scenario=Scenario.SINGLE_STREAM,
            performance=perf, accuracy=accuracy)

    def test_fp32_detector_clears_review(self, coco):
        model = build_glyph_detector(coco, "heavy")
        # Reference quality is measured over the same (full) set the
        # accuracy run covers.
        reference = evaluate_detector(model, coco, indices=range(len(coco)))
        target = model_info(Task.OBJECT_DETECTION_HEAVY)\
            .quality_target_factor * reference
        entry = self._entry(coco, model, target)
        report = check_submission(make_submission(entry))
        assert report.passed, [str(i) for i in report.issues]
        assert entry.accuracy.metric_name == "mAP"

    def test_wrecked_detector_rejected(self, coco):
        model = build_glyph_detector(coco, "heavy")
        reference = evaluate_detector(model, coco, indices=range(len(coco)))
        target = model_info(Task.OBJECT_DETECTION_HEAVY)\
            .quality_target_factor * reference
        # INT4 with hostile clipping wrecks the template correlations.
        broken = model.quantized(
            QuantizationSpec(NumericFormat.INT4, clip_percentile=75.0))
        entry = self._entry(coco, broken, target)
        report = check_submission(
            make_submission(entry, numerics=(NumericFormat.INT4,)))
        assert not report.passed
        assert any(i.code == "quality-target" for i in report.errors)


class TestTranslationLifecycle:
    @pytest.fixture(scope="class")
    def wmt(self):
        return SyntheticWmt(size=200)

    def _entry(self, wmt, model, target):
        qsl = DatasetQSL(wmt)

        def sut():
            return TranslatorSUT(model, qsl,
                                 service_time_fn=lambda n: 0.005 * n)

        perf = run_benchmark(sut(), qsl, TestSettings(
            scenario=Scenario.SINGLE_STREAM,
            task=Task.MACHINE_TRANSLATION,
            min_query_count=64, min_duration=0.5))
        acc_run = run_benchmark(sut(), qsl, TestSettings(
            scenario=Scenario.SINGLE_STREAM, mode=TestMode.ACCURACY))
        accuracy = check_accuracy(acc_run, wmt, "translation", target)
        return BenchmarkResult(
            task=Task.MACHINE_TRANSLATION,
            scenario=Scenario.SINGLE_STREAM,
            performance=perf, accuracy=accuracy)

    def test_fp32_translator_clears_review(self, wmt):
        model = build_cipher_translator(wmt)
        reference = evaluate_translator(model, wmt, indices=range(len(wmt)))
        target = model_info(Task.MACHINE_TRANSLATION)\
            .quality_target_factor * reference
        entry = self._entry(wmt, model, target)
        report = check_submission(make_submission(entry))
        assert report.passed
        assert entry.accuracy.metric_name == "SacreBLEU"

    def test_int8_translator_still_clears_the_99_percent_target(self, wmt):
        model = build_cipher_translator(wmt)
        reference = evaluate_translator(model, wmt, indices=range(len(wmt)))
        target = model_info(Task.MACHINE_TRANSLATION)\
            .quality_target_factor * reference
        int8 = model.quantized(QuantizationSpec(NumericFormat.INT8))
        entry = self._entry(wmt, int8, target)
        report = check_submission(
            make_submission(entry, numerics=(NumericFormat.INT8,)))
        assert report.passed, [str(i) for i in report.issues]
