"""Figure 3: the LoadGen <-> SUT message sequence.

(1) LoadGen requests sample loading; (2-3) the QSL brings samples into
memory; (4) ready; (5) queries issued; (6) responses returned; (7) logs
written for the accuracy script.
"""

import pytest

from repro.core import Scenario, TestMode, TestSettings, run_benchmark
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.datasets import DatasetQSL, SyntheticImageNet


class TracingSUT(SutBase):
    """Records every protocol interaction in order."""

    def __init__(self, qsl, trace):
        super().__init__("tracing")
        self.qsl = qsl
        self.trace = trace

    def start_run(self, loop, responder):
        super().start_run(loop, responder)
        self.trace.append("start_run")

    def issue_query(self, query):
        self.trace.append("issue")
        # Fetching samples mid-query must succeed: they were preloaded.
        payloads = [self.qsl.get_sample(s.index) for s in query.samples]
        responses = [
            QuerySampleResponse(s.id, int(p.sum() * 0))
            for s, p in zip(query.samples, payloads)
        ]
        self.loop.schedule_after(
            0.001, lambda: (self.trace.append("complete"),
                            self.complete(query, responses)))


def test_fig3_message_order():
    dataset = SyntheticImageNet(size=64)
    qsl = DatasetQSL(dataset)
    trace = []

    class TracingQSL(DatasetQSL):
        def load_samples(self, indices):
            trace.append("load_samples")
            super().load_samples(indices)

        def unload_samples(self, indices):
            trace.append("unload_samples")
            super().unload_samples(indices)

    tracing_qsl = TracingQSL(dataset)
    sut = TracingSUT(tracing_qsl, trace)
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=5, min_duration=0.0)
    result = run_benchmark(sut, tracing_qsl, settings)

    # Steps 1-4: load before the run starts.
    assert trace[0] == "load_samples"
    assert trace[1] == "start_run"
    # Step 5-6: strictly alternating issue/complete in single-stream.
    body = trace[2:-1]
    assert body == ["issue", "complete"] * (len(body) // 2)
    # Unload at the very end.
    assert trace[-1] == "unload_samples"
    # Step 7: the run log exists for the accuracy script.
    assert result.log.query_count == 5


def test_untimed_loading_does_not_count_against_latency():
    dataset = SyntheticImageNet(size=64)
    qsl = DatasetQSL(dataset)
    trace = []
    sut = TracingSUT(qsl, trace)
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=5, min_duration=0.0)
    result = run_benchmark(sut, qsl, settings)
    # Latency is pure SUT service time: loading happened at t<0
    # (outside the virtual clock entirely).
    assert result.metrics.latency_mean == pytest.approx(0.001)


def test_sample_access_outside_loaded_set_fails():
    dataset = SyntheticImageNet(size=64)
    qsl = DatasetQSL(dataset)

    class RogueSUT(SutBase):
        def issue_query(self, query):
            # Touch a sample that was never loaded.
            qsl.get_sample((query.samples[0].index + 1) % 64)

    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=4, min_duration=0.0,
                            performance_sample_count=1)
    with pytest.raises(RuntimeError, match="protocol violation"):
        run_benchmark(RogueSUT("rogue"), qsl, settings)
