"""Property-based end-to-end invariants of the LoadGen/SUT system.

Hypothesis generates random scenario configurations and device shapes;
the invariants must hold for every combination:

* conservation - every issued sample is answered exactly once;
* causality - no completion precedes its issue;
* isolation - the traffic trace depends only on the seed, never on the
  SUT's speed (for open-loop scenarios);
* validity soundness - a VALID verdict implies the rule thresholds hold
  when recomputed from the raw log.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scenario, TestSettings, run_benchmark
from repro.core.stats import percentile
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile

from tests.conftest import EchoQSL


def device_strategy():
    return st.builds(
        DeviceModel,
        name=st.just("prop-dev"),
        processor=st.just(ProcessorType.GPU),
        peak_gops=st.floats(min_value=100.0, max_value=100_000.0),
        base_utilization=st.floats(min_value=0.05, max_value=1.0),
        saturation_gops=st.floats(min_value=1.0, max_value=500.0),
        overhead=st.floats(min_value=0.0, max_value=5e-3),
        max_batch=st.integers(min_value=1, max_value=64),
        engines=st.integers(min_value=1, max_value=3),
    )


def settings_strategy():
    scenario = st.sampled_from(list(Scenario))

    def build(scenario, qps, n, count, seed):
        return TestSettings(
            scenario=scenario,
            server_target_qps=qps,
            server_latency_bound=10.0,          # loose: runs always finish
            multistream_interval=0.05,
            multistream_samples_per_query=n,
            min_query_count=count,
            min_duration=0.2,
            offline_sample_count=max(count, 64),
            seed=seed,
        )

    return st.builds(
        build,
        scenario,
        st.floats(min_value=10.0, max_value=2_000.0),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=16, max_value=128),
        st.integers(min_value=0, max_value=2 ** 31),
    )


workload_strategy = st.builds(
    WorkloadProfile,
    gops_per_sample=st.floats(min_value=0.1, max_value=50.0),
    variability=st.floats(min_value=0.0, max_value=1.0),
)


class TestEndToEndInvariants:
    @pytest.mark.slow
    @given(device=device_strategy(), run_settings=settings_strategy(),
           workload=workload_strategy)
    @settings(max_examples=30, deadline=None)
    def test_conservation_and_causality(self, device, run_settings,
                                        workload):
        sut = SimulatedSUT(device, workload)
        result = run_benchmark(sut, EchoQSL(), run_settings)
        records = result.log.records()
        # Conservation: everything completed, with one response/sample.
        assert result.log.outstanding == 0
        for record in records:
            assert record.completed
            assert record.completion_time >= record.issue_time
        # Sample ids globally unique across the run.
        ids = [s.id for r in records for s in r.query.samples]
        assert len(ids) == len(set(ids))

    @given(device=device_strategy(),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=15, deadline=None)
    def test_open_loop_traffic_independent_of_sut_speed(self, device, seed):
        """Server arrivals depend on the seed only (Section V-B's
        alternate-seed test relies on this)."""
        run_settings = TestSettings(
            scenario=Scenario.SERVER, server_target_qps=500.0,
            server_latency_bound=10.0, min_query_count=64,
            min_duration=0.1, seed=seed,
        )
        issue_times = []
        for gops in (0.1, 20.0):
            result = run_benchmark(
                SimulatedSUT(device, WorkloadProfile(gops)),
                EchoQSL(), run_settings)
            issue_times.append(
                [r.issue_time for r in result.log.records()][:64])
        assert issue_times[0] == issue_times[1]

    @given(device=device_strategy(), run_settings=settings_strategy(),
           workload=workload_strategy)
    @settings(max_examples=20, deadline=None)
    def test_validity_verdict_is_sound(self, device, run_settings,
                                       workload):
        result = run_benchmark(SimulatedSUT(device, workload), EchoQSL(),
                               run_settings)
        if not result.valid:
            return
        records = result.log.completed_records()
        latencies = [r.latency for r in records]
        # Recompute the rules from the raw log.
        assert len(records) >= (
            1 if run_settings.scenario is Scenario.OFFLINE
            else run_settings.resolved_min_query_count
        )
        if run_settings.scenario is Scenario.SERVER:
            bound = run_settings.resolved_server_latency_bound
            violations = sum(1 for l in latencies if l > bound)
            assert violations / len(latencies) <= \
                run_settings.resolved_max_violation_fraction + 1e-12
        if run_settings.scenario is Scenario.OFFLINE:
            samples = sum(r.query.sample_count for r in records)
            assert samples >= run_settings.resolved_offline_samples

    @given(device=device_strategy(), workload=workload_strategy,
           seed=st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=15, deadline=None)
    def test_reported_p90_matches_raw_log(self, device, workload, seed):
        run_settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                    min_query_count=32, min_duration=0.1,
                                    seed=seed)
        result = run_benchmark(SimulatedSUT(device, workload), EchoQSL(),
                               run_settings)
        raw = [r.latency for r in result.log.completed_records()]
        assert result.primary_metric == pytest.approx(percentile(raw, 0.90))
