"""The command-line interface."""

import pytest

from repro.cli import main


class TestTables:
    def test_all_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "ResNet-50 v1.5" in out
        assert "270,336" in out
        assert "Poisson" in out

    def test_single_table(self, capsys):
        assert main(["tables", "--which", "3"]) == 0
        out = capsys.readouterr().out
        assert "latency constraints" in out
        assert "ResNet-50 v1.5" not in out


class TestRun:
    def test_single_stream(self, capsys):
        code = main([
            "run", "--task", "mobilenet-v1", "--scenario", "single-stream",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "single_stream" in out
        assert "VALID" in out

    def test_offline(self, capsys):
        assert main([
            "run", "--task", "resnet50-v1.5", "--scenario", "offline",
        ]) == 0
        assert "samples/s" in capsys.readouterr().out

    def test_server_reports_rate(self, capsys):
        assert main([
            "run", "--task", "mobilenet-v1", "--scenario", "server",
            "--peak-gops", "20000",
        ]) == 0
        assert "max server rate" in capsys.readouterr().out

    def test_impossible_server_fails_nonzero(self, capsys):
        code = main([
            "run", "--task", "resnet50-v1.5", "--scenario", "server",
            "--peak-gops", "50",
        ])
        assert code == 1
        assert "cannot meet" in capsys.readouterr().out

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--task", "bert", "--scenario", "offline"])


class TestRunParallel:
    def test_offline_on_the_worker_pool(self, capsys):
        assert main([
            "run", "--sut", "parallel", "--scenario", "offline",
            "--workers", "2", "--samples", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out
        assert "samples/s" in out
        assert "pool: 2 workers" in out

    def test_single_stream_on_the_worker_pool(self, capsys):
        assert main([
            "run", "--sut", "parallel", "--scenario", "single-stream",
            "--workers", "2", "--samples", "64", "--queries", "20",
        ]) == 0
        assert "VALID" in capsys.readouterr().out

    def test_unsupported_scenario_rejected(self, capsys):
        assert main([
            "run", "--sut", "parallel", "--scenario", "server",
        ]) == 2
        assert "parallel" in capsys.readouterr().err


@pytest.mark.socket
class TestServeParallel:
    def test_serve_hosts_and_releases_the_pool(self, capsys):
        assert main([
            "serve", "--backend", "parallel", "--port", "0",
            "--model-workers", "2", "--max-seconds", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "parallel echo backend (2 procs" in out
        assert "server stats" in out


class TestFleet:
    def test_subset_survey(self, capsys):
        code = main(["fleet", "--systems", "mobile-dsp-a", "laptop-cpu"])
        assert code == 0
        out = capsys.readouterr().out
        assert "results from 2 systems" in out
        assert "TOTAL" in out

    def test_unknown_system_rejected(self, capsys):
        assert main(["fleet", "--systems", "not-a-system"]) == 2
        assert "unknown systems" in capsys.readouterr().err


class TestCheck:
    def test_check_clean_directory(self, tmp_path, capsys):
        from repro.submission.artifacts import write_submission
        from tests.submission.test_submission import submission

        root = write_submission(submission(), tmp_path / "sub")
        assert main(["check", str(root)]) == 0
        assert "CLEARED" in capsys.readouterr().out

    def test_check_bad_directory(self, tmp_path, capsys):
        assert main(["check", str(tmp_path)]) == 1
        assert "REJECTED" in capsys.readouterr().out
