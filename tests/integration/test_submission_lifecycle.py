"""Full closed-division submission lifecycle, end to end.

Build a runnable model, measure FP32 reference quality, run accuracy and
performance modes through the LoadGen, assemble a submission, and push
it through the checker - including a quantized variant that must still
meet the quality target, and one that must not.
"""

import pytest

from repro.accuracy import check_accuracy
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.quantization import NumericFormat, QuantizationSpec
from repro.models.registry import model_info
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.submission import (
    BenchmarkResult,
    Category,
    Division,
    Submission,
    SystemDescription,
    check_submission,
)
from repro.sut.backend import ClassifierSUT


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageNet(size=300)


@pytest.fixture(scope="module")
def reference_quality(dataset):
    """FP32 reference accuracy over the full set (what accuracy mode
    covers)."""
    model = build_glyph_classifier(dataset, "light")
    return evaluate_classifier(model, dataset, indices=range(len(dataset)))


def build_entry(dataset, model, quality_target):
    qsl = DatasetQSL(dataset)

    def sut():
        return ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.002 * n)

    perf_settings = TestSettings(
        scenario=Scenario.SINGLE_STREAM, task=Task.IMAGE_CLASSIFICATION_LIGHT,
        min_query_count=128, min_duration=0.5,
    )
    performance = run_benchmark(sut(), qsl, perf_settings)

    accuracy_settings = perf_settings.with_overrides(mode=TestMode.ACCURACY)
    accuracy_run = run_benchmark(sut(), qsl, accuracy_settings)
    accuracy = check_accuracy(accuracy_run, dataset, "classification",
                              quality_target)
    return BenchmarkResult(
        task=Task.IMAGE_CLASSIFICATION_LIGHT,
        scenario=Scenario.SINGLE_STREAM,
        performance=performance,
        accuracy=accuracy,
    )


def make_submission(entry, numerics=(NumericFormat.FP32,)):
    return Submission(
        system=SystemDescription(
            name="laptop", submitter="repro", processor="CPU",
            accelerator_count=0, host_cpu_count=4,
            software_stack="repro-numpy", memory_gb=8.0, numerics=numerics,
        ),
        division=Division.CLOSED,
        category=Category.AVAILABLE,
        results=[entry],
    )


class TestClosedDivisionLifecycle:
    def test_fp32_submission_clears_review(self, dataset, reference_quality):
        info = model_info(Task.IMAGE_CLASSIFICATION_LIGHT)
        target = info.quality_target_factor * reference_quality
        model = build_glyph_classifier(dataset, "light")
        entry = build_entry(dataset, model, target)
        submission = make_submission(entry)
        report = check_submission(submission)
        assert report.passed, [str(i) for i in report.issues]

    def test_per_channel_int8_clears_the_98_percent_target(
            self, dataset, reference_quality):
        info = model_info(Task.IMAGE_CLASSIFICATION_LIGHT)
        target = info.quality_target_factor * reference_quality
        model = build_glyph_classifier(dataset, "light").quantized(
            QuantizationSpec(NumericFormat.INT8, per_channel=True))
        entry = build_entry(dataset, model, target)
        submission = make_submission(entry, numerics=(NumericFormat.INT8,))
        assert check_submission(submission).passed

    def test_per_tensor_int8_fails_review(self, dataset, reference_quality):
        """Section III-B: naive mobile-model quantization misses the
        target; the checker rejects the submission."""
        info = model_info(Task.IMAGE_CLASSIFICATION_LIGHT)
        target = info.quality_target_factor * reference_quality
        model = build_glyph_classifier(dataset, "light").quantized(
            QuantizationSpec(NumericFormat.INT8, per_channel=False))
        entry = build_entry(dataset, model, target)
        submission = make_submission(entry, numerics=(NumericFormat.INT8,))
        report = check_submission(submission)
        assert not report.passed
        assert any(i.code == "quality-target" for i in report.errors)

    def test_calibration_flow_uses_only_calibration_split(self, dataset):
        """The Section IV-A calibration loop: pick the clip percentile on
        the calibration set, then verify on the evaluation set."""
        from repro.models.quantization import calibrate_clip_percentile

        base = build_glyph_classifier(dataset, "light")
        calibration = dataset.calibration_indices

        def build_and_eval(spec):
            return evaluate_classifier(base.quantized(spec), dataset,
                                       indices=calibration)

        best_spec, cal_quality = calibrate_clip_percentile(
            build_and_eval, NumericFormat.INT8, per_channel=True)
        final = evaluate_classifier(base.quantized(best_spec), dataset)
        assert cal_quality > 0
        assert final > 0.9 * evaluate_classifier(base, dataset)
