"""Snapshot capture and the loop-driven sampler, incl. determinism."""

import pytest

from repro.core.events import EventLoop, VirtualClock
from repro.metrics import MetricsRegistry, SnapshotSampler, capture


def make_registry():
    reg = MetricsRegistry()
    reg.counter("events_total").inc(3)
    reg.gauge("depth").set(2)
    h = reg.histogram("lat_seconds")
    for v in (0.001, 0.002, 0.004):
        h.observe(v)
    return reg


class TestCapture:
    def test_flattens_counters_and_gauges(self):
        snap = capture(make_registry(), time=1.5)
        assert snap.time == 1.5
        assert snap.values["events_total"] == 3.0
        assert snap.values["depth"] == 2.0

    def test_histogram_expands_to_count_sum_quantiles(self):
        snap = capture(make_registry(), time=0.0)
        assert snap.values["lat_seconds_count"] == 3.0
        assert snap.values["lat_seconds_sum"] == pytest.approx(0.007)
        for suffix in ("p50", "p90", "p99", "p999"):
            assert f"lat_seconds_{suffix}" in snap.values

    def test_custom_quantiles(self):
        snap = capture(make_registry(), time=0.0,
                       quantiles=(("p25", 0.25),))
        assert "lat_seconds_p25" in snap.values
        assert "lat_seconds_p50" not in snap.values

    def test_get_with_default(self):
        snap = capture(make_registry(), time=0.0)
        assert snap.get("events_total") == 3.0
        assert snap.get("missing", default=-1.0) == -1.0


class TestSampler:
    def test_ticks_at_exact_period_on_virtual_clock(self):
        reg = MetricsRegistry()
        counter = reg.counter("ticks_total")
        loop = EventLoop(VirtualClock())
        sampler = SnapshotSampler(reg, loop, period=0.5)

        remaining = [6]

        def work():
            counter.inc()
            remaining[0] -= 1
            if remaining[0]:
                loop.schedule_after(0.4, work)

        loop.schedule_after(0.4, work)
        sampler.start(keep_going=lambda: remaining[0] > 0)
        loop.run()

        times = [s.time for s in sampler.snapshots]
        assert times == [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
        # Monotone counter readings, ending at the final value.
        readings = [s.values["ticks_total"] for s in sampler.snapshots]
        assert readings == sorted(readings)
        assert readings[-1] == 6.0

    def test_keep_going_false_takes_final_snapshot_then_stops(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        loop = EventLoop(VirtualClock())
        sampler = SnapshotSampler(reg, loop, period=1.0)
        sampler.start(keep_going=lambda: False)
        loop.run()
        # Baseline at t=0 plus the single tick at t=1 that observed the
        # stop condition; the loop then drains instead of running forever.
        assert [s.time for s in sampler.snapshots] == [0.0, 1.0]
        assert loop.now == 1.0

    def test_stop_cancels_pending_tick(self):
        reg = MetricsRegistry()
        loop = EventLoop(VirtualClock())
        sampler = SnapshotSampler(reg, loop, period=1.0)
        sampler.start()
        sampler.stop()
        loop.run()
        assert [s.time for s in sampler.snapshots] == [0.0]

    def test_sample_now_appends(self):
        reg = MetricsRegistry()
        loop = EventLoop(VirtualClock())
        sampler = SnapshotSampler(reg, loop, period=1.0)
        sampler.start(keep_going=lambda: False)
        loop.run()
        before = len(sampler.snapshots)
        sampler.sample_now()
        assert len(sampler.snapshots) == before + 1

    def test_double_start_raises(self):
        sampler = SnapshotSampler(
            MetricsRegistry(), EventLoop(VirtualClock()), period=1.0)
        sampler.start()
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            SnapshotSampler(
                MetricsRegistry(), EventLoop(VirtualClock()), period=0.0)


class TestDeterminism:
    """The ISSUE's bugfix criterion: no wall-time on the virtual path."""

    def run_once(self):
        from repro.core import Scenario, TestSettings, run_benchmark
        from repro.harness.netbench import SyntheticQSL
        from repro.network.simulated import ChannelModel, SimulatedChannelSUT
        from repro.sut.echo import EchoSUT

        settings = TestSettings(
            scenario=Scenario.SERVER,
            server_target_qps=300.0,
            server_latency_bound=0.1,
            min_query_count=150,
            min_duration=0.0,
            watchdog_timeout=60.0,
        )
        registry = MetricsRegistry()
        sut = SimulatedChannelSUT(
            EchoSUT(latency=0.002),
            ChannelModel(latency=0.0005, jitter=0.0002, seed=5),
        )
        result = run_benchmark(
            sut, SyntheticQSL(), settings,
            registry=registry, snapshot_period=0.05,
        )
        assert result.valid
        return result.snapshots

    def test_repeat_runs_produce_identical_snapshot_series(self):
        first = self.run_once()
        second = self.run_once()
        assert first is not None and len(first) > 3
        assert [s.time for s in first] == [s.time for s in second]
        assert [s.values for s in first] == [s.values for s in second]
