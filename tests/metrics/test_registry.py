"""MetricsRegistry and family semantics: labels, idempotency, keys."""

import pytest

from repro.metrics import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    series_key,
)


class TestSeriesKey:
    def test_label_free(self):
        assert series_key("up", {}) == "up"

    def test_labels_render_in_given_order(self):
        key = series_key("lat", {"scenario": "server", "kind": "x"})
        assert key == 'lat{scenario="server",kind="x"}'


class TestFamilies:
    def test_label_children_are_distinct_and_cached(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", labels=("path",))
        a = fam.labels(path="/a")
        b = fam.labels(path="/b")
        assert a is not b
        assert fam.labels(path="/a") is a
        a.inc()
        assert a.value == 1.0
        assert b.value == 0.0

    def test_wrong_label_set_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", labels=("path",))
        with pytest.raises(ValueError):
            fam.labels(verb="GET")
        with pytest.raises(ValueError):
            fam.labels()
        with pytest.raises(ValueError):
            fam.labels(path="/a", verb="GET")

    def test_label_free_family_acts_as_its_child(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total")
        c.inc(2)
        assert c.value == 2.0
        g = reg.gauge("depth")
        g.set(5)
        g.dec()
        assert g.value == 4.0
        h = reg.histogram("lat_seconds")
        h.observe(0.01)
        assert h.count == 1

    def test_labeled_family_rejects_direct_writes(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", labels=("path",))
        with pytest.raises(ValueError):
            fam.inc()

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        fam = reg.counter("per_worker_total", labels=("worker",))
        fam.labels(worker=3).inc()
        assert fam.labels(worker="3").value == 1.0

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad-name")
        with pytest.raises(ValueError):
            reg.counter("ok_total", labels=("bad-label",))
        with pytest.raises(ValueError):
            CounterFamily("x_total", "", label_names=("a", "a"))

    def test_callback_gauge_cannot_be_labeled(self):
        with pytest.raises(ValueError):
            GaugeFamily("g", "", label_names=("x",), fn=lambda: 0)

    def test_histogram_family_custom_bucketing(self):
        fam = HistogramFamily("sizes", "", base=1.0, growth=2.0, buckets=8)
        child = fam.labels()
        child.observe(100.0)
        assert child.bucket_upper(0) == 1.0


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("events_total", "first help")
        b = reg.counter("events_total", "second help ignored")
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(ValueError):
            reg.gauge("thing")

    def test_label_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing_total", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("thing_total", labels=("b",))
        with pytest.raises(ValueError):
            reg.counter("thing_total")

    def test_namespace_prefixes_names(self):
        reg = MetricsRegistry(namespace="repro")
        reg.counter("events_total")
        assert "repro_events_total" in reg
        assert reg.get("repro_events_total") is not None

    def test_invalid_namespace_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(namespace="bad ns")

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zz_total")
        reg.gauge("aa_depth")
        assert [f.name for f in reg.collect()] == ["aa_depth", "zz_total"]

    def test_label_free_series_materialize_at_registration(self):
        """Zero-valued and callback series must export without ever
        being written - the registry materializes the single child."""
        reg = MetricsRegistry()
        reg.counter("never_bumped_total")
        reg.gauge("live_depth", fn=lambda: 42)
        series = {
            series_key(f.name, labels): child
            for f in reg.collect()
            for labels, child in f.series()
        }
        assert series["never_bumped_total"].value == 0.0
        assert series["live_depth"].value == 42.0

    def test_labeled_families_start_empty(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", labels=("path",))
        assert list(fam.series()) == []
