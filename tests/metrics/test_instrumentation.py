"""End-to-end wiring: the hot paths actually feed the registry.

Each test runs a real (virtual-time or localhost) benchmark with a
registry attached and cross-checks the live series against the ground
truth the run already keeps (QueryLog, ResilienceStats, server STATS).
"""

import json

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.core.trace import to_chrome_trace
from repro.faults import FaultPlan, FaultType, FaultySUT, ResilientSUT, RetryPolicy
from repro.harness.netbench import (
    SyntheticQSL,
    run_over_localhost,
    run_over_simulated_channel,
)
from repro.metrics import MetricsRegistry
from repro.network.server import ServerConfig
from repro.network.simulated import ChannelModel, SimulatedChannelSUT
from repro.sut.echo import EchoSUT


def server_settings(queries=200, qps=400.0):
    return TestSettings(
        scenario=Scenario.SERVER,
        server_target_qps=qps,
        server_latency_bound=0.1,
        min_query_count=queries,
        min_duration=0.0,
        watchdog_timeout=60.0,
    )


def series(registry):
    """Flatten the registry for assertion convenience."""
    from repro.metrics import capture

    return capture(registry, time=0.0).values


class TestLoadGenInstruments:
    def test_counters_match_the_query_log(self):
        registry = MetricsRegistry()
        result = run_benchmark(
            EchoSUT(latency=0.002), SyntheticQSL(), server_settings(),
            registry=registry,
        )
        assert result.valid
        values = series(registry)
        n = result.metrics.query_count
        assert values['loadgen_queries_issued_total{scenario="server"}'] == n
        assert values['loadgen_samples_issued_total{scenario="server"}'] == n
        assert (values['loadgen_queries_completed_total{scenario="server"}']
                == n)
        assert values['loadgen_queries_failed_total{scenario="server"}'] == 0
        assert values['loadgen_queries_outstanding'] == 0
        key = 'loadgen_query_latency_seconds{scenario="server"}'
        assert values[f"{key}_count"] == n
        # The histogram's p99 tracks the exact post-hoc metric within
        # the documented reconstruction bound (~4.4%).
        assert values[f"{key}_p99"] == pytest.approx(
            result.metrics.latency_p99, rel=0.05)

    def test_latency_histogram_mean_matches_metrics(self):
        registry = MetricsRegistry()
        result = run_benchmark(
            EchoSUT(latency=0.003), SyntheticQSL(),
            server_settings(queries=100), registry=registry,
        )
        hist = registry.get("loadgen_query_latency_seconds").labels(
            scenario="server")
        assert hist.mean == pytest.approx(result.metrics.latency_mean,
                                          rel=1e-9)

    def test_no_registry_means_no_overhead_objects(self):
        result = run_benchmark(
            EchoSUT(latency=0.001), SyntheticQSL(),
            server_settings(queries=50),
        )
        assert result.valid
        assert result.snapshots is None


class TestSnapshotsInResult:
    def test_snapshot_series_returned_and_monotone(self):
        registry = MetricsRegistry()
        result = run_benchmark(
            EchoSUT(latency=0.002), SyntheticQSL(), server_settings(),
            registry=registry, snapshot_period=0.05,
        )
        snaps = result.snapshots
        assert snaps is not None and len(snaps) >= 3
        times = [s.time for s in snaps]
        assert times == sorted(times)
        issued = [
            s.get('loadgen_queries_issued_total{scenario="server"}')
            for s in snaps
        ]
        assert issued == sorted(issued)
        assert issued[0] == 0.0
        assert issued[-1] == result.metrics.query_count

    def test_chrome_trace_gains_a_counter_track(self):
        registry = MetricsRegistry()
        result = run_benchmark(
            EchoSUT(latency=0.002), SyntheticQSL(),
            server_settings(queries=100),
            registry=registry, snapshot_period=0.05,
        )
        doc = json.loads(to_chrome_trace(result.log,
                                         snapshots=result.snapshots))
        events = doc["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "no counter events in the trace"
        assert all(e["pid"] == 3 for e in counters)
        metas = [e for e in events
                 if e["ph"] == "M" and e.get("pid") == 3]
        assert metas[0]["args"]["name"] == "metrics"
        # One event per series per snapshot.
        per_series = {}
        for e in counters:
            per_series.setdefault(e["name"], []).append(e)
        expected = len(result.snapshots)
        assert all(len(v) == expected for v in per_series.values())


class TestFaultAndResilienceInstruments:
    def test_fault_counters_match_injector_decisions(self):
        registry = MetricsRegistry()
        plan = FaultPlan(rates={FaultType.DROP: 0.1,
                                FaultType.DUPLICATE: 0.05}, seed=3)
        faulty = FaultySUT(EchoSUT(latency=0.002), plan, registry=registry)
        sut = ResilientSUT(faulty, RetryPolicy(attempt_timeout=0.05),
                           registry=registry)
        result = run_benchmark(sut, SyntheticQSL(),
                               server_settings(queries=200))
        assert result.valid
        values = series(registry)
        drops = values.get('faults_injected_total{fault="drop"}', 0)
        assert drops > 0
        # Every dropped attempt forces a retry; duplicates are filtered.
        assert values["resilient_retries_total"] == sut.stats.retries
        assert (values["resilient_recovered_queries_total"]
                == sut.stats.recovered_queries)
        assert (values["resilient_filtered_completions_total"]
                == sut.stats.filtered_completions)
        assert values["resilient_retries_total"] >= drops

    def test_gave_up_counter(self):
        registry = MetricsRegistry()
        plan = FaultPlan(rates={FaultType.DROP: 1.0}, seed=1)
        faulty = FaultySUT(EchoSUT(latency=0.001), plan)
        sut = ResilientSUT(
            faulty, RetryPolicy(max_attempts=2, attempt_timeout=0.01),
            registry=registry)
        result = run_benchmark(sut, SyntheticQSL(),
                               server_settings(queries=20, qps=100.0))
        assert not result.valid
        values = series(registry)
        assert values["resilient_gave_up_queries_total"] == 20
        assert values["resilient_gave_up_queries_total"] == (
            sut.stats.gave_up_queries)


class TestSimulatedChannelRun:
    def test_registry_flows_through_netbench(self):
        registry = MetricsRegistry()
        bundle = run_over_simulated_channel(
            EchoSUT(latency=0.002), SyntheticQSL(),
            server_settings(queries=150),
            model=ChannelModel(latency=0.0005, seed=2),
            registry=registry, snapshot_period=0.05,
        )
        assert bundle.valid
        values = series(registry)
        assert (values['loadgen_queries_issued_total{scenario="server"}']
                == 150)
        assert bundle.result.snapshots is not None


@pytest.mark.socket
class TestServerInstruments:
    def test_localhost_run_feeds_server_series(self):
        registry = MetricsRegistry()
        bundle = run_over_localhost(
            lambda: EchoSUT(latency=0.001),
            SyntheticQSL(),
            server_settings(queries=100, qps=200.0),
            server_config=ServerConfig(workers=2, max_batch=4),
            registry=registry, snapshot_period=0.1,
        )
        assert bundle.valid
        values = series(registry)
        stats = bundle.server_stats
        assert values["server_connections_total"] >= 1
        assert values["server_queries_received_total"] == 100
        assert values["server_queries_completed_total"] == 100
        assert values["server_queries_rejected_total"] == float(
            stats["rejected"])
        assert values["server_batches_total"] > 0
        assert values["server_batch_size_samples_count"] == values[
            "server_batches_total"]
        assert values["server_queue_wait_seconds_count"] == 100
        # Gauges read live state; after the run everything has drained.
        assert values["server_queue_depth"] == 0
        assert values["server_workers_busy"] == 0
        busy = [
            (labels, child)
            for labels, child in registry.get(
                "server_worker_busy_seconds_total").series()
        ]
        assert len(busy) == 2
        assert all(child.value >= 0.0 for _, child in busy)
