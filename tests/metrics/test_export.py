"""Exporters: Prometheus exposition, JSON, terminal rendering."""

import json

import pytest

from repro.metrics import (
    MetricsRegistry,
    render_histogram,
    render_table,
    to_json,
    to_prometheus_text,
)


def make_registry():
    reg = MetricsRegistry()
    reg.counter("queries_total", "Queries seen",
                labels=("scenario",)).labels(scenario="server").inc(10)
    reg.gauge("depth", "Queue depth").set(4)
    h = reg.histogram("lat_seconds", "Latency", base=1e-3, growth=2.0,
                      buckets=8)
    for v in (0.002, 0.002, 0.004, 0.05):
        h.observe(v)
    return reg


class TestPrometheusText:
    def test_headers_and_scalar_lines(self):
        text = to_prometheus_text(make_registry())
        assert "# HELP queries_total Queries seen" in text
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{scenario="server"} 10' in text
        assert "# TYPE depth gauge" in text
        assert "depth 4" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus_text(make_registry())
        lines = [l for l in text.splitlines() if l.startswith("lat_seconds")]
        bucket_lines = [l for l in lines if "_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert bucket_lines[-1].startswith('lat_seconds_bucket{le="+Inf"}')
        assert counts[-1] == 4

    def test_sum_and_count_use_prometheus_naming(self):
        """The suffix goes on the metric name, before the label braces."""
        text = to_prometheus_text(make_registry())
        assert "lat_seconds_sum 0.058" in text
        assert "lat_seconds_count 4" in text
        labeled = MetricsRegistry()
        labeled.histogram("rt_seconds", labels=("path",)).labels(
            path="/a").observe(1.0)
        ltext = to_prometheus_text(labeled)
        assert 'rt_seconds_sum{path="/a"} 1' in ltext
        assert 'rt_seconds_count{path="/a"} 1' in ltext
        assert '}_sum' not in ltext and '}_count' not in ltext

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestJson:
    def test_round_trips_through_json_loads(self):
        doc = json.loads(to_json(make_registry()))
        by_name = {f["name"]: f for f in doc["metrics"]}
        assert by_name["queries_total"]["type"] == "counter"
        assert by_name["queries_total"]["series"][0]["value"] == 10

    def test_histogram_entry_is_complete_and_finite(self):
        doc = json.loads(to_json(make_registry()))
        hist = next(f for f in doc["metrics"] if f["name"] == "lat_seconds")
        series = hist["series"][0]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(0.058)
        assert set(series["quantiles"]) == {"p50", "p90", "p99", "p999"}
        # The overflow bucket's edge must serialize as a *string* so the
        # document stays valid JSON even when that bucket is occupied.
        overflow = MetricsRegistry()
        h = overflow.histogram("big", base=1.0, growth=2.0, buckets=2)
        h.observe(1e12)
        odoc = json.loads(to_json(overflow))
        le = odoc["metrics"][0]["series"][0]["buckets"][-1]["le"]
        assert le == "+Inf"


class TestRendering:
    def test_render_table_shows_all_series(self):
        text = render_table(make_registry())
        assert 'queries_total{scenario="server"}' in text
        assert "depth" in text
        assert "lat_seconds" in text
        assert "p99" in text

    def test_render_histogram_sketch(self):
        reg = make_registry()
        h = reg.get("lat_seconds").labels()
        sketch = render_histogram("lat_seconds", h, width=20)
        assert "count=4" in sketch
        assert "p50=" in sketch
        # The bar body is bounded by the requested width.
        bar_line = [l for l in sketch.splitlines() if "|" in l][0]
        assert len(bar_line) < 60

    def test_render_table_empty_registry(self):
        assert render_table(MetricsRegistry()).strip() == ""
