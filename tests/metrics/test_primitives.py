"""Counter/Gauge/Histogram primitives: boundaries, error bounds, merge."""

import math
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import percentile as stats_percentile

from repro.metrics import Counter, Gauge, Histogram
from repro.metrics.primitives import DEFAULT_GROWTH


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7.0
        assert b.value == 4.0  # merge does not drain the source


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0

    def test_callback_gauge_pulls_live_state(self):
        state = {"depth": 0}
        g = Gauge(fn=lambda: state["depth"])
        assert g.value == 0.0
        state["depth"] = 7
        assert g.value == 7.0

    def test_callback_gauge_rejects_writes(self):
        g = Gauge(fn=lambda: 1)
        with pytest.raises(ValueError):
            g.set(2)
        with pytest.raises(ValueError):
            g.inc()


class TestHistogramBuckets:
    def test_first_bucket_holds_everything_up_to_base(self):
        h = Histogram(base=1.0, growth=2.0, buckets=8)
        for v in (-1.0, 0.0, 0.5, 1.0):
            h.observe(v)
        assert h.nonzero_buckets() == [(0, 4)]

    def test_bucket_edges_are_half_open_on_the_left(self):
        # Bucket k covers (base*growth**(k-1), base*growth**k]: a value
        # exactly on an upper edge belongs to that bucket, the next
        # representable value above it to the one after.
        h = Histogram(base=1.0, growth=2.0, buckets=8)
        h.observe(2.0)          # edge of bucket 1
        h.observe(math.nextafter(2.0, 3.0))  # just over -> bucket 2
        assert h.nonzero_buckets() == [(1, 1), (2, 1)]

    def test_geometric_edges(self):
        h = Histogram(base=1e-3, growth=2.0, buckets=8)
        assert h.bucket_upper(0) == pytest.approx(1e-3)
        assert h.bucket_upper(3) == pytest.approx(8e-3)
        assert h.bucket_lower(3) == pytest.approx(4e-3)
        assert h.bucket_lower(0) == 0.0
        assert math.isinf(h.bucket_upper(7))

    def test_overflow_lands_in_last_bucket(self):
        h = Histogram(base=1.0, growth=2.0, buckets=4)
        h.observe(1e9)
        assert h.nonzero_buckets() == [(3, 1)]

    def test_boundary_indexing_survives_float_wobble(self):
        # Every computed upper edge must index into its own bucket.
        h = Histogram()
        for k in range(0, 400, 7):
            edge = h.bucket_upper(k)
            assert h._index(edge) == k, f"edge of bucket {k} misfiled"

    def test_exact_count_sum_min_max(self):
        h = Histogram()
        values = [0.004, 0.0021, 0.9, 1e-7, 0.05]
        for v in values:
            h.observe(v)
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.min == min(values)
        assert h.max == max(values)
        assert h.mean == pytest.approx(sum(values) / len(values))

    def test_empty_histogram_reads_zero(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.percentile(0.99) == 0.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Histogram(base=0.0)
        with pytest.raises(ValueError):
            Histogram(growth=1.0)
        with pytest.raises(ValueError):
            Histogram(buckets=1)


class TestPercentileReconstruction:
    def test_single_value_is_exact(self):
        h = Histogram()
        h.observe(0.0123)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.percentile(q) == pytest.approx(0.0123)

    def test_min_max_are_exact(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.008, 0.5):
            h.observe(v)
        # p0 sits in the smallest occupied bucket (within its width);
        # p100 clamps to the exact observed max.
        assert h.percentile(0.0) == pytest.approx(0.001, rel=0.05)
        assert h.percentile(1.0) == pytest.approx(0.5)

    def test_relative_error_bounded_by_growth(self):
        """The reconstruction error bound the docs promise: interior
        percentiles are within ``growth - 1`` of the true order
        statistic (nearest-rank convention)."""
        rng = np.random.default_rng(7)
        data = rng.lognormal(mean=-6.0, sigma=1.2, size=5000)
        h = Histogram()
        for v in data:
            h.observe(float(v))
        ordered = np.sort(data)
        bound = DEFAULT_GROWTH - 1.0
        for q in (0.5, 0.9, 0.99, 0.999):
            rank = max(1, math.ceil(q * len(ordered)))
            true = float(ordered[rank - 1])
            est = h.percentile(q)
            assert abs(est - true) / true <= bound, (
                f"p{q}: {est} vs true {true}"
            )

    def test_rank_convention_matches_core_stats(self):
        from repro.core.stats import percentile as exact_percentile

        # With values spread one per bucket the reconstruction targets
        # the same order statistic as the exact nearest-rank
        # implementation: the estimate lands in that observation's
        # bucket (within a growth factor of it), never a neighbour's.
        h = Histogram(base=1.0, growth=4.0, buckets=16)
        values = [2.0, 8.0, 32.0, 128.0, 512.0]
        for v in values:
            h.observe(v)
        for q in (0.2, 0.4, 0.6, 0.8, 1.0):
            exact = exact_percentile(values, q)
            est = h.percentile(q)
            assert exact / 4.0 < est <= exact * 4.0

    def test_quantile_out_of_range_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_percentiles_batch(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.003):
            h.observe(v)
        batch = h.percentiles([0.5, 0.99])
        assert batch == [h.percentile(0.5), h.percentile(0.99)]


class TestMerge:
    def test_merge_equals_single_writer(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(0.01, size=1000)
        whole = Histogram()
        parts = [Histogram() for _ in range(4)]
        for i, v in enumerate(data):
            whole.observe(float(v))
            parts[i % 4].observe(float(v))
        merged = Histogram()
        for p in parts:
            merged.merge(p)
        assert merged.count == whole.count
        assert merged.sum == pytest.approx(whole.sum)
        assert merged.min == whole.min
        assert merged.max == whole.max
        for q in (0.5, 0.9, 0.99):
            assert merged.percentile(q) == whole.percentile(q)

    def test_merge_rejects_mismatched_bucketing(self):
        a = Histogram(base=1e-6)
        b = Histogram(base=1e-3)
        with pytest.raises(ValueError):
            a.merge(b)
        c = Histogram(buckets=64)
        with pytest.raises(ValueError):
            a.merge(c)

    def test_cross_thread_merge(self):
        """The documented concurrency pattern: one private histogram per
        thread, merged at collection time."""
        rng = np.random.default_rng(11)
        shards = [rng.exponential(0.005, size=2000) for _ in range(4)]
        locals_ = [Histogram() for _ in shards]

        def work(hist, values):
            for v in values:
                hist.observe(float(v))

        threads = [
            threading.Thread(target=work, args=(h, s))
            for h, s in zip(locals_, shards)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = Histogram()
        for h in locals_:
            total.merge(h)
        all_values = np.concatenate(shards)
        assert total.count == len(all_values)
        assert total.sum == pytest.approx(float(all_values.sum()))
        assert total.max == float(all_values.max())


class TestPercentileNearestRank:
    """The live histogram must track the exact nearest-rank convention
    of ``repro.core.stats.percentile`` (ISSUE 4 satellite)."""

    GROWTH = 2.0 ** 0.25

    def _hist(self, values):
        h = Histogram(base=0.001, growth=self.GROWTH, buckets=96)
        for v in values:
            h.observe(v)
        return h

    def test_q_zero_is_exact_min(self):
        h = self._hist([3.7, 0.2, 9.9])
        assert h.percentile(0.0) == 0.2

    def test_q_one_is_exact_max(self):
        h = self._hist([3.7, 0.2, 9.9])
        assert h.percentile(1.0) == 9.9

    def test_empty_returns_zero(self):
        h = Histogram()
        assert h.percentile(0.0) == 0.0
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 0.0

    def test_single_observation_every_q(self):
        h = self._hist([4.2])
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 4.2

    def test_single_bucket_interior_rank_is_exact(self):
        """All mass in one bucket: the clamp to tracked min/max makes
        even interior ranks exact when the bucket holds one value."""
        h = self._hist([5.0, 5.0, 5.0])
        assert h.percentile(0.5) == 5.0

    def test_exact_at_bucket_boundaries(self):
        """Observations sitting exactly on bucket upper edges reproduce
        the nearest-rank answer with zero interpolation error."""
        h = Histogram(base=1.0, growth=2.0, buckets=16)
        edges = [1.0, 2.0, 4.0, 8.0, 16.0]
        for v in edges:
            h.observe(v)
        for rank, expected in enumerate(edges, start=1):
            q = rank / len(edges)
            assert h.percentile(q) == expected
            assert expected == stats_percentile(edges, q)

    def test_corrupt_counts_raise_instead_of_silent_max(self):
        """The old fall-through silently answered ``max``; inconsistent
        bucket state must now fail loudly."""
        h = self._hist([1.0, 2.0, 3.0, 4.0])
        h._counts = [0] * len(h._counts)  # corrupt: count says 4
        with pytest.raises(RuntimeError):
            h.percentile(0.5)

    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e3,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200),
        q=st.floats(min_value=0.0, max_value=1.0,
                    allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_tracks_exact_implementation_on_random_data(self, values, q):
        h = self._hist(values)
        estimate = h.percentile(q)
        rank = max(1, math.ceil(q * len(values)))
        exact = sorted(values)[rank - 1]
        if q > 0.0:
            assert exact == stats_percentile(values, q)
        if rank <= 1:
            assert estimate == min(values)
        elif rank >= len(values):
            assert estimate == max(values)
        else:
            assert min(values) <= estimate <= max(values)
            # Estimate and exact value share a bucket, so the error is
            # bounded by that bucket's width: relative (growth - 1)
            # above ``base``, absolute ``base`` below it.
            bound = max(0.001, exact * (self.GROWTH - 1.0)) + 1e-9
            assert abs(estimate - exact) <= bound

    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e3,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=80),
        qs=st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
                    min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_batch_percentiles_identical_to_scalar(self, values, qs):
        h = self._hist(values)
        assert h.percentiles(qs) == [h.percentile(q) for q in qs]
