"""Beam-search decoding on TinyGNMT."""

import pytest

from repro.models.runtime.gnmt_tiny import TinyGNMT

SOURCE = [5, 9, 12, 33, 8]


@pytest.fixture(scope="module")
def gnmt():
    return TinyGNMT()


def test_beam_one_equals_greedy(gnmt):
    assert gnmt.translate_beam(SOURCE, beam_size=1) == \
        gnmt.translate(SOURCE)


def test_beam_never_scores_below_greedy(gnmt):
    """Beam search optimizes sequence log-prob (length-normalized); with
    the same normalization it cannot do worse than greedy."""
    def normalized(tokens):
        length = max(len(tokens), 1)
        return gnmt.sequence_log_prob(SOURCE, tokens) / \
            (((5.0 + length) / 6.0) ** 0.6)

    greedy = gnmt.translate(SOURCE)
    beam = gnmt.translate_beam(SOURCE, beam_size=4)
    assert normalized(beam) >= normalized(greedy) - 1e-9


def test_beam_deterministic(gnmt):
    assert gnmt.translate_beam(SOURCE, beam_size=4) == \
        TinyGNMT().translate_beam(SOURCE, beam_size=4)


def test_max_length_respected(gnmt):
    tokens = gnmt.translate_beam(SOURCE, beam_size=3, max_length=4)
    assert len(tokens) <= 4


def test_invalid_beam_size(gnmt):
    with pytest.raises(ValueError):
        gnmt.translate_beam(SOURCE, beam_size=0)


def test_sequence_log_prob_is_negative(gnmt):
    tokens = gnmt.translate(SOURCE)
    assert gnmt.sequence_log_prob(SOURCE, tokens) < 0.0


def test_beam_cost_scales_with_width(gnmt):
    """More hypotheses -> more decoder steps (a real compute knob for
    the translation workload)."""
    import time

    start = time.perf_counter()
    gnmt.translate_beam(SOURCE, beam_size=1)
    narrow = time.perf_counter() - start
    start = time.perf_counter()
    gnmt.translate_beam(SOURCE, beam_size=8)
    wide = time.perf_counter() - start
    assert wide > narrow
