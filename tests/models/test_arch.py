"""Architecture definitions reproduce the Table I characteristics."""

import pytest

from repro.models.arch.gnmt import GNMTArch, build_gnmt
from repro.models.arch.mobilenet import build_mobilenet_v1, mobilenet_v1
from repro.models.arch.resnet import build_resnet, resnet50_v15
from repro.models.arch.ssd import (
    SSD_RESNET34_ANCHORS,
    build_ssd_mobilenet_v1,
    build_ssd_resnet34,
)

IMAGE = (224, 224, 3)


class TestResNet50:
    def test_parameters_match_table_i(self):
        # 25.6 M in the paper; exact torchvision figure is 25,557,032.
        assert resnet50_v15().param_count(IMAGE) == 25_557_032

    def test_gops_match_table_i(self):
        gops = 2 * resnet50_v15().macs(IMAGE) / 1e9
        assert gops == pytest.approx(8.2, rel=0.01)

    def test_v15_costs_more_than_v1(self):
        v1 = build_resnet(50, version="v1")
        v15 = build_resnet(50, version="v1.5")
        assert v15.macs(IMAGE) > v1.macs(IMAGE)
        # ...but has identical parameters (only the stride moved).
        assert v15.param_count(IMAGE) == v1.param_count(IMAGE)

    def test_resnet34_parameters(self):
        # torchvision: 21,797,672.
        assert build_resnet(34).param_count(IMAGE) == 21_797_672

    def test_depth_scaling(self):
        p18 = build_resnet(18).param_count(IMAGE)
        p34 = build_resnet(34).param_count(IMAGE)
        p50 = build_resnet(50).param_count(IMAGE)
        assert p18 < p34 < p50

    def test_unsupported_depth_rejected(self):
        with pytest.raises(ValueError):
            build_resnet(42)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            build_resnet(50, version="v3")

    def test_truncated_backbone_has_fewer_stages(self):
        full = build_resnet(34, include_top=False)
        trunk = build_resnet(34, include_top=False, stages=3)
        assert trunk.param_count(IMAGE) < full.param_count(IMAGE)

    def test_classifier_output_shape(self):
        assert resnet50_v15().output_shape(IMAGE) == (1000,)


class TestMobileNet:
    def test_parameters_match_table_i(self):
        # 4.2 M in the paper; the canonical figure is 4,231,976.
        assert mobilenet_v1().param_count(IMAGE) == 4_231_976

    def test_gops_match_table_i(self):
        gops = 2 * mobilenet_v1().macs(IMAGE) / 1e9
        assert gops == pytest.approx(1.138, rel=0.005)

    def test_reduction_versus_resnet(self):
        # Paper: 6.1x fewer parameters, 6.8x fewer operations.
        r50 = resnet50_v15()
        mn = mobilenet_v1()
        assert r50.param_count(IMAGE) / mn.param_count(IMAGE) == pytest.approx(6.1, abs=0.2)
        assert r50.macs(IMAGE) / mn.macs(IMAGE) == pytest.approx(7.2, abs=0.5)

    def test_width_multiplier_scales_cost(self):
        half = build_mobilenet_v1(width_multiplier=0.5)
        full = build_mobilenet_v1(width_multiplier=1.0)
        assert half.macs(IMAGE) < 0.4 * full.macs(IMAGE)
        assert half.param_count(IMAGE) < full.param_count(IMAGE)

    def test_invalid_block_count_rejected(self):
        with pytest.raises(ValueError):
            build_mobilenet_v1(num_blocks=0)


class TestSSDMobileNet:
    SHAPE = (300, 300, 3)

    def test_parameters_match_table_i(self):
        params = build_ssd_mobilenet_v1().param_count(self.SHAPE)
        assert params == pytest.approx(6.91e6, rel=0.05)

    def test_gops_match_table_i(self):
        gops = 2 * build_ssd_mobilenet_v1().macs(self.SHAPE) / 1e9
        assert gops == pytest.approx(2.47, rel=0.05)

    def test_feature_map_ladder(self):
        fms = [s[:2] for s in build_ssd_mobilenet_v1().feature_shapes(self.SHAPE)]
        assert fms == [(19, 19), (10, 10), (5, 5), (3, 3), (2, 2), (1, 1)]

    def test_output_shape_is_anchors_by_classes_plus_box(self):
        ssd = build_ssd_mobilenet_v1()
        anchors, per_anchor = ssd.output_shape(self.SHAPE)
        assert per_anchor == 91 + 4
        assert anchors == ssd.total_anchors(self.SHAPE)


class TestSSDResNet34:
    SHAPE = (1200, 1200, 3)

    def test_parameters_match_table_i(self):
        params = build_ssd_resnet34().param_count(self.SHAPE)
        assert params == pytest.approx(36.3e6, rel=0.10)

    def test_gops_match_table_i(self):
        gops = 2 * build_ssd_resnet34().macs(self.SHAPE) / 1e9
        assert gops == pytest.approx(433.0, rel=0.05)

    def test_feature_map_ladder_matches_mlperf(self):
        fms = [s[:2] for s in build_ssd_resnet34().feature_shapes(self.SHAPE)]
        assert fms == [(50, 50), (25, 25), (13, 13), (7, 7), (3, 3), (3, 3)]

    def test_total_anchor_count_matches_mlperf(self):
        # The real 1200x1200 model has exactly 15,130 anchors.
        assert build_ssd_resnet34().total_anchors(self.SHAPE) == 15_130

    def test_anchor_config(self):
        assert SSD_RESNET34_ANCHORS == (4, 6, 6, 6, 4, 4)

    def test_ops_ratio_versus_light_detector(self):
        # Section VII-D: SSD-R34 needs ~175x the operations per image.
        heavy = build_ssd_resnet34().macs(self.SHAPE)
        light = build_ssd_mobilenet_v1().macs((300, 300, 3))
        assert heavy / light == pytest.approx(175.0, rel=0.06)

    def test_mismatched_anchor_spec_rejected(self):
        from repro.models.arch.ssd import SSDArch
        from repro.models.graph import Sequential
        with pytest.raises(ValueError):
            SSDArch([Sequential([])], anchors_per_cell=(2, 2), num_classes=3)


class TestGNMT:
    def test_parameters_match_table_i(self):
        assert build_gnmt().param_count() == pytest.approx(210e6, rel=0.05)

    def test_macs_scale_with_sequence_length(self):
        gnmt = build_gnmt()
        short = gnmt.macs(src_len=10, tgt_len=10)
        long = gnmt.macs(src_len=40, tgt_len=40)
        assert long > 3.5 * short

    def test_encoder_layer_widths(self):
        gnmt = build_gnmt()
        widths = gnmt._encoder_input_widths()
        assert widths[0] == 1024          # embedding
        assert widths[1] == 2048          # bidirectional concat
        assert all(w == 1024 for w in widths[2:])

    def test_decoder_gets_attention_context(self):
        gnmt = build_gnmt()
        widths = gnmt._decoder_input_widths()
        assert widths[0] == 1024
        assert all(w == 2048 for w in widths[1:])

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            GNMTArch(encoder_layers=1)

    def test_gops_positive(self):
        assert build_gnmt().gops() > 1.0
