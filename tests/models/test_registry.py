"""The Table I model registry."""

import pytest

from repro.core.config import Task
from repro.models.registry import all_models, model_info


def test_registry_covers_all_tasks():
    assert {info.task for info in all_models()} == set(Task)


def test_row_order_matches_table_i():
    names = [info.display_name for info in all_models()]
    assert names == ["ResNet-50 v1.5", "MobileNet-v1 224", "SSD-ResNet-34",
                     "SSD-MobileNet-v1", "GNMT"]


def test_quality_targets():
    resnet = model_info(Task.IMAGE_CLASSIFICATION_HEAVY)
    # 99% of 76.456 = 75.69, the paper's worked example.
    assert resnet.quality_target == pytest.approx(75.69, abs=0.01)
    mobilenet = model_info(Task.IMAGE_CLASSIFICATION_LIGHT)
    assert mobilenet.quality_target_factor == 0.98


def test_gnmt_has_no_published_gops():
    assert model_info(Task.MACHINE_TRANSLATION).gops_per_input is None


def test_builders_produce_accountable_models():
    for info in all_models():
        arch = info.build_arch()
        if info.task is Task.MACHINE_TRANSLATION:
            params = arch.param_count()
        else:
            params = arch.param_count(info.input_shape)
        assert params == pytest.approx(info.parameters, rel=0.11)


def test_datasets_named():
    assert "ImageNet" in model_info(Task.IMAGE_CLASSIFICATION_HEAVY).dataset
    assert "COCO" in model_info(Task.OBJECT_DETECTION_HEAVY).dataset
    assert "WMT16" in model_info(Task.MACHINE_TRANSLATION).dataset
