"""The Figure 1 full-size model family."""

import pytest

from repro.models.family import (
    MODEL_FAMILY,
    family_points,
    pareto_frontier,
)


@pytest.fixture(scope="module")
def points():
    return family_points()


def test_family_size(points):
    assert len(points) == len(MODEL_FAMILY) == 11


def test_complexity_varies_dramatically(points):
    """Figure 1: ~50x (and more) spread in GOPs across the family."""
    gops = [g for _n, g, _a in points]
    assert max(gops) / min(gops) > 50


def test_accuracy_spans_a_wide_band(points):
    accs = [a for _n, _g, a in points]
    assert max(accs) - min(accs) > 25


def test_small_accuracy_deltas_cost_5_to_10x(points):
    """'Even a small accuracy change (e.g., a few percent) can
    drastically alter the computational requirements (e.g., by 5-10x).'"""
    found = False
    for name_a, gops_a, acc_a in points:
        for name_b, gops_b, acc_b in points:
            if name_a == name_b:
                continue
            if abs(acc_a - acc_b) <= 3.0 and gops_a / gops_b >= 5.0:
                found = True
    assert found


def test_pareto_frontier_is_nontrivial(points):
    frontier = pareto_frontier(points)
    # No single optimum; several members are non-dominated.
    assert 3 <= len(frontier) < len(points)
    assert "ResNet-152" in frontier        # accuracy extreme
    assert "MobileNet-v1-0.25" in frontier  # compute extreme


def test_some_members_are_dominated(points):
    """MobileNet-v2 made v1-1.0 and ResNet-18 non-frontier points."""
    frontier = set(pareto_frontier(points))
    assert "ResNet-18" not in frontier
    assert "MobileNet-v1-1.0" not in frontier


def test_parameters_available_for_all(points):
    for member in MODEL_FAMILY:
        assert member.parameters() > 1e5
