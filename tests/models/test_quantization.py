"""Numerical formats and the quantization flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.graph import BatchNorm, Conv2D, Dense, Sequential
from repro.models.quantization import (
    NumericFormat,
    QuantizationSpec,
    calibrate_clip_percentile,
    iter_layers,
    quantize_model,
    quantize_tensor,
)


def spec(fmt, **kwargs):
    return QuantizationSpec(fmt=fmt, **kwargs)


class TestIntegerFormats:
    def test_fp32_is_identity(self):
        x = np.random.default_rng(0).normal(size=(8, 8)).astype(np.float32)
        assert np.array_equal(quantize_tensor(x, spec(NumericFormat.FP32)), x)

    def test_int8_error_bounded_by_step(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=1000).astype(np.float32)
        q = quantize_tensor(x, spec(NumericFormat.INT8))
        step = (x.max() - x.min()) / 255
        assert np.max(np.abs(q - x)) <= step * 0.51

    def test_int4_much_coarser_than_int8(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=1000).astype(np.float32)
        err8 = np.abs(quantize_tensor(x, spec(NumericFormat.INT8)) - x).mean()
        err4 = np.abs(quantize_tensor(x, spec(NumericFormat.INT4)) - x).mean()
        assert err4 > 5 * err8

    def test_grid_size_respected(self):
        x = np.linspace(-1, 1, 10_000).astype(np.float32)
        q = quantize_tensor(x, spec(NumericFormat.INT4))
        assert len(np.unique(q)) <= 16
        q8 = quantize_tensor(x, spec(NumericFormat.UINT8))
        assert len(np.unique(q8)) <= 256

    def test_zero_is_exactly_representable(self):
        # Affine quantization must map 0.0 to itself (zero-point rule).
        x = np.array([-3.0, 0.0, 10.0], dtype=np.float32)
        for fmt in (NumericFormat.INT8, NumericFormat.UINT8,
                    NumericFormat.INT4, NumericFormat.INT16):
            q = quantize_tensor(x, spec(fmt))
            assert q[1] == 0.0, fmt

    def test_per_channel_beats_per_tensor_on_scaled_channels(self):
        rng = np.random.default_rng(3)
        base = rng.uniform(-1, 1, size=(64, 4)).astype(np.float32)
        scales = np.array([1.0, 0.1, 0.01, 0.001], dtype=np.float32)
        x = base * scales
        pt = quantize_tensor(x, spec(NumericFormat.INT8))
        pc = quantize_tensor(x, spec(NumericFormat.INT8, per_channel=True))
        err_pt = np.abs(pt - x)[:, 3].mean()
        err_pc = np.abs(pc - x)[:, 3].mean()
        assert err_pc < err_pt / 10

    def test_clip_percentile_tightens_range(self):
        x = np.concatenate([
            np.random.default_rng(4).uniform(-1, 1, 10_000),
            [100.0],   # one massive outlier
        ]).astype(np.float32)
        full = quantize_tensor(x, spec(NumericFormat.INT8))
        clipped = quantize_tensor(
            x, spec(NumericFormat.INT8, clip_percentile=99.9))
        body = slice(0, 10_000)
        assert np.abs(clipped[body] - x[body]).mean() < \
            np.abs(full[body] - x[body]).mean() / 5

    def test_bad_clip_percentile_rejected(self):
        with pytest.raises(ValueError):
            QuantizationSpec(NumericFormat.INT8, clip_percentile=40.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100, width=32),
                    min_size=2, max_size=200))
    @settings(max_examples=100)
    def test_quantized_values_within_clip_range(self, values):
        x = np.array(values, dtype=np.float32)
        q = quantize_tensor(x, spec(NumericFormat.INT8))
        lo = min(x.min(), 0.0)
        hi = max(x.max(), 0.0)
        span = (hi - lo) or 1e-12
        assert q.min() >= lo - 0.01 * span
        assert q.max() <= hi + 0.01 * span


class TestFloatFormats:
    def test_fp16_matches_numpy_half(self):
        x = np.random.default_rng(5).normal(size=100).astype(np.float32)
        q = quantize_tensor(x, spec(NumericFormat.FP16))
        assert np.array_equal(q, x.astype(np.float16).astype(np.float32))

    def test_bf16_keeps_exponent_loses_mantissa(self):
        x = np.array([1e30, 1e-30, 1.000001], dtype=np.float32)
        q = quantize_tensor(x, spec(NumericFormat.BF16))
        # Huge dynamic range preserved...
        assert q[0] == pytest.approx(1e30, rel=0.01)
        assert q[1] == pytest.approx(1e-30, rel=0.01)
        # ...but only ~2 decimal digits of mantissa.
        assert q[2] == pytest.approx(1.0, abs=0.01)

    def test_fp11_coarse_mantissa(self):
        x = np.float32(1.0 + 1 / 64.0)   # needs 6 mantissa bits
        q = quantize_tensor(np.array([x]), spec(NumericFormat.FP11))[0]
        assert q in (1.0, 1.03125)       # rounded to the 5-bit grid

    def test_fp11_clamps_large_values(self):
        x = np.array([1e9], dtype=np.float32)
        q = quantize_tensor(x, spec(NumericFormat.FP11))
        assert np.isfinite(q[0])
        assert q[0] < 1e6

    def test_bits_property(self):
        assert NumericFormat.FP11.bits == 11
        assert NumericFormat.INT4.bits == 4
        assert not NumericFormat.BF16.is_integer
        assert NumericFormat.UINT16.is_integer


class TestModelQuantization:
    def _model(self):
        net = Sequential([
            Conv2D(3, 4, name="conv"),
            BatchNorm(name="bn"),
            Dense(2, name="fc"),
        ])
        net.initialize((8, 8, 1), np.random.default_rng(0))
        return net

    def test_batchnorm_parameters_skipped(self):
        net = self._model()
        before = {k: v.copy() for k, v in net.children[1].params.items()}
        quantize_model(net, spec(NumericFormat.INT4))
        for key, value in net.children[1].params.items():
            assert np.array_equal(value, before[key]), key

    def test_conv_and_dense_quantized(self):
        net = self._model()
        original = net.children[0].params["weights"].copy()
        count = quantize_model(net, spec(NumericFormat.INT4))
        assert count == 4   # conv w+b, dense w+b
        assert not np.array_equal(net.children[0].params["weights"], original)

    def test_iter_layers_covers_nested_graphs(self):
        from repro.models.graph import Residual
        inner = Sequential([Conv2D(3, 4, use_bias=False)])
        net = Sequential([Residual(inner), Dense(2)])
        assert len(list(iter_layers(net))) == 2

    def test_iter_layers_covers_ssd(self):
        from repro.models.arch.ssd import build_ssd_mobilenet_v1
        ssd = build_ssd_mobilenet_v1()
        layers = list(iter_layers(ssd))
        # stages' leaves plus 12 heads.
        assert len(layers) > 50


class TestCalibrationSearch:
    def test_picks_the_best_percentile(self):
        # Quality peaks at 99.9 in this synthetic objective.
        def evaluate(spec_):
            return -abs(spec_.clip_percentile - 99.9)

        best, quality = calibrate_clip_percentile(
            evaluate, NumericFormat.INT8,
            candidates=(100.0, 99.99, 99.9, 99.0),
        )
        assert best.clip_percentile == 99.9
        assert quality == 0.0

    def test_spec_fields_propagated(self):
        best, _ = calibrate_clip_percentile(
            lambda s: 1.0, NumericFormat.INT4, per_channel=True,
            candidates=(100.0,),
        )
        assert best.fmt is NumericFormat.INT4
        assert best.per_channel
