"""Runnable reference models: accuracy levels, costs, quantized copies."""

import numpy as np
import pytest

from repro.accuracy.bleu import corpus_bleu
from repro.models.quantization import NumericFormat, QuantizationSpec
from repro.models.runtime.anchors import (
    decode_boxes,
    single_map_anchors,
)
from repro.models.runtime.classifier import (
    build_glyph_classifier,
    evaluate_classifier,
)
from repro.models.runtime.detector import (
    build_glyph_detector,
    evaluate_detector,
)
from repro.models.runtime.translator import (
    build_cipher_translator,
    evaluate_translator,
)

EVAL = range(64, 264)


class TestClassifier:
    def test_heavy_accuracy_high(self, imagenet):
        model = build_glyph_classifier(imagenet, "heavy")
        assert evaluate_classifier(model, imagenet, EVAL) > 90.0

    def test_light_accuracy_lower_but_useful(self, imagenet):
        heavy = build_glyph_classifier(imagenet, "heavy")
        light = build_glyph_classifier(imagenet, "light")
        heavy_acc = evaluate_classifier(heavy, imagenet, EVAL)
        light_acc = evaluate_classifier(light, imagenet, EVAL)
        assert 60.0 < light_acc < heavy_acc

    def test_light_is_much_cheaper(self, imagenet):
        heavy = build_glyph_classifier(imagenet, "heavy")
        light = build_glyph_classifier(imagenet, "light")
        assert heavy.macs() > 10 * light.macs()

    def test_unknown_variant_rejected(self, imagenet):
        with pytest.raises(ValueError):
            build_glyph_classifier(imagenet, "medium")

    def test_predict_shapes(self, imagenet):
        model = build_glyph_classifier(imagenet, "heavy")
        batch = np.stack([imagenet.get_sample(i) for i in range(4)])
        assert model.predict(batch).shape == (4,)
        assert isinstance(model.predict_one(imagenet.get_sample(0)), int)

    def test_quantized_copy_leaves_original_intact(self, imagenet):
        model = build_glyph_classifier(imagenet, "light")
        original = {
            name: value.copy() for name, value in
            model.graph.named_parameters()
        }
        model.quantized(QuantizationSpec(NumericFormat.INT4))
        for name, value in model.graph.named_parameters():
            assert np.array_equal(value, original[name]), name

    def test_int8_per_tensor_breaks_light_model(self, imagenet):
        """The Section III-B MobileNet quantization story."""
        light = build_glyph_classifier(imagenet, "light")
        fp32 = evaluate_classifier(light, imagenet, EVAL)
        per_tensor = light.quantized(QuantizationSpec(NumericFormat.INT8))
        per_channel = light.quantized(
            QuantizationSpec(NumericFormat.INT8, per_channel=True))
        pt_acc = evaluate_classifier(per_tensor, imagenet, EVAL)
        pc_acc = evaluate_classifier(per_channel, imagenet, EVAL)
        assert pt_acc < 0.7 * fp32          # per-tensor collapses
        assert pc_acc > 0.95 * fp32         # per-channel rescues it

    def test_int8_harmless_for_heavy_model(self, imagenet):
        heavy = build_glyph_classifier(imagenet, "heavy")
        fp32 = evaluate_classifier(heavy, imagenet, EVAL)
        q = heavy.quantized(QuantizationSpec(NumericFormat.INT8))
        assert evaluate_classifier(q, imagenet, EVAL) >= 0.99 * fp32


class TestAnchors:
    def test_anchor_count_and_shape(self):
        anchors = single_map_anchors(48, kernel=12, stride=2, scales=(8, 12))
        # VALID padding: floor((48 - 12) / 2) + 1 = 19 cells per axis.
        assert anchors.shape == (19 * 19 * 2, 4)

    def test_anchor_boxes_have_requested_scales(self):
        anchors = single_map_anchors(48, kernel=12, stride=2, scales=(8, 12))
        heights = anchors[:, 2] - anchors[:, 0]
        assert set(np.unique(heights)) == {8.0, 12.0}

    def test_zero_offsets_decode_to_anchors(self):
        anchors = single_map_anchors(48, kernel=12, stride=4, scales=(8,))
        decoded = decode_boxes(anchors, np.zeros_like(anchors))
        assert np.allclose(decoded, anchors, atol=1e-5)

    def test_offset_moves_box_center(self):
        anchors = np.array([[0.0, 0.0, 10.0, 10.0]])
        offsets = np.array([[1.0, 0.0, 0.0, 0.0]])
        decoded = decode_boxes(anchors, offsets, variance=(0.1, 0.2))
        # ty=1 with variance 0.1 and h=10 -> center moves by 1.
        assert decoded[0, 0] == pytest.approx(1.0)
        assert decoded[0, 2] == pytest.approx(11.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decode_boxes(np.zeros((2, 4)), np.zeros((3, 4)))


class TestDetector:
    def test_heavy_map_reasonable(self, coco):
        model = build_glyph_detector(coco, "heavy")
        assert evaluate_detector(model, coco, range(32, 112)) > 0.25

    def test_light_cheaper_and_weaker(self, coco):
        heavy = build_glyph_detector(coco, "heavy")
        light = build_glyph_detector(coco, "light")
        assert light.macs() < heavy.macs() / 2
        h = evaluate_detector(heavy, coco, range(32, 112))
        l = evaluate_detector(light, coco, range(32, 112))
        assert l < h

    def test_detects_isolated_object(self, coco):
        """A clean single glyph must be found with the right class."""
        model = build_glyph_detector(coco, "heavy")
        image = np.zeros((coco.image_size, coco.image_size, 1),
                         dtype=np.float32)
        glyph = coco.glyphs[2]
        image[10:18, 20:28, 0] = glyph
        detections = model.predict_one(image)
        assert detections, "no detections on a clean image"
        best = detections[0]
        assert best.class_id == 3   # class ids are 1-based
        y1, x1, y2, x2 = best.box
        assert abs(y1 - 10) <= 2 and abs(x1 - 20) <= 2

    def test_with_nms_switches_algorithm(self, coco):
        model = build_glyph_detector(coco, "heavy")
        fast = model.with_nms("fast")
        assert fast.nms_algorithm == "fast"
        assert model.nms_algorithm == "regular"

    def test_unknown_variant_rejected(self, coco):
        with pytest.raises(ValueError):
            build_glyph_detector(coco, "tiny")

    def test_quantization_degrades_gracefully(self, coco):
        model = build_glyph_detector(coco, "heavy")
        fp32 = evaluate_detector(model, coco, range(32, 96))
        q = model.quantized(QuantizationSpec(NumericFormat.INT8))
        q_map = evaluate_detector(q, coco, range(32, 96))
        assert q_map > 0.8 * fp32


class TestTranslator:
    def test_clean_sentence_translates_exactly(self, wmt):
        model = build_cipher_translator(wmt)
        source = [5, 9, 12, 33]
        expected = wmt.ideal_translation(source)
        assert model.translate(source) == expected

    def test_corpus_bleu_tracks_ideal(self, wmt):
        model = build_cipher_translator(wmt)
        bleu = evaluate_translator(model, wmt, range(32, 192))
        hyp = [wmt.ideal_translation(wmt.get_sample(i)) for i in range(32, 192)]
        ref = [wmt.get_label(i) for i in range(32, 192)]
        ideal = corpus_bleu(hyp, ref)
        # The soft-attention model gives up a few points versus the
        # ideal cipher (synonym near-ties), but tracks it closely.
        assert ideal - 5.0 < bleu <= ideal + 0.5
        assert 50 < bleu < 100   # synonyms keep it below the ceiling

    def test_empty_source(self, wmt):
        model = build_cipher_translator(wmt)
        assert model.translate([]) == []

    def test_too_long_source_rejected(self, wmt):
        model = build_cipher_translator(wmt)
        with pytest.raises(ValueError):
            model.translate([5] * 1000)

    def test_macs_grow_superlinearly_with_length(self, wmt):
        # Attention is O(L^2); the projection term is O(L * V^2).
        model = build_cipher_translator(wmt)
        assert model.macs_per_sentence(20) > 2 * model.macs_per_sentence(10)

    def test_int8_keeps_quality_int4_dents_it(self, wmt):
        model = build_cipher_translator(wmt)
        fp32 = evaluate_translator(model, wmt, range(32, 192))
        int8 = model.quantized(QuantizationSpec(NumericFormat.INT8))
        int4 = model.quantized(QuantizationSpec(NumericFormat.INT4))
        assert evaluate_translator(int8, wmt, range(32, 192)) >= 0.99 * fp32
        assert evaluate_translator(int4, wmt, range(32, 192)) < fp32

    def test_quantized_copy_leaves_original_intact(self, wmt):
        model = build_cipher_translator(wmt)
        before = model.projection.params["weights"].copy()
        model.quantized(QuantizationSpec(NumericFormat.INT4))
        assert np.array_equal(model.projection.params["weights"], before)
