"""Backprop, SGD, QAT, and cross-layer equalization."""

import copy

import numpy as np
import pytest

from repro.datasets import SyntheticImageNet
from repro.models.graph import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    GlobalMaxPool,
    LSTMLayer,
    Sequential,
)
from repro.models.quantization import (
    NumericFormat,
    QuantizationSpec,
    cross_layer_equalization,
)
from repro.models.runtime.classifier import (
    build_glyph_classifier,
    evaluate_classifier,
)
from repro.models.training import (
    SGD,
    backward,
    col2im,
    forward_with_cache,
    numerical_gradient,
    softmax_cross_entropy,
    train_classifier,
    train_quantization_aware,
)
from repro.models import layers as F


def small_net(seed=0):
    net = Sequential([
        Conv2D(3, 6, stride=1), BatchNorm(), Activation("relu"),
        GlobalMaxPool(), Dense(4),
    ])
    net.initialize((8, 8, 2), np.random.default_rng(seed))
    return net


def batch(seed=0, n=5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 8, 8, 2)).astype(np.float32)
    y = rng.integers(0, 4, n)
    return x, y


class TestLoss:
    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.abs(grad).max() < 1e-6

    def test_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 5))
        _loss, grad = softmax_cross_entropy(logits, rng.integers(0, 5, 6))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(3), np.zeros(3, dtype=int))


class TestCol2Im:
    def test_adjoint_of_im2col(self):
        """<im2col(x), g> == <x, col2im(g)> (transpose identity)."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 6, 6, 3))
        cols = F.im2col(x, (3, 3), (2, 2))
        g = rng.normal(size=cols.shape)
        lhs = float((cols * g).sum())
        rhs = float((x * col2im(g, x.shape, (3, 3), (2, 2))).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestGradients:
    """Analytic gradients versus central differences."""

    def _check(self, net, param_layer_index, key, seed=0):
        x, y = batch(seed)

        def loss_fn(_arr):
            logits, _ = forward_with_cache(net, x)
            return softmax_cross_entropy(logits, y)[0]

        logits, caches = forward_with_cache(net, x)
        _loss, grad = softmax_cross_entropy(logits, y)
        grads = backward(net, grad, caches)
        array = net.children[param_layer_index].params[key]
        numeric = numerical_gradient(loss_fn, array, samples=8, seed=seed)
        mask = ~np.isnan(numeric)
        analytic = grads[param_layer_index][key]
        assert np.allclose(analytic[mask], numeric[mask], atol=5e-3), key

    def test_conv_weights(self):
        self._check(small_net(), 0, "weights")

    def test_conv_bias(self):
        self._check(small_net(), 0, "bias")

    def test_batchnorm_gamma_beta(self):
        net = small_net()
        self._check(net, 1, "gamma")
        self._check(net, 1, "beta")

    def test_dense_weights_and_bias(self):
        net = small_net()
        self._check(net, 4, "weights")
        self._check(net, 4, "bias")

    def test_depthwise_and_avgpool_path(self):
        net = Sequential([
            DepthwiseConv2D(3), Activation("relu"), AvgPool2D(2),
            GlobalAvgPool(), Dense(4),
        ])
        net.initialize((8, 8, 3), np.random.default_rng(2))
        x = np.random.default_rng(3).normal(size=(4, 8, 8, 3)).astype(np.float32)
        y = np.array([0, 1, 2, 3])

        def loss_fn(_arr):
            logits, _ = forward_with_cache(net, x)
            return softmax_cross_entropy(logits, y)[0]

        logits, caches = forward_with_cache(net, x)
        _loss, grad = softmax_cross_entropy(logits, y)
        grads = backward(net, grad, caches)
        weights = net.children[0].params["weights"]
        numeric = numerical_gradient(loss_fn, weights, samples=8)
        mask = ~np.isnan(numeric)
        assert np.allclose(grads[0]["weights"][mask], numeric[mask],
                           atol=5e-3)

    def test_unsupported_layer_raises(self):
        net = Sequential([LSTMLayer(4)])
        net.initialize((3, 2), np.random.default_rng(0))
        with pytest.raises(NotImplementedError):
            forward_with_cache(net, np.zeros((1, 3, 2), dtype=np.float32))

    def test_forward_with_cache_matches_plain_forward(self):
        net = small_net()
        x, _ = batch()
        cached, _ = forward_with_cache(net, x)
        assert np.allclose(cached, net.forward(x), atol=1e-5)


class TestTraining:
    def test_loss_decreases_on_learnable_problem(self):
        net = small_net()
        rng = np.random.default_rng(5)
        images = rng.normal(size=(64, 8, 8, 2)).astype(np.float32)
        labels = rng.integers(0, 4, 64)
        report = train_classifier(net, images, labels, epochs=25,
                                  batch_size=16,
                                  optimizer=SGD(learning_rate=0.02))
        assert report.final_loss < 0.5 * report.initial_loss

    def test_validation_errors(self):
        net = small_net()
        with pytest.raises(ValueError):
            train_classifier(net, np.zeros((2, 8, 8, 2)), np.zeros(3, int))
        with pytest.raises(ValueError):
            train_classifier(net, np.zeros((0, 8, 8, 2)),
                             np.zeros(0, dtype=int))

    def test_gradient_clipping_bounds_update(self):
        optimizer = SGD(learning_rate=1.0, momentum=0.0, clip_norm=1.0)
        net = Sequential([Dense(2, use_bias=False)])
        net.initialize((3,), np.random.default_rng(0))
        before = net.children[0].params["weights"].copy()
        huge = [{"weights": np.full((3, 2), 1e6)}]
        optimizer.step(net, huge)
        delta = np.linalg.norm(net.children[0].params["weights"] - before)
        assert delta <= 1.0 + 1e-6


class TestQuantizationAwareTraining:
    def test_qat_improves_quantized_accuracy(self):
        """The Section III-B recipe: fine-tuning with quantization in the
        loop produces quantization-friendly weights."""
        dataset = SyntheticImageNet(size=400)
        model = build_glyph_classifier(dataset, "heavy")
        spec = QuantizationSpec(NumericFormat.INT4)
        held_out = range(200, 400)
        naive = evaluate_classifier(model.quantized(spec), dataset, held_out)

        images = np.stack([dataset.get_sample(i) for i in range(200)])
        labels = np.array([dataset.get_label(i) for i in range(200)])
        tuned = copy.deepcopy(model)
        train_quantization_aware(
            tuned.graph, images, labels, spec, epochs=5, batch_size=32,
            optimizer=SGD(learning_rate=0.002))
        qat = evaluate_classifier(tuned.quantized(spec), dataset, held_out)
        assert qat > naive + 3.0

    def test_masters_stay_fp32(self):
        """After QAT the stored weights are NOT on the quantization grid
        (they are the FP32 masters)."""
        net = small_net()
        x, y = batch(n=16)
        spec = QuantizationSpec(NumericFormat.INT4)
        train_quantization_aware(net, x, y, spec, epochs=2, batch_size=8)
        weights = net.children[0].params["weights"]
        grid = np.unique(np.round(weights, 6))
        assert len(grid) > 16   # far more levels than INT4 allows


class TestCrossLayerEqualization:
    def test_rescues_the_light_model_at_int8(self):
        dataset = SyntheticImageNet(size=400)
        model = build_glyph_classifier(dataset, "light")
        spec = QuantizationSpec(NumericFormat.INT8)
        fp32 = evaluate_classifier(model, dataset)
        naive = evaluate_classifier(model.quantized(spec), dataset)

        equalized = copy.deepcopy(model)
        pairs = cross_layer_equalization(equalized.graph)
        assert pairs >= 1
        # FP32 behaviour is exactly preserved...
        assert evaluate_classifier(equalized, dataset) == pytest.approx(
            fp32, abs=0.6)
        # ...and per-tensor INT8 now works.
        rescued = evaluate_classifier(equalized.quantized(spec), dataset)
        assert naive < 0.6 * fp32
        assert rescued > 0.95 * fp32

    def test_balances_weight_ranges(self):
        dataset = SyntheticImageNet(size=50)
        model = build_glyph_classifier(dataset, "light")
        conv = model.graph.children[1]
        spread_before = (np.abs(conv.params["weights"]).max(axis=(0, 1, 2)))
        cross_layer_equalization(model.graph)
        spread_after = (np.abs(conv.params["weights"]).max(axis=(0, 1, 2)))
        ratio = lambda r: r.max() / r.min()
        assert ratio(spread_after) < ratio(spread_before) / 10

    def test_requires_sequential(self):
        with pytest.raises(TypeError):
            cross_layer_equalization(Dense(3))

    def test_relu6_blocks_equalization(self):
        """relu6 is not positively homogeneous: the pair is skipped."""
        net = Sequential([
            Conv2D(3, 4, use_bias=False), Activation("relu6"),
            GlobalMaxPool(), Dense(4),
        ])
        net.initialize((8, 8, 1), np.random.default_rng(0))
        assert cross_layer_equalization(net) == 0


class TestCLEFunctionPreservation:
    """Property: CLE is an exact FP32 reparameterization."""

    from hypothesis import given, settings as hyp_settings
    from hypothesis import strategies as st

    @given(seed=st.integers(min_value=0, max_value=10_000),
           channels=st.integers(min_value=2, max_value=12))
    @hyp_settings(max_examples=25, deadline=None)
    def test_outputs_identical_on_random_networks(self, seed, channels):
        rng = np.random.default_rng(seed)
        net = Sequential([
            Conv2D(3, channels), Activation("relu"), GlobalMaxPool(),
            Dense(5),
        ])
        net.initialize((10, 10, 2), rng)
        # Inject a wild per-channel scale imbalance.
        scales = 10.0 ** rng.uniform(-2, 2, channels)
        net.children[0].params["weights"] = (
            net.children[0].params["weights"] * scales).astype(np.float32)
        net.children[0].params["bias"] = (
            net.children[0].params["bias"] * scales).astype(np.float32)
        x = rng.normal(size=(3, 10, 10, 2)).astype(np.float32)
        before = net.forward(x)
        pairs = cross_layer_equalization(net)
        after = net.forward(x)
        assert pairs == 1
        scale = max(1.0, float(np.abs(before).max()))
        assert np.allclose(before, after, atol=1e-3 * scale)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @hyp_settings(max_examples=15, deadline=None)
    def test_equalization_is_idempotent_in_range_terms(self, seed):
        rng = np.random.default_rng(seed)
        net = Sequential([
            Conv2D(3, 6), Activation("relu"), GlobalMaxPool(), Dense(4),
        ])
        net.initialize((8, 8, 1), rng)
        cross_layer_equalization(net)
        w1 = net.children[0].params["weights"].copy()
        cross_layer_equalization(net)
        # Second pass changes (nearly) nothing: ranges already equal.
        assert np.allclose(w1, net.children[0].params["weights"],
                           rtol=1e-4, atol=1e-6)
