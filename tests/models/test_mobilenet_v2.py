"""MobileNet-v2: the Section III-A candidate that was not selected."""

import numpy as np
import pytest

from repro.models.arch.mobilenet import mobilenet_v1
from repro.models.arch.mobilenet_v2 import (
    INVERTED_RESIDUAL_SPECS,
    build_mobilenet_v2,
    inverted_residual,
    mobilenet_v2,
)
from repro.models.graph import Residual, Sequential

IMAGE = (224, 224, 3)


class TestAccounting:
    def test_parameters_match_canonical_figure(self):
        # torchvision mobilenet_v2: 3,504,872 parameters.
        assert mobilenet_v2().param_count(IMAGE) == 3_504_872

    def test_gops_match_canonical_figure(self):
        # ~300 MMACs -> 0.60 GOPs.
        gops = 2 * mobilenet_v2().macs(IMAGE) / 1e9
        assert gops == pytest.approx(0.60, rel=0.02)

    def test_v2_cheaper_than_v1(self):
        v1 = mobilenet_v1()
        v2 = mobilenet_v2()
        assert v2.macs(IMAGE) < 0.6 * v1.macs(IMAGE)
        assert v2.param_count(IMAGE) < v1.param_count(IMAGE)

    def test_classifier_output_shape(self):
        assert mobilenet_v2().output_shape(IMAGE) == (1000,)

    def test_width_multiplier_scales(self):
        half = build_mobilenet_v2(width_multiplier=0.5)
        assert half.macs(IMAGE) < 0.5 * mobilenet_v2().macs(IMAGE)

    def test_spec_table_matches_paper(self):
        assert INVERTED_RESIDUAL_SPECS[0] == (1, 16, 1, 1)
        assert INVERTED_RESIDUAL_SPECS[-1] == (6, 320, 1, 1)
        assert sum(n for _t, _c, n, _s in INVERTED_RESIDUAL_SPECS) == 17


class TestInvertedResiduals:
    def test_stride1_same_channels_gets_residual(self):
        block = inverted_residual(32, 6, 32, 1, "b")
        assert isinstance(block, Residual)
        # Linear bottleneck: no activation after the join.
        assert block.activation is None

    def test_stride2_or_channel_change_is_plain(self):
        assert isinstance(inverted_residual(32, 6, 64, 1, "b"), Sequential)
        assert isinstance(inverted_residual(32, 6, 32, 2, "b"), Sequential)

    def test_expansion_one_skips_expand_conv(self):
        no_expand = inverted_residual(32, 1, 16, 1, "b")
        expand = inverted_residual(32, 6, 16, 1, "b")
        assert no_expand.param_count((8, 8, 32)) < \
            expand.param_count((8, 8, 32))

    def test_executes(self):
        block = inverted_residual(8, 6, 8, 1, "b")
        block.initialize((8, 8, 8), np.random.default_rng(0))
        out = block.forward(np.ones((1, 8, 8, 8), dtype=np.float32))
        assert out.shape == (1, 8, 8, 8)

    def test_linear_bottleneck_passes_negative_values(self):
        """The defining v2 property: the join output is NOT rectified."""
        block = inverted_residual(4, 6, 4, 1, "b")
        block.initialize((4, 4, 4), np.random.default_rng(1))
        x = -np.ones((1, 4, 4, 4), dtype=np.float32)
        out = block.forward(x)
        assert (out < 0).any()
