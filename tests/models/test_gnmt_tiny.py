"""TinyGNMT: the executable LSTM encoder-decoder workload."""

import numpy as np
import pytest

from repro.datasets.wmt import EOS_ID
from repro.models.runtime.gnmt_tiny import TinyGNMT


@pytest.fixture(scope="module")
def gnmt():
    return TinyGNMT()


class TestEncoder:
    def test_memory_shape(self, gnmt):
        memory = gnmt.encode([5, 9, 12])
        assert memory.shape == (3, gnmt.hidden)

    def test_deterministic(self, gnmt):
        a = gnmt.encode([5, 9, 12])
        b = TinyGNMT().encode([5, 9, 12])
        assert np.allclose(a, b)

    def test_order_sensitivity(self, gnmt):
        """An RNN encoder is not a bag of words."""
        a = gnmt.encode([5, 9, 12])
        b = gnmt.encode([12, 9, 5])
        assert not np.allclose(a, b)

    def test_empty_source_rejected(self, gnmt):
        with pytest.raises(ValueError):
            gnmt.encode([])

    def test_states_bounded(self, gnmt):
        memory = gnmt.encode(list(range(3, 40)))
        assert np.all(np.abs(memory) < 10.0)


class TestDecoder:
    def test_translate_produces_tokens(self, gnmt):
        out = gnmt.translate([5, 9, 12, 33])
        assert isinstance(out, list)
        assert all(0 <= t < gnmt.vocab_size for t in out)
        assert EOS_ID not in out

    def test_deterministic(self, gnmt):
        assert gnmt.translate([5, 9, 12]) == TinyGNMT().translate([5, 9, 12])

    def test_max_length_respected(self, gnmt):
        out = gnmt.translate([5, 9, 12], max_length=3)
        assert len(out) <= 3

    def test_default_budget_scales_with_source(self, gnmt):
        out = gnmt.translate([5] * 6)
        assert len(out) <= 2 * 6 + 4

    def test_input_sensitivity(self, gnmt):
        """Different sources produce different translations (the network
        is actually reading its input, not emitting a constant)."""
        outputs = {tuple(gnmt.translate([t, t + 1, t + 2]))
                   for t in range(5, 25, 4)}
        assert len(outputs) > 1


class TestAccounting:
    def test_macs_grow_with_both_lengths(self, gnmt):
        base = gnmt.macs_per_sentence(5, 5)
        assert gnmt.macs_per_sentence(10, 5) > base
        assert gnmt.macs_per_sentence(5, 10) > base

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            TinyGNMT(encoder_layers=1)
