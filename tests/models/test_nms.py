"""NMS: IoU properties, greedy vs fast behaviour."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.nms import (
    Detection,
    box_area,
    fast_nms,
    iou_matrix,
    multiclass_nms,
    nms,
)


def boxes_strategy(n):
    coord = st.floats(min_value=0.0, max_value=50.0)
    def build(vals):
        arr = np.array(vals, dtype=np.float64).reshape(-1, 4)
        y1 = np.minimum(arr[:, 0], arr[:, 2])
        y2 = np.maximum(arr[:, 0], arr[:, 2]) + 1.0
        x1 = np.minimum(arr[:, 1], arr[:, 3])
        x2 = np.maximum(arr[:, 1], arr[:, 3]) + 1.0
        return np.stack([y1, x1, y2, x2], axis=1)
    return st.lists(coord, min_size=4 * n, max_size=4 * n).map(build)


class TestIoU:
    def test_identical_boxes(self):
        a = np.array([[0, 0, 10, 10]], dtype=float)
        assert iou_matrix(a, a)[0, 0] == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = np.array([[0, 0, 10, 10]], dtype=float)
        b = np.array([[20, 20, 30, 30]], dtype=float)
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0, 0, 10, 10]], dtype=float)
        b = np.array([[0, 5, 10, 15]], dtype=float)
        # intersection 50, union 150.
        assert iou_matrix(a, b)[0, 0] == pytest.approx(1 / 3)

    def test_degenerate_box_zero_iou(self):
        a = np.array([[5, 5, 5, 5]], dtype=float)
        b = np.array([[0, 0, 10, 10]], dtype=float)
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_area(self):
        boxes = np.array([[0, 0, 2, 3], [1, 1, 1, 5]], dtype=float)
        assert box_area(boxes).tolist() == [6.0, 0.0]

    @given(boxes_strategy(4))
    def test_iou_matrix_properties(self, boxes):
        m = iou_matrix(boxes, boxes)
        assert np.allclose(m, m.T, atol=1e-9)
        assert np.allclose(np.diag(m), 1.0)
        assert (m >= 0).all() and (m <= 1 + 1e-9).all()


class TestGreedyNMS:
    def test_keeps_highest_of_overlapping_pair(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11]], dtype=float)
        scores = np.array([0.6, 0.9])
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert keep.tolist() == [1]

    def test_keeps_disjoint_boxes(self):
        boxes = np.array([[0, 0, 10, 10], [50, 50, 60, 60]], dtype=float)
        scores = np.array([0.6, 0.9])
        keep = nms(boxes, scores, iou_threshold=0.5)
        assert sorted(keep.tolist()) == [0, 1]

    def test_result_in_score_order(self):
        boxes = np.array([[0, 0, 5, 5], [20, 20, 25, 25], [40, 40, 45, 45]],
                         dtype=float)
        scores = np.array([0.2, 0.9, 0.5])
        assert nms(boxes, scores).tolist() == [1, 2, 0]

    def test_max_output_truncates(self):
        boxes = np.array([[i * 20, 0, i * 20 + 5, 5] for i in range(5)],
                         dtype=float)
        scores = np.linspace(0.9, 0.5, 5)
        assert len(nms(boxes, scores, max_output=2)) == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nms(np.zeros((2, 4)), np.zeros(3))

    def test_suppressed_box_cannot_suppress(self):
        """The defining difference from fast NMS: chain A > B > C where
        A suppresses B and B overlaps C but A does not: greedy keeps C."""
        boxes = np.array([
            [0, 0, 10, 10],      # A
            [0, 5, 10, 15],      # B overlaps A and C (IoU 1/3 each)
            [0, 10, 10, 20],     # C overlaps B only
        ], dtype=float)
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms(boxes, scores, iou_threshold=0.25)
        assert sorted(keep.tolist()) == [0, 2]


class TestFastNMS:
    def test_over_suppresses_the_chain(self):
        boxes = np.array([
            [0, 0, 10, 10],
            [0, 5, 10, 15],
            [0, 10, 10, 20],
        ], dtype=float)
        scores = np.array([0.9, 0.8, 0.7])
        keep = fast_nms(boxes, scores, iou_threshold=0.25)
        # B (suppressed) still kills C: only A survives.
        assert keep.tolist() == [0]

    def test_agrees_with_greedy_on_disjoint_boxes(self):
        boxes = np.array([[i * 30, 0, i * 30 + 5, 5] for i in range(4)],
                         dtype=float)
        scores = np.linspace(0.9, 0.6, 4)
        assert sorted(fast_nms(boxes, scores).tolist()) == \
            sorted(nms(boxes, scores).tolist())

    @given(boxes_strategy(6))
    def test_fast_never_keeps_more_than_greedy(self, boxes):
        scores = np.linspace(0.9, 0.4, len(boxes))
        fast_kept = set(fast_nms(boxes, scores, iou_threshold=0.5).tolist())
        greedy_kept = set(nms(boxes, scores, iou_threshold=0.5).tolist())
        assert fast_kept <= greedy_kept

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fast_nms(np.zeros((2, 4)), np.zeros(3))


class TestMulticlassNMS:
    def _scores(self, rows):
        return np.array(rows, dtype=float)

    def test_background_column_skipped(self):
        boxes = np.array([[0, 0, 10, 10]], dtype=float)
        scores = self._scores([[0.9, 0.1]])   # background wins
        detections = multiclass_nms(boxes, scores, score_threshold=0.05)
        assert all(d.class_id != 0 for d in detections)

    def test_per_class_suppression_is_independent(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11]], dtype=float)
        scores = self._scores([[0.0, 0.9, 0.0], [0.0, 0.0, 0.8]])
        detections = multiclass_nms(boxes, scores, score_threshold=0.5)
        # Same location, different classes: both survive.
        assert {d.class_id for d in detections} == {1, 2}

    def test_score_threshold_filters(self):
        boxes = np.array([[0, 0, 10, 10]], dtype=float)
        scores = self._scores([[0.0, 0.04]])
        assert multiclass_nms(boxes, scores, score_threshold=0.05) == []

    def test_sorted_by_score_and_capped(self):
        boxes = np.array([[i * 30, 0, i * 30 + 5, 5] for i in range(4)],
                         dtype=float)
        scores = np.zeros((4, 2))
        scores[:, 1] = [0.3, 0.9, 0.6, 0.8]
        detections = multiclass_nms(boxes, scores, score_threshold=0.1,
                                    max_total=3)
        assert len(detections) == 3
        assert [d.score for d in detections] == sorted(
            (d.score for d in detections), reverse=True)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            multiclass_nms(np.zeros((1, 4)), np.zeros((1, 2)),
                           algorithm="medium")

    def test_detection_fields(self):
        boxes = np.array([[1, 2, 3, 4]], dtype=float)
        scores = self._scores([[0.0, 0.7]])
        det = multiclass_nms(boxes, scores, score_threshold=0.1)[0]
        assert isinstance(det, Detection)
        assert det.box == (1.0, 2.0, 3.0, 4.0)
        assert det.class_id == 1
        assert det.score == pytest.approx(0.7)
