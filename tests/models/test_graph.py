"""Layer graph: shape inference, accounting, execution."""

import numpy as np
import pytest

from repro.models.graph import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Embedding,
    Flatten,
    GlobalAvgPool,
    GlobalMaxPool,
    LSTMLayer,
    MaxPool2D,
    Residual,
    Sequential,
    Softmax,
)


class TestShapes:
    def test_conv_shapes(self):
        conv = Conv2D(3, 16, stride=2, padding="same")
        assert conv.output_shape((224, 224, 3)) == (112, 112, 16)

    def test_pool_and_flatten(self):
        assert MaxPool2D(2).output_shape((8, 8, 4)) == (4, 4, 4)
        assert AvgPool2D(2).output_shape((8, 8, 4)) == (4, 4, 4)
        assert Flatten().output_shape((4, 4, 4)) == (64,)
        assert GlobalAvgPool().output_shape((7, 7, 512)) == (512,)
        assert GlobalMaxPool().output_shape((7, 7, 512)) == (512,)

    def test_sequential_composes(self):
        net = Sequential([
            Conv2D(3, 8, stride=2), Activation("relu"), GlobalAvgPool(),
            Dense(10),
        ])
        assert net.output_shape((32, 32, 1)) == (10,)

    def test_lstm_shapes(self):
        assert LSTMLayer(64).output_shape((10, 32)) == (10, 64)
        assert LSTMLayer(64, bidirectional=True).output_shape((10, 32)) == (10, 128)

    def test_embedding_shape(self):
        assert Embedding(100, 16).output_shape((7,)) == (7, 16)


class TestParamCounting:
    def test_conv_params(self):
        assert Conv2D(3, 16, use_bias=False).param_count((8, 8, 4)) == 3 * 3 * 4 * 16
        assert Conv2D(3, 16, use_bias=True).param_count((8, 8, 4)) == 3 * 3 * 4 * 16 + 16

    def test_depthwise_params(self):
        assert DepthwiseConv2D(3, use_bias=False).param_count((8, 8, 4)) == 36

    def test_dense_params(self):
        assert Dense(10).param_count((20,)) == 210

    def test_batchnorm_counts_learnable_only(self):
        assert BatchNorm().param_count((8, 8, 32)) == 64

    def test_lstm_params_standard_formula(self):
        # 4 * H * (I + H) + 4 * H
        assert LSTMLayer(8).param_count((5, 4)) == 4 * 8 * (4 + 8) + 4 * 8
        assert LSTMLayer(8, bidirectional=True).param_count((5, 4)) == \
            2 * (4 * 8 * (4 + 8) + 4 * 8)

    def test_embedding_params(self):
        assert Embedding(100, 16).param_count(()) == 1600


class TestMacCounting:
    def test_conv_macs(self):
        conv = Conv2D(3, 16, stride=1, padding="same", use_bias=False)
        # 3*3*4*16 MACs per output position, 8*8 positions.
        assert conv.macs((8, 8, 4)) == 9 * 4 * 16 * 64

    def test_dense_macs(self):
        assert Dense(10).macs((20,)) == 200

    def test_stride_reduces_macs_quadratically(self):
        conv1 = Conv2D(3, 16, stride=1)
        conv2 = Conv2D(3, 16, stride=2)
        assert conv1.macs((64, 64, 4)) == 4 * conv2.macs((64, 64, 4))

    def test_lstm_macs_per_timestep(self):
        assert LSTMLayer(8).macs((5, 4)) == 4 * 8 * (4 + 8)


class TestExecution:
    def test_initialize_then_forward_matches_shape(self):
        net = Sequential([
            Conv2D(3, 8, stride=2), BatchNorm(), Activation("relu"),
            GlobalAvgPool(), Dense(5), Softmax(),
        ])
        rng = np.random.default_rng(0)
        out_shape = net.initialize((16, 16, 2), rng)
        assert out_shape == (5,)
        out = net.forward(np.zeros((3, 16, 16, 2), dtype=np.float32))
        assert out.shape == (3, 5)
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-6)

    def test_forward_without_initialize_raises(self):
        conv = Conv2D(3, 8)
        with pytest.raises(KeyError):
            conv.forward(np.zeros((1, 4, 4, 1), dtype=np.float32))

    def test_lstm_forward_bidirectional_concats(self):
        layer = LSTMLayer(6, bidirectional=True)
        layer.initialize((4, 3), np.random.default_rng(0))
        out = layer.forward(np.ones((2, 4, 3), dtype=np.float32))
        assert out.shape == (2, 4, 12)


class TestResidual:
    def _block(self, in_channels=4, out_channels=4, stride=1):
        body = Sequential([
            Conv2D(3, out_channels, stride=stride, use_bias=False),
            BatchNorm(),
        ])
        shortcut = None
        if stride != 1 or in_channels != out_channels:
            shortcut = Sequential([
                Conv2D(1, out_channels, stride=stride, use_bias=False),
                BatchNorm(),
            ])
        return Residual(body, shortcut)

    def test_identity_shortcut_shape(self):
        block = self._block()
        assert block.output_shape((8, 8, 4)) == (8, 8, 4)

    def test_projection_shortcut_shape(self):
        block = self._block(in_channels=4, out_channels=8, stride=2)
        assert block.output_shape((8, 8, 4)) == (4, 4, 8)

    def test_mismatched_shapes_raise(self):
        body = Sequential([Conv2D(3, 8, stride=2, use_bias=False)])
        block = Residual(body)   # identity shortcut cannot match stride 2
        with pytest.raises(ValueError):
            block.output_shape((8, 8, 4))

    def test_param_count_includes_shortcut(self):
        with_proj = self._block(4, 8, 2)
        without = self._block(4, 4, 1)
        assert with_proj.param_count((8, 8, 4)) > without.param_count((8, 8, 4))

    def test_zero_body_passes_input_through_relu(self):
        block = self._block()
        block.initialize((4, 4, 4), np.random.default_rng(0))
        # Zero the body conv: residual output = relu(x).
        block.body.children[0].params["weights"][:] = 0.0
        x = np.random.default_rng(1).normal(size=(1, 4, 4, 4)).astype(np.float32)
        out = block.forward(x)
        assert np.allclose(out, np.maximum(x, 0.0), atol=1e-6)


class TestParameterPlumbing:
    def test_named_parameters_walk_nested_structure(self):
        net = Sequential([
            Conv2D(3, 4, name="c1"),
            Residual(Sequential([Conv2D(3, 4, name="c2", use_bias=False)])),
            Dense(2, name="fc"),
        ])
        net.initialize((8, 8, 1), np.random.default_rng(0))
        names = [name for name, _ in net.named_parameters()]
        assert any("c1" in n for n in names)
        assert any("c2" in n for n in names)
        assert any("fc" in n for n in names)

    def test_set_parameter_validates(self):
        dense = Dense(4)
        dense.initialize((8,), np.random.default_rng(0))
        with pytest.raises(KeyError):
            dense.set_parameter("nope", np.zeros(1))
        with pytest.raises(ValueError):
            dense.set_parameter("weights", np.zeros((2, 2)))

    def test_layer_report(self):
        net = Sequential([Conv2D(3, 4, use_bias=False), Dense(2)])
        report = net.layer_report((4, 4, 4))
        assert len(report) == 2
        name, shape, params, macs = report[0]
        assert shape == (4, 4, 4)
        assert params == 3 * 3 * 4 * 4
