"""Numpy kernels vs naive references and analytic properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import layers as F


def naive_conv2d(x, w, stride, pad_before_h, pad_before_w):
    """Straightforward nested-loop convolution for cross-checking."""
    n, h, wd, cin = x.shape
    kh, kw, _, cout = w.shape
    padded = np.zeros((n, h + kh, wd + kw, cin), dtype=x.dtype)
    padded[:, pad_before_h:pad_before_h + h,
           pad_before_w:pad_before_w + wd] = x
    oh = (h + 2 * 0 + (kh - 1)) // 1  # computed by caller instead
    return padded


class TestConv2D:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(2, 5, 5, 3)).astype(np.float32)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        for c in range(3):
            w[0, 0, c, c] = 1.0
        out = F.conv2d(x, w, stride=1, padding="same")
        assert np.allclose(out, x)

    def test_matches_naive_valid_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 6, 6, 2)).astype(np.float32)
        w = rng.normal(size=(3, 3, 2, 4)).astype(np.float32)
        out = F.conv2d(x, w, stride=1, padding="valid")
        assert out.shape == (1, 4, 4, 4)
        # Check one output position by hand.
        patch = x[0, 1:4, 2:5, :]
        expected = np.tensordot(patch, w, axes=([0, 1, 2], [0, 1, 2]))
        assert np.allclose(out[0, 1, 2], expected, atol=1e-5)

    def test_stride_two_shape(self):
        x = np.zeros((1, 7, 7, 1), dtype=np.float32)
        w = np.zeros((3, 3, 1, 2), dtype=np.float32)
        assert F.conv2d(x, w, stride=2, padding="same").shape == (1, 4, 4, 2)
        assert F.conv2d(x, w, stride=2, padding="valid").shape == (1, 3, 3, 2)

    def test_bias_added(self):
        x = np.zeros((1, 3, 3, 1), dtype=np.float32)
        w = np.zeros((1, 1, 1, 2), dtype=np.float32)
        out = F.conv2d(x, w, bias=np.array([1.0, -2.0], dtype=np.float32))
        assert np.allclose(out[..., 0], 1.0)
        assert np.allclose(out[..., 1], -2.0)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 3, 3, 2)), np.zeros((1, 1, 3, 1)))

    def test_translation_equivariance(self):
        """Shifting the input by the stride shifts the output by one."""
        rng = np.random.default_rng(2)
        x = np.zeros((1, 10, 10, 1), dtype=np.float32)
        x[0, 2:5, 2:5, 0] = rng.normal(size=(3, 3))
        w = rng.normal(size=(3, 3, 1, 1)).astype(np.float32)
        out_a = F.conv2d(x, w, padding="valid")
        x_shift = np.roll(x, 1, axis=1)
        out_b = F.conv2d(x_shift, w, padding="valid")
        assert np.allclose(out_a[0, 1:-1], out_b[0, 2:], atol=1e-5)


class TestDepthwiseConv:
    def test_identity(self):
        x = np.random.default_rng(0).normal(size=(1, 4, 4, 3)).astype(np.float32)
        w = np.zeros((1, 1, 3), dtype=np.float32)
        w[0, 0, :] = 1.0
        assert np.allclose(F.depthwise_conv2d(x, w), x)

    def test_channels_do_not_mix(self):
        x = np.zeros((1, 4, 4, 2), dtype=np.float32)
        x[..., 0] = 1.0
        w = np.ones((3, 3, 2), dtype=np.float32)
        out = F.depthwise_conv2d(x, w, padding="valid")
        assert np.all(out[..., 0] == 9.0)
        assert np.all(out[..., 1] == 0.0)

    def test_matches_full_conv_with_diagonal_kernel(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 6, 6, 2)).astype(np.float32)
        dw = rng.normal(size=(3, 3, 2)).astype(np.float32)
        full = np.zeros((3, 3, 2, 2), dtype=np.float32)
        for c in range(2):
            full[:, :, c, c] = dw[:, :, c]
        assert np.allclose(
            F.depthwise_conv2d(x, dw, padding="valid"),
            F.conv2d(x, full, padding="valid"),
            atol=1e-5,
        )

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.depthwise_conv2d(np.zeros((1, 3, 3, 2)), np.zeros((3, 3, 5)))


class TestPadding:
    def test_same_output_size(self):
        for size in (5, 6, 7, 8):
            for stride in (1, 2, 3):
                assert F.conv_output_size(size, 3, stride, "same") == -(-size // stride)

    def test_valid_output_size(self):
        assert F.conv_output_size(7, 3, 1, "valid") == 5
        assert F.conv_output_size(7, 3, 2, "valid") == 3

    def test_valid_too_small_rejected(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 3, 1, "valid")

    def test_unknown_padding_rejected(self):
        with pytest.raises(ValueError):
            F.conv_output_size(5, 3, 1, "reflect")

    def test_pad_same_value_for_maxpool(self):
        x = np.full((1, 3, 3, 1), 5.0, dtype=np.float32)
        padded = F.pad_same(x, (2, 2), (2, 2), value=-np.inf)
        assert padded.shape[1] == 4
        assert np.isneginf(padded).any()


class TestPooling:
    def test_maxpool_known(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = F.maxpool2d(x, kernel=2, stride=2)
        assert out.reshape(-1).tolist() == [5, 7, 13, 15]

    def test_global_avgpool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = F.global_avgpool(x)
        assert out.shape == (1, 2)
        assert np.allclose(out[0], [3.0, 4.0])


class TestActivationsAndSoftmax:
    def test_relu6_clips(self):
        x = np.array([-1.0, 3.0, 9.0], dtype=np.float32)
        assert F.relu6(x).tolist() == [0.0, 3.0, 6.0]

    def test_sigmoid_extremes_stable(self):
        x = np.array([-1000.0, 0.0, 1000.0], dtype=np.float64)
        out = F.sigmoid(x)
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    @given(st.lists(st.floats(min_value=-50, max_value=50),
                    min_size=2, max_size=20))
    def test_softmax_is_a_distribution(self, values):
        out = F.softmax(np.array(values, dtype=np.float64))
        assert out.sum() == pytest.approx(1.0, abs=1e-9)
        assert (out >= 0).all()

    @given(st.lists(st.floats(min_value=-50, max_value=50),
                    min_size=2, max_size=10),
           st.floats(min_value=-100, max_value=100))
    def test_softmax_shift_invariant(self, values, shift):
        a = F.softmax(np.array(values))
        b = F.softmax(np.array(values) + shift)
        assert np.allclose(a, b, atol=1e-9)


class TestLSTMCell:
    def _params(self, inputs, hidden, seed=0):
        rng = np.random.default_rng(seed)
        w = rng.normal(0, 0.1, size=(inputs, 4 * hidden)).astype(np.float32)
        u = rng.normal(0, 0.1, size=(hidden, 4 * hidden)).astype(np.float32)
        b = np.zeros(4 * hidden, dtype=np.float32)
        return w, u, b

    def test_shapes(self):
        w, u, b = self._params(3, 5)
        h = np.zeros((2, 5), dtype=np.float32)
        c = np.zeros((2, 5), dtype=np.float32)
        x = np.ones((2, 3), dtype=np.float32)
        h2, c2 = F.lstm_cell(x, h, c, w, u, b)
        assert h2.shape == (2, 5) and c2.shape == (2, 5)

    def test_hidden_state_bounded(self):
        w, u, b = self._params(3, 5)
        h = np.zeros((1, 5), dtype=np.float32)
        c = np.zeros((1, 5), dtype=np.float32)
        x = np.full((1, 3), 100.0, dtype=np.float32)
        for _ in range(20):
            h, c = F.lstm_cell(x, h, c, w, u, b)
        assert np.all(np.abs(h) <= 1.0)

    def test_forget_gate_bias_preserves_cell(self):
        hidden = 4
        w = np.zeros((2, 4 * hidden), dtype=np.float32)
        u = np.zeros((hidden, 4 * hidden), dtype=np.float32)
        b = np.zeros(4 * hidden, dtype=np.float32)
        b[hidden:2 * hidden] = 100.0   # forget gate saturated open
        b[:hidden] = -100.0            # input gate shut
        c0 = np.array([[0.1, -0.2, 0.3, 0.0]], dtype=np.float32)
        h0 = np.zeros((1, hidden), dtype=np.float32)
        x = np.ones((1, 2), dtype=np.float32)
        _h, c1 = F.lstm_cell(x, h0, c0, w, u, b)
        assert np.allclose(c1, c0, atol=1e-5)


class TestEmbedding:
    def test_lookup(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        out = F.embedding_lookup(table, np.array([1, 3]))
        assert np.allclose(out[0], [3, 4, 5])
        assert np.allclose(out[1], [9, 10, 11])

    def test_out_of_range_rejected(self):
        table = np.zeros((4, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            F.embedding_lookup(table, np.array([4]))
        with pytest.raises(ValueError):
            F.embedding_lookup(table, np.array([-1]))
