"""Documentation lint: links resolve, public modules are documented.

Three cheap invariants that rot silently otherwise:

* every intra-repo link in the markdown docs points at a file that
  exists (renames and deletions break docs without failing any test);
* every public module under ``src/repro/`` carries a module docstring
  (the docs satellite of each PR depends on modules explaining
  themselves);
* the workload catalog (``docs/index.md``) stays live: it names every
  ``docs/`` page and every tier-1 smoke test, and every path it cites
  exists.
"""

import ast
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: The markdown that makes documentation claims about the repo.
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "CONTRIBUTING.md", REPO / "DESIGN.md",
     REPO / "EXPERIMENTS.md", REPO / "ROADMAP.md"]
    + list((REPO / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def intra_repo_links(path):
    """(target, link) pairs for every non-external markdown link."""
    out = []
    for link in _LINK_RE.findall(path.read_text()):
        target = link.split("#")[0]
        if not target or "://" in target or target.startswith("mailto:"):
            continue
        out.append(((path.parent / target).resolve(), link))
    return out


@pytest.mark.parametrize(
    "doc", [d for d in DOC_FILES if d.exists()], ids=lambda d: d.name
)
def test_intra_repo_links_resolve(doc):
    broken = [
        link for target, link in intra_repo_links(doc) if not target.exists()
    ]
    assert not broken, f"{doc.name}: broken links {broken}"


def test_doc_files_exist():
    """The load-bearing pages the README advertises must exist."""
    for name in ("README.md", "CONTRIBUTING.md", "docs/index.md",
                 "docs/architecture.md", "docs/observability.md",
                 "docs/fleet.md", "docs/streaming.md",
                 "docs/sessions.md"):
        assert (REPO / name).is_file(), f"missing {name}"


INDEX = REPO / "docs" / "index.md"


def test_workload_catalog_names_every_doc_page():
    """`docs/index.md` is the workload catalog; a subsystem page that
    never appears in it is invisible to readers, so adding a doc
    without cataloging it is an error."""
    catalog = INDEX.read_text()
    missing = [
        f"docs/{page.name}" for page in sorted((REPO / "docs").glob("*.md"))
        if page != INDEX and f"docs/{page.name}" not in catalog
    ]
    assert not missing, f"docs pages absent from the catalog: {missing}"


def test_workload_catalog_paths_exist():
    """Every backticked repo path the catalog cites (doc pages, smoke
    tests, benchmark runners) must exist — the catalog's whole value is
    that its pointers are live."""
    catalog = INDEX.read_text()
    cited = re.findall(r"`((?:docs|tests|benchmarks)/[A-Za-z0-9_./-]+)`",
                       catalog)
    assert cited, "the catalog cites no doc or test paths at all"
    dangling = [ref for ref in cited if not (REPO / ref).exists()]
    assert not dangling, f"catalog cites missing paths: {dangling}"


def test_workload_catalog_covers_every_tier1_smoke():
    """Every tier-1 smoke test file must be cataloged with its tier."""
    catalog = INDEX.read_text()
    missing = [
        f"tests/{smoke.name}"
        for smoke in sorted(REPO.glob("tests/test_*_smoke.py"))
        if f"tests/{smoke.name}" not in catalog
    ]
    assert not missing, f"smoke tests absent from the catalog: {missing}"


PUBLIC_MODULES = sorted(
    p for p in SRC.rglob("*.py") if not p.name.startswith("_")
    or p.name == "__init__.py"
)


@pytest.mark.parametrize(
    "module", PUBLIC_MODULES,
    ids=lambda p: str(p.relative_to(SRC)).replace("/", "."),
)
def test_public_modules_have_docstrings(module):
    tree = ast.parse(module.read_text())
    assert ast.get_docstring(tree), (
        f"{module.relative_to(REPO)} has no module docstring"
    )


#: Backtick-quoted ``docs/...`` path mentions (prose references that the
#: markdown-link lint above cannot see, e.g. "see `docs/observability.md`").
_DOC_PATH_RE = re.compile(r"`(docs/[A-Za-z0-9_./-]+\.md)`")


def doc_path_mentions(path):
    return _DOC_PATH_RE.findall(path.read_text())


@pytest.mark.parametrize(
    "source",
    [d for d in DOC_FILES if d.exists()] + sorted(SRC.rglob("*.py")),
    ids=lambda p: str(p.relative_to(REPO)),
)
def test_docs_path_mentions_resolve(source):
    """Prose and docstrings that name a ``docs/`` page must name one
    that exists — a rename otherwise leaves dangling pointers that no
    link checker catches."""
    dangling = [
        ref for ref in doc_path_mentions(source)
        if not (REPO / ref).is_file()
    ]
    assert not dangling, (
        f"{source.relative_to(REPO)}: dangling docs references {dangling}"
    )


def test_readme_test_count_is_not_stale():
    """The README's advertised test count must not exceed reality by
    omission: it claims "N+"; the suite only ever grows, so the claim
    goes stale only if N shrinks below a prior claim.  Parse the claim
    and sanity-check it against the number of collected test files as a
    coarse lower bound that still catches a forgotten update after a
    mass deletion."""
    text = (REPO / "README.md").read_text()
    match = re.search(r"(\d[\d,]*)\+ unit/integration/property tests", text)
    assert match, "README no longer states the test-suite size"
    claimed = int(match.group(1).replace(",", ""))
    assert claimed >= 650, "the claim regressed below the historic floor"
