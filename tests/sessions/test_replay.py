"""Replay-graph generation: determinism, shape bounds, prefix growth."""

import numpy as np
import pytest

from repro.core import Scenario, TestSettings
from repro.sessions import (
    SESSION_TAG,
    ReplayGraph,
    SessionProfile,
    replay_graph_from_settings,
)

pytestmark = pytest.mark.sessions


def profile(**overrides):
    base = dict(turns_min=2, turns_max=8, think_time_mean=2.0,
                new_tokens_min=16, new_tokens_max=128, seed=42)
    base.update(overrides)
    return SessionProfile(**base)


def test_plans_are_bit_identical_across_instances():
    first, second = profile(), profile()
    for user_id in range(50):
        assert first.plan(user_id) == second.plan(user_id)


def test_graph_fingerprint_is_deterministic_and_seed_sensitive():
    a = ReplayGraph(profile(), 40)
    b = ReplayGraph(profile(), 40)
    c = ReplayGraph(profile(seed=43), 40)
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()


def test_users_are_independent_streams():
    # Planning users in different orders must not change any plan: each
    # user's draws come from SeedSequence((seed, user_id, tag)), not a
    # shared stream.
    forward = ReplayGraph(profile(), 20)
    backward = ReplayGraph(profile(), 20)
    for user_id in range(20):
        forward.plan(user_id)
    for user_id in reversed(range(20)):
        backward.plan(user_id)
    assert forward.fingerprint() == backward.fingerprint()


def test_draws_use_the_documented_seed_domain():
    # The contract docs/sessions.md promises: the first draw for user u
    # comes from SeedSequence((seed, u, 0x5E55)).  Re-derive turn counts
    # independently and compare.
    p = profile()
    for user_id in (0, 7, 31):
        rng = np.random.default_rng(
            np.random.SeedSequence((p.seed, user_id, SESSION_TAG)))
        expected_turns = int(rng.integers(p.turns_min, p.turns_max + 1))
        assert p.plan(user_id).turn_count == expected_turns


def test_plan_shapes_respect_the_configured_bounds():
    p = profile(turns_min=3, turns_max=5, new_tokens_min=10,
                new_tokens_max=20)
    for user_id in range(100):
        plan = p.plan(user_id)
        assert 3 <= plan.turn_count <= 5
        for turn in plan.turns:
            assert 10 <= turn.new_tokens <= 20
            assert 10 <= turn.response_tokens <= 20
            assert turn.think_time >= 0.0
        assert plan.turns[0].think_time == 0.0
        assert plan.turns[0].prefix_tokens == 0


def test_prefix_accumulates_prompt_and_response_tokens():
    plan = profile().plan(3)
    expected_prefix = 0
    for turn in plan.turns:
        assert turn.prefix_tokens == expected_prefix
        expected_prefix += turn.new_tokens + turn.response_tokens


def test_zero_think_time_disables_thinking():
    plan = profile(think_time_mean=0.0).plan(5)
    assert all(turn.think_time == 0.0 for turn in plan.turns)


def test_turn_tag_matches_the_plan():
    plan = profile().plan(9)
    tag = plan.turn_tag(1)
    assert tag.session_id == 9
    assert tag.turn_index == 1
    assert tag.turn_count == plan.turn_count
    assert tag.prefix_tokens == plan.turns[1].prefix_tokens


def test_from_settings_round_trip():
    settings = TestSettings(
        scenario=Scenario.SESSION, server_target_qps=10.0,
        session_count=7, session_turns_min=3, session_turns_max=4,
        session_think_time_mean=1.5, session_new_tokens_min=8,
        session_new_tokens_max=9, seed=11)
    graph = replay_graph_from_settings(settings)
    assert graph.session_count == 7
    assert graph.profile == SessionProfile(
        turns_min=3, turns_max=4, think_time_mean=1.5,
        new_tokens_min=8, new_tokens_max=9, seed=11)


def test_invalid_profiles_are_rejected():
    with pytest.raises(ValueError):
        profile(turns_min=0)
    with pytest.raises(ValueError):
        profile(turns_max=1, turns_min=2)
    with pytest.raises(ValueError):
        profile(think_time_mean=-1.0)
    with pytest.raises(ValueError):
        profile(new_tokens_min=0)
    with pytest.raises(ValueError):
        profile(new_tokens_max=8, new_tokens_min=9)
    with pytest.raises(ValueError):
        ReplayGraph(profile(), 0)
    with pytest.raises(ValueError):
        ReplayGraph(profile(), 4).plan(4)
