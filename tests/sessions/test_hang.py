"""Multi-turn hang regression: a lost turn must not wedge the run.

If turn N's answer never arrives, turn N+1 is never issued - so the
session's event chain simply stops.  The watchdog must classify the
stuck run, the harness must terminate, and validation must name the
stalled session explicitly (outstanding-query counts alone understate
the damage: every unissued later turn is also lost).
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase

from tests.conftest import EchoQSL

pytestmark = pytest.mark.sessions


class DropOneTurnSUT(SutBase):
    """Swallows exactly one chosen turn; answers everything else."""

    def __init__(self, drop_session: int, drop_turn: int) -> None:
        super().__init__("drop-one-turn")
        self.drop_session = drop_session
        self.drop_turn = drop_turn
        self.dropped = 0

    def issue_query(self, query) -> None:
        turn = query.session
        if (turn is not None and turn.session_id == self.drop_session
                and turn.turn_index == self.drop_turn):
            self.dropped += 1
            return  # never respond: the classic lost-completion hang
        responses = [
            QuerySampleResponse(s.id, s.index) for s in query.samples
        ]
        self.loop.schedule_after(
            0.001, lambda: self.complete(query, responses))


def hang_settings(**overrides):
    base = dict(
        scenario=Scenario.SESSION, server_target_qps=200.0,
        session_count=12, session_think_time_mean=0.02,
        min_duration=0.0, watchdog_timeout=5.0, seed=9)
    base.update(overrides)
    return TestSettings(**base)


def test_lost_turn_is_classified_not_wedged():
    sut = DropOneTurnSUT(drop_session=4, drop_turn=1)
    result = run_benchmark(sut, EchoQSL(), hang_settings())
    # The run terminated (we got a result back at all) via the watchdog.
    assert sut.dropped == 1
    assert result.stats.watchdog_fired
    assert not result.valid
    details = result.validity.details
    assert details["sessions_stalled"] == 1
    assert result.stats.sessions_started == 12
    assert result.stats.sessions_completed == 11
    assert result.stats.sessions_aborted == 0
    assert any("1 sessions stalled mid-conversation" in reason
               for reason in result.validity.reasons)
    # Exactly one query outstanding: the dropped turn.  Its successors
    # were never issued, which is the point of the stalled-session rule.
    assert result.log.outstanding == 1
    stuck = result.log.outstanding_records()[0]
    assert stuck.session_id == 4
    assert stuck.turn_index == 1


def test_later_turns_are_never_issued_after_the_loss():
    sut = DropOneTurnSUT(drop_session=4, drop_turn=1)
    result = run_benchmark(sut, EchoQSL(), hang_settings())
    issued_turns = sorted(
        r.turn_index for r in result.log.records()
        if r.session_id == 4)
    assert issued_turns == [0, 1]


def test_unaffected_sessions_still_complete():
    sut = DropOneTurnSUT(drop_session=4, drop_turn=1)
    result = run_benchmark(sut, EchoQSL(), hang_settings())
    session = result.metrics.session
    assert session is not None
    assert session.completed_session_count == 11
