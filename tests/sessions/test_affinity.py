"""SessionAffinityPolicy: served-feedback pinning, eviction, fallback."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.query import Query, QuerySample, SessionTurn
from repro.fleet import POLICY_NAMES, SessionAffinityPolicy, make_policy

pytestmark = pytest.mark.sessions


@dataclass
class FakeReplica:
    index: int
    outstanding: int = 0


def query(session_id=None, turn_index=0, turn_count=4):
    q = Query(id=1, samples=(QuerySample(1, 0),))
    if session_id is not None:
        q.session = SessionTurn(
            session_id=session_id, turn_index=turn_index,
            turn_count=turn_count,
            prefix_tokens=0, new_tokens=8, response_tokens=8)
    return q


def fresh_policy():
    policy = SessionAffinityPolicy()
    policy.start_run(np.random.default_rng(0))
    return policy


def test_policy_is_registered():
    assert "session-affinity" in POLICY_NAMES
    assert isinstance(make_policy("session-affinity"),
                      SessionAffinityPolicy)


def test_turns_stick_to_the_replica_that_served_turn_zero():
    policy = fresh_policy()
    replicas = [FakeReplica(0, outstanding=5), FakeReplica(1, outstanding=0),
                FakeReplica(2, outstanding=3)]
    first = policy.rank_for(query(session_id=7, turn_index=0), replicas)
    assert first[0].index == 1  # least outstanding wins the opening turn
    # The fleet reports who actually served; the pin follows.
    policy.notify_served(query(session_id=7, turn_index=0), 1)
    # Later turns prefer the pinned replica even when it is now busiest.
    replicas[1].outstanding = 99
    later = policy.rank_for(query(session_id=7, turn_index=1), replicas)
    assert later[0].index == 1


def test_ranking_is_read_only_until_served_feedback_arrives():
    # Regression: rank_for used to re-pin to its own first preference
    # before dispatch, so a breaker-rejected first choice left the pin
    # pointing at a replica that never served the turn.
    policy = fresh_policy()
    replicas = [FakeReplica(0), FakeReplica(1, outstanding=9)]
    ranked = policy.rank_for(query(session_id=4, turn_index=0), replicas)
    assert ranked[0].index == 0
    # Ranking alone must not pin anything...
    assert policy.pinned_replica(4) is None
    assert policy.active_pins == 0
    # ...the dispatch actually landed on replica 1 (0's breaker said no).
    policy.notify_served(query(session_id=4, turn_index=0), 1)
    assert policy.pinned_replica(4) == 1
    assert policy.rank_for(
        query(session_id=4, turn_index=1), replicas)[0].index == 1


def test_sessions_pin_independently():
    policy = fresh_policy()
    replicas = [FakeReplica(0), FakeReplica(1)]
    policy.notify_served(query(session_id=1, turn_index=0), 1)
    policy.notify_served(query(session_id=2, turn_index=0), 0)
    # Each session keeps its own pin.
    assert policy.rank_for(
        query(session_id=1, turn_index=1), replicas)[0].index == 1
    assert policy.rank_for(
        query(session_id=2, turn_index=1), replicas)[0].index == 0


def test_departed_pin_falls_back_without_repinning():
    policy = fresh_policy()
    replicas = [FakeReplica(0), FakeReplica(1)]
    policy.notify_served(query(session_id=3, turn_index=0), 0)
    # The pinned replica leaves the candidate set (scaled down / down):
    # ranking falls back to least-outstanding among the survivors...
    survivors = [FakeReplica(1, outstanding=2)]
    assert policy.rank_for(
        query(session_id=3, turn_index=1), survivors)[0].index == 1
    # ...but the pin only moves when the survivor actually serves.
    assert policy.pinned_replica(3) == 0
    policy.notify_served(query(session_id=3, turn_index=1), 1)
    both = [FakeReplica(0), FakeReplica(1, outstanding=9)]
    assert policy.rank_for(
        query(session_id=3, turn_index=2), both)[0].index == 1


def test_completed_session_releases_its_pin():
    policy = fresh_policy()
    policy.notify_served(query(session_id=9, turn_index=0, turn_count=2), 1)
    assert policy.active_pins == 1
    # Final turn served: the conversation is over, the pin is evicted.
    policy.notify_served(query(session_id=9, turn_index=1, turn_count=2), 1)
    assert policy.active_pins == 0
    assert policy.pinned_replica(9) is None


def test_failed_turn_releases_its_pin():
    policy = fresh_policy()
    policy.notify_served(query(session_id=11, turn_index=0), 0)
    assert policy.active_pins == 1
    # The next turn is shed/failed: the session aborts, the pin goes.
    policy.notify_failed(query(session_id=11, turn_index=1))
    assert policy.active_pins == 0


def test_pin_table_stays_bounded_over_many_sessions():
    # Regression for the unbounded-growth leak: a long run over many
    # users must not accumulate one pin per user forever.
    policy = fresh_policy()
    for user in range(10_000):
        policy.notify_served(
            query(session_id=user, turn_index=0, turn_count=2), user % 4)
        policy.notify_served(
            query(session_id=user, turn_index=1, turn_count=2), user % 4)
    assert policy.active_pins == 0


def test_non_session_queries_route_least_outstanding():
    policy = fresh_policy()
    replicas = [FakeReplica(0, outstanding=4), FakeReplica(1, outstanding=2),
                FakeReplica(2, outstanding=7)]
    ranked = policy.rank_for(query(), replicas)
    assert [r.index for r in ranked] == [1, 0, 2]
    assert policy.rank_for(query(), []) == []
    # Serving a non-session query never creates routing state.
    policy.notify_served(query(), 2)
    policy.notify_failed(query())
    assert policy.active_pins == 0
