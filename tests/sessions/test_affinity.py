"""SessionAffinityPolicy: pinning, fallback, and non-session behavior."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.query import Query, QuerySample, SessionTurn
from repro.fleet import POLICY_NAMES, SessionAffinityPolicy, make_policy

pytestmark = pytest.mark.sessions


@dataclass
class FakeReplica:
    index: int
    outstanding: int = 0


def query(session_id=None, turn_index=0):
    q = Query(id=1, samples=(QuerySample(1, 0),))
    if session_id is not None:
        q.session = SessionTurn(
            session_id=session_id, turn_index=turn_index, turn_count=4,
            prefix_tokens=0, new_tokens=8, response_tokens=8)
    return q


def fresh_policy():
    policy = SessionAffinityPolicy()
    policy.start_run(np.random.default_rng(0))
    return policy


def test_policy_is_registered():
    assert "session-affinity" in POLICY_NAMES
    assert isinstance(make_policy("session-affinity"),
                      SessionAffinityPolicy)


def test_turns_stick_to_the_first_turns_replica():
    policy = fresh_policy()
    replicas = [FakeReplica(0, outstanding=5), FakeReplica(1, outstanding=0),
                FakeReplica(2, outstanding=3)]
    first = policy.rank_for(query(session_id=7, turn_index=0), replicas)
    assert first[0].index == 1  # least outstanding wins the opening turn
    # Later turns prefer the pinned replica even when it is now busiest.
    replicas[1].outstanding = 99
    later = policy.rank_for(query(session_id=7, turn_index=1), replicas)
    assert later[0].index == 1


def test_sessions_pin_independently():
    policy = fresh_policy()
    replicas = [FakeReplica(0), FakeReplica(1)]
    replicas[0].outstanding = 1
    a = policy.rank_for(query(session_id=1), replicas)
    replicas[1].outstanding = 5
    b = policy.rank_for(query(session_id=2), replicas)
    assert a[0].index == 1
    assert b[0].index == 0
    # Each session keeps its own pin.
    assert policy.rank_for(
        query(session_id=1, turn_index=1), replicas)[0].index == 1
    assert policy.rank_for(
        query(session_id=2, turn_index=1), replicas)[0].index == 0


def test_departed_pin_falls_back_and_repins():
    policy = fresh_policy()
    replicas = [FakeReplica(0), FakeReplica(1)]
    assert policy.rank_for(query(session_id=3), replicas)[0].index == 0
    # The pinned replica leaves the candidate set (scaled down / down).
    survivors = [FakeReplica(1, outstanding=2)]
    assert policy.rank_for(
        query(session_id=3, turn_index=1), survivors)[0].index == 1
    # ...and the session is now re-pinned to the survivor.
    both = [FakeReplica(0), FakeReplica(1, outstanding=9)]
    assert policy.rank_for(
        query(session_id=3, turn_index=2), both)[0].index == 1


def test_non_session_queries_route_least_outstanding():
    policy = fresh_policy()
    replicas = [FakeReplica(0, outstanding=4), FakeReplica(1, outstanding=2),
                FakeReplica(2, outstanding=7)]
    ranked = policy.rank_for(query(), replicas)
    assert [r.index for r in ranked] == [1, 0, 2]
    assert policy.rank_for(query(), []) == []
