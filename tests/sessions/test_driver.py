"""SessionDriver behavior: turn ordering, think times, lifecycle counts."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = pytest.mark.sessions


def settings(**overrides):
    base = dict(
        scenario=Scenario.SESSION, server_target_qps=100.0,
        session_count=16, session_think_time_mean=0.05,
        min_duration=0.0, watchdog_timeout=600.0, seed=3)
    base.update(overrides)
    return TestSettings(**base)


def session_run(run_settings=None, sut=None, **kwargs):
    return run_benchmark(
        sut if sut is not None else FixedLatencySUT(latency=0.002),
        EchoQSL(), run_settings if run_settings is not None else settings(),
        **kwargs)


def test_every_session_completes_and_the_run_is_valid():
    result = session_run()
    assert result.valid, result.validity.reasons
    assert result.stats.sessions_started == 16
    assert result.stats.sessions_completed == 16
    assert result.stats.sessions_aborted == 0
    session = result.metrics.session
    assert session is not None
    assert session.completed_session_count == 16
    assert session.turn_count == result.metrics.query_count


def test_turns_are_strictly_ordered_within_each_session():
    result = session_run()
    by_session = {}
    for record in result.log.completed_records():
        by_session.setdefault(record.session_id, []).append(record)
    assert len(by_session) == 16
    for records in by_session.values():
        records.sort(key=lambda r: r.issue_time)
        for position, record in enumerate(records):
            assert record.turn_index == position
        # Turn N+1 must issue only after turn N completed.
        for earlier, later in zip(records, records[1:]):
            assert later.issue_time >= earlier.completion_time


def test_think_time_separates_consecutive_turns():
    from repro.sessions import replay_graph_from_settings

    run_settings = settings(session_think_time_mean=0.2)
    result = session_run(run_settings)
    graph = replay_graph_from_settings(run_settings)
    checked = 0
    by_session = {}
    for record in result.log.completed_records():
        by_session.setdefault(record.session_id, []).append(record)
    for session_id, records in by_session.items():
        records.sort(key=lambda r: r.issue_time)
        plan = graph.plan(session_id)
        for earlier, later in zip(records, records[1:]):
            think = plan.turns[later.turn_index].think_time
            gap = later.issue_time - earlier.completion_time
            assert gap == pytest.approx(think, abs=1e-9)
            checked += 1
    assert checked > 0


def test_primary_metric_is_completed_sessions_per_second():
    result = session_run()
    assert result.metrics.primary_metric_name == "completed sessions/s"
    assert result.metrics.primary_metric == pytest.approx(
        result.metrics.session.sessions_per_second)
    assert "Sessions          : 16/16 completed" in result.summary()


def test_session_queries_carry_their_tags_into_the_jsonl_trace():
    result = session_run()
    trace = result.log.to_jsonl()
    assert '"session_id"' in trace
    assert '"turn_index"' in trace
    assert '"prefix_tokens"' in trace


def test_session_metrics_registry_families():
    registry = MetricsRegistry()
    result = session_run(registry=registry)
    assert result.valid
    assert registry.get("session_started_total").value == 16
    assert registry.get("session_completed_total").value == 16
    assert registry.get("session_aborted_total").value == 0
    assert registry.get("session_turns_total").value == \
        result.metrics.query_count
    assert registry.get("session_duration_seconds").count == 16
    assert registry.get("session_active").value == 0


def test_failed_turn_aborts_its_session_not_the_harness():
    from repro.core.query import QuerySampleResponse
    from repro.core.sut import SutBase

    class FailNthTurnSUT(SutBase):
        """Fails every session's second turn; other turns complete."""

        def __init__(self):
            super().__init__("fail-second-turn")

        def issue_query(self, query):
            if query.session is not None and query.session.turn_index == 1:
                self.loop.schedule_after(
                    0.001, lambda: self.fail(query, "backend exploded"))
                return
            responses = [
                QuerySampleResponse(s.id, s.index) for s in query.samples
            ]
            self.loop.schedule_after(
                0.001, lambda: self.complete(query, responses))

    result = session_run(sut=FailNthTurnSUT())
    assert not result.valid
    assert result.stats.sessions_started == 16
    assert result.stats.sessions_completed == 0
    assert result.stats.sessions_aborted == 16
    assert any("aborted after a failed turn" in reason
               for reason in result.validity.reasons)
    # No stalled sessions: the run drained cleanly despite the failures.
    assert not any("stalled" in reason for reason in result.validity.reasons)


def test_too_few_completed_sessions_invalidates_the_run():
    # Ask for more sessions than the driver replays by pretending the
    # settings demand 32 while the graph only holds 16: simplest is to
    # require a higher session_count on a copy used for validation.
    from repro.core.validation import validate_run

    result = session_run()
    stricter = settings(session_count=32)
    report = validate_run(result.log, stricter, result.stats)
    assert not report.valid
    assert any("minimum is 32" in reason for reason in report.reasons)
