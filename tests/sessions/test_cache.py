"""PrefixCacheSUT accounting: hits, evictions, audit, latency shaping."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.core.query import (
    Query, QuerySample, QuerySampleResponse, SessionTurn,
)
from repro.core.sut import SutBase
from repro.metrics import MetricsRegistry
from repro.sessions import (
    CacheStats,
    PrefixCacheSUT,
    audit_cache_events,
    replay_graph_from_settings,
)
from repro.sut.echo import EchoSUT

from tests.conftest import EchoQSL

pytestmark = pytest.mark.sessions


def settings(**overrides):
    base = dict(
        scenario=Scenario.SESSION, server_target_qps=100.0,
        session_count=24, session_think_time_mean=0.05,
        min_duration=0.0, watchdog_timeout=600.0, seed=5)
    base.update(overrides)
    return TestSettings(**base)


def cached_run(run_settings=None, registry=None, **cache_kwargs):
    cache_kwargs.setdefault("capacity_tokens", 1 << 20)
    sut = PrefixCacheSUT(EchoSUT(latency=0.001), registry=registry,
                         **cache_kwargs)
    result = run_benchmark(
        sut, EchoQSL(),
        run_settings if run_settings is not None else settings())
    return result, sut


def test_unbounded_cache_hits_every_followup_turn():
    result, sut = cached_run()
    assert result.valid
    # First turn of each session has no prefix (a miss); every later
    # turn's prefix is exactly the conversation so far, still resident.
    assert sut.stats.misses == 24
    assert sut.stats.hits == result.metrics.query_count - 24
    assert sut.stats.partial_hits == 0
    assert sut.stats.evictions == 0
    assert sut.stats.token_hit_rate == 1.0


def test_tiny_cache_evicts_and_re_prefills():
    result, sut = cached_run(capacity_tokens=512)
    assert result.valid
    assert sut.stats.evictions > 0
    assert sut.stats.tokens_missed > 0
    assert sut.stats.hit_rate < 1.0


def test_audit_accepts_the_real_trail_and_rejects_a_doctored_one():
    run_settings = settings()
    _result, sut = cached_run(run_settings)
    graph = replay_graph_from_settings(run_settings)
    assert audit_cache_events(sut.events, graph, sut.capacity_tokens) == []
    # Inflate one hit's reused tokens: the referee must notice.
    doctored = list(sut.events)
    for position, event in enumerate(doctored):
        if event.kind == "hit":
            doctored[position] = event._replace(tokens=event.tokens + 1)
            break
    problems = audit_cache_events(doctored, graph, sut.capacity_tokens)
    assert problems and "recorded" in problems[0]


def test_cache_misses_cost_more_latency_than_hits():
    # Same workload, one run with a cache large enough to always hit
    # after turn one, one with a cache too small to ever help: the
    # cold-cache run must be slower end to end.
    warm, _ = cached_run(settings(), capacity_tokens=1 << 20)
    cold, cold_sut = cached_run(settings(), capacity_tokens=1)
    assert cold_sut.stats.hits == 0
    assert cold.metrics.session.session_latency_mean > \
        warm.metrics.session.session_latency_mean


def test_prefix_cache_metric_families():
    registry = MetricsRegistry()
    result, sut = cached_run(registry=registry)
    assert result.valid
    assert registry.get("prefix_cache_hits_total").value == sut.stats.hits
    assert registry.get("prefix_cache_misses_total").value == \
        sut.stats.misses
    assert registry.get("prefix_cache_tokens_reused_total").value == \
        sut.stats.tokens_reused
    assert registry.get("prefix_cache_evictions_total").value == 0
    assert registry.get("prefix_cache_resident_tokens").value == \
        sut.model.resident_tokens


def test_non_session_queries_bypass_the_cache():
    sut = PrefixCacheSUT(EchoSUT(latency=0.001))
    server_settings = TestSettings(
        scenario=Scenario.SERVER, server_target_qps=500.0,
        server_latency_bound=0.5, min_query_count=50,
        min_duration=0.0, watchdog_timeout=60.0)
    result = run_benchmark(sut, EchoQSL(), server_settings)
    assert result.valid
    assert sut.stats.accesses == 0
    assert sut.events == []


def test_streamed_session_turns_report_per_turn_ttft():
    from repro.streaming import StreamModel, StreamingSUT

    sut = PrefixCacheSUT(
        StreamingSUT(EchoSUT(latency=0.001), model=StreamModel(seed=7)),
        capacity_tokens=1 << 20)
    result = run_benchmark(sut, EchoQSL(), settings())
    assert result.valid
    stream = result.metrics.stream
    assert stream is not None
    assert stream.streamed_query_count == result.metrics.query_count
    session = result.metrics.session
    # Per-turn TTFT comes from real first-chunk times, so it must sit
    # strictly below the full turn latency percentiles.
    assert session.turn_ttft_p50 < result.metrics.latency_p50


class _RecordingSUT(SutBase):
    """Inner backend that logs the order of issues vs. flushes."""

    def __init__(self):
        super().__init__("recorder")
        self.calls = []

    def issue_query(self, query):
        self.calls.append("issue")
        self.complete(query, [QuerySampleResponse(s.id, s.index)
                              for s in query.samples])

    def flush(self):
        self.calls.append("flush")


def delayed_turn(qid=1):
    query = Query(id=qid, samples=(QuerySample(qid * 100, 0),),
                  issue_time=0.0)
    query.session = SessionTurn(
        session_id=1, turn_index=1, turn_count=4,
        prefix_tokens=128, new_tokens=16, response_tokens=16)
    return query


def test_flush_waits_for_prefill_delayed_turns_to_drain():
    # Regression: flush() used to forward to the inner SUT immediately,
    # overtaking turns still sitting out their prefill delay on the
    # loop - the inner SUT would batch-close before seeing queries that
    # were already, logically, issued.
    inner = _RecordingSUT()
    sut = PrefixCacheSUT(inner, capacity_tokens=1 << 20)
    loop = EventLoop(VirtualClock())
    sut.start_run(loop, lambda q, r: None)
    sut.issue_query(delayed_turn(1))
    sut.issue_query(delayed_turn(2))
    sut.flush()
    assert inner.calls == []  # both turns still waiting out prefill
    loop.run()
    assert inner.calls == ["issue", "issue", "flush"]


def test_flush_forwards_immediately_when_nothing_is_pending():
    inner = _RecordingSUT()
    sut = PrefixCacheSUT(inner)
    loop = EventLoop(VirtualClock())
    sut.start_run(loop, lambda q, r: None)
    sut.flush()
    assert inner.calls == ["flush"]


def test_close_releases_the_inner_backend():
    class _Closable(EchoSUT):
        def __init__(self):
            super().__init__()
            self.closed = False

        def close(self):
            self.closed = True

    inner = _Closable()
    PrefixCacheSUT(inner).close()
    assert inner.closed


def test_merged_stats_sum_every_field():
    a = CacheStats(hits=1, partial_hits=2, misses=3, evictions=4,
                   tokens_reused=5, tokens_missed=6)
    b = CacheStats(hits=10, partial_hits=20, misses=30, evictions=40,
                   tokens_reused=50, tokens_missed=60)
    assert CacheStats.merged([a, b]) == CacheStats(
        hits=11, partial_hits=22, misses=33, evictions=44,
        tokens_reused=55, tokens_missed=66)
    assert CacheStats.merged([]) == CacheStats()


def test_replica_labeled_cache_exports_its_own_series():
    registry = MetricsRegistry()
    sut = PrefixCacheSUT(EchoSUT(latency=0.001), registry=registry,
                         replica=3)
    result = run_benchmark(sut, EchoQSL(), settings())
    assert result.valid
    hits = registry.get("prefix_cache_hits_total")
    assert hits.label_names == ("replica",)
    assert hits.labels(replica=3).value == sut.stats.hits
    resident = registry.get("prefix_cache_resident_tokens")
    assert resident.labels(replica=3).value == sut.model.resident_tokens
