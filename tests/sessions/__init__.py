"""Deep behavioral tests for the session workload tier
(``repro.sessions``): replay-graph determinism, driver turn ordering,
prefix-cache accounting and audit, and the multi-turn-hang regression.
The quick tier-1 gate lives in ``tests/test_sessions_smoke.py``."""
