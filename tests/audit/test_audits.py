"""Section V-B audit tests: honest systems pass, cheaters are caught."""

import numpy as np
import pytest

from repro.audit import (
    run_accuracy_verification,
    run_caching_detection,
    run_custom_dataset_test,
    run_seed_test,
)
from repro.core import Scenario, TestSettings
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.runtime import build_glyph_classifier
from repro.sut.backend import ClassifierSUT


def perf_settings():
    return TestSettings(scenario=Scenario.SINGLE_STREAM,
                        min_query_count=150, min_duration=0.3)


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageNet(size=250)


@pytest.fixture(scope="module")
def qsl(dataset):
    return DatasetQSL(dataset)


def honest_factory(dataset, qsl):
    model = build_glyph_classifier(dataset, "heavy")

    def factory():
        return ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.002 * n)

    return factory


class GarbageInPerfModeSUT(SutBase):
    """Cheater: returns constant junk (fast) - only an accuracy-mode run
    would compute real outputs.  Simulates skipping inference."""

    def __init__(self, qsl, model):
        super().__init__("garbage-perf")
        self.qsl = qsl
        self.model = model
        self.calls = 0

    def issue_query(self, query):
        self.calls += 1
        # First full pass (accuracy mode covers the whole set in order)
        # is honest; later runs return junk.
        honest = self.calls <= self.qsl.total_sample_count
        responses = []
        for sample in query.samples:
            if honest:
                label = self.model.predict_one(self.qsl.get_sample(sample.index))
            else:
                label = -1
            responses.append(QuerySampleResponse(sample.id, label))
        self.loop.schedule_after(
            0.001, lambda: self.complete(query, responses))


class TestAccuracyVerification:
    def test_honest_sut_passes(self, dataset, qsl):
        report = run_accuracy_verification(
            honest_factory(dataset, qsl), qsl, perf_settings())
        assert report.passed
        assert report.checked > 0
        assert "PASSED" in report.summary()

    def test_garbage_perf_mode_caught(self, dataset, qsl):
        model = build_glyph_classifier(dataset, "heavy")
        state = {"sut": None}

        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            sut = GarbageInPerfModeSUT(qsl, model)
            # Make only the first (accuracy) run honest.
            if calls["n"] > 1:
                sut.calls = qsl.total_sample_count + 1
            return sut

        report = run_accuracy_verification(factory, qsl, perf_settings())
        assert not report.passed
        assert report.mismatches > 0
        assert "FAILED" in report.summary()

    def test_zero_probability_rejected(self, dataset, qsl):
        with pytest.raises(RuntimeError, match="log_probability"):
            run_accuracy_verification(
                honest_factory(dataset, qsl), qsl, perf_settings(),
                log_probability=0.0)


class CachingSUT(SutBase):
    """Cheater: memoizes results keyed by sample index, so repeated
    indices complete 100x faster."""

    def __init__(self, qsl):
        super().__init__("cacher")
        self.qsl = qsl
        self.cache = set()

    def issue_query(self, query):
        duration = 0.0
        for sample in query.samples:
            if sample.index in self.cache:
                duration += 0.00002
            else:
                self.cache.add(sample.index)
                duration += 0.002
        responses = [QuerySampleResponse(s.id, 0) for s in query.samples]
        self.loop.schedule_after(
            duration, lambda: self.complete(query, responses))


class TestCachingDetection:
    def test_honest_sut_passes(self, dataset, qsl):
        report = run_caching_detection(
            honest_factory(dataset, qsl), qsl, perf_settings())
        assert report.passed
        assert report.speedup == pytest.approx(1.0, abs=0.1)

    def test_caching_sut_caught(self, dataset, qsl):
        report = run_caching_detection(
            lambda: CachingSUT(qsl), qsl, perf_settings())
        assert not report.passed
        assert report.speedup > 2.0
        assert "caching suspected" in report.summary()


class SeedTunedSUT(SutBase):
    """Cheater: precomputed fast path only for the official seed's
    traffic - any other seed falls back to slow execution."""

    OFFICIAL_FIRST_INDEX = None   # learned lazily

    def __init__(self, qsl, official_seed_indices):
        super().__init__("seed-tuned")
        self.qsl = qsl
        self.official = official_seed_indices
        self.position = 0

    def issue_query(self, query):
        expected = self.official[self.position % len(self.official)]
        self.position += 1
        fast = query.samples[0].index == expected
        duration = 0.0005 if fast else 0.005
        responses = [QuerySampleResponse(s.id, 0) for s in query.samples]
        self.loop.schedule_after(
            duration, lambda: self.complete(query, responses))


class TestSeedTest:
    def test_honest_sut_passes(self, dataset, qsl):
        report = run_seed_test(honest_factory(dataset, qsl), qsl,
                               perf_settings())
        assert report.passed
        assert report.worst_relative > 0.9

    def test_seed_tuned_sut_caught(self, dataset, qsl):
        # Learn the official traffic, then build the cheater around it.
        from repro.core.loadgen import LoadGen
        settings = perf_settings()
        probe = LoadGen(settings).run(
            honest_factory(dataset, qsl)(), qsl)
        official = [r.query.samples[0].index for r in probe.log.records()]

        report = run_seed_test(
            lambda: SeedTunedSUT(qsl, official), qsl, settings)
        assert not report.passed
        assert "seed-tuned" in report.summary()


class MemorizerSUT(SutBase):
    """Cheater: replays labels memorized from the reference data set
    regardless of which data set is actually loaded."""

    def __init__(self, qsl, memorized):
        super().__init__("memorizer")
        self.qsl = qsl
        self.memorized = memorized

    def issue_query(self, query):
        responses = [
            QuerySampleResponse(s.id, self.memorized[s.index])
            for s in query.samples
        ]
        self.loop.schedule_after(
            0.001, lambda: self.complete(query, responses))


class TestCustomDataset:
    def test_honest_model_transfers(self, dataset):
        custom = SyntheticImageNet(size=250, seed=777)

        def sut_for(qsl):
            # An honest submitter's model is built from the *reference*
            # glyph alphabet; the audit's custom set shares the alphabet
            # but regenerates images, so real inference transfers.
            model = build_glyph_classifier(qsl.dataset, "heavy")
            return ClassifierSUT(model, qsl,
                                 service_time_fn=lambda n: 0.001 * n)

        report = run_custom_dataset_test(
            sut_for, dataset, custom,
            TestSettings(scenario=Scenario.SINGLE_STREAM),
            task_type="classification", max_relative_drop=0.10,
        )
        assert report.passed

    def test_memorizer_caught(self, dataset):
        custom = SyntheticImageNet(size=250, seed=777)
        memorized = {i: dataset.get_label(i) for i in range(len(dataset))}

        def sut_for(qsl):
            return MemorizerSUT(qsl, memorized)

        report = run_custom_dataset_test(
            sut_for, dataset, custom,
            TestSettings(scenario=Scenario.SINGLE_STREAM),
            task_type="classification", max_relative_drop=0.10,
        )
        assert not report.passed
        assert report.relative_drop > 0.5
