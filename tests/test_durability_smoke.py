"""Chaos smoke: SIGKILL a journaled run mid-flight, resume it exactly.

The tier-1 face of ``benchmarks/test_ext_durability.py``: a child
process runs a journaled benchmark and kills itself — ``SIGKILL``, no
cleanup, no atexit — after a fixed number of journal appends (the
``on_append`` hook is the deterministic kill switch).  The parent
asserts the child actually died by signal, then resumes from whatever
the journal holds and requires the result to be fingerprint-identical
to an uninterrupted golden run.  Kept seeded and small so the whole
matrix stays inside the tier-1 wall-clock budget (< 5 s).

Select or deselect these with the ``chaos`` marker (see CONTRIBUTING).
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.durability import (
    RunJournal,
    read_run_journal,
    resume_run,
    run_fingerprint,
)

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = pytest.mark.chaos

SETTINGS = TestSettings(
    scenario=Scenario.SERVER, server_target_qps=400.0,
    server_latency_bound=0.05, min_query_count=60, min_duration=0.0,
    watchdog_timeout=30.0, seed=13)


def _golden():
    return run_benchmark(FixedLatencySUT(0.002), EchoQSL(), SETTINGS)


def _run_until_killed(path, kill_after):
    """Child body: journal a run, SIGKILL ourselves mid-flight."""

    def kill_switch(record_count):
        if record_count >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    journal = RunJournal(path, on_append=kill_switch)
    run_benchmark(FixedLatencySUT(0.002), EchoQSL(), SETTINGS,
                  journal=journal)
    os._exit(42)  # unreachable when the kill switch fires


@pytest.mark.parametrize("kill_after", [10, 45, 100],
                         ids=["early", "mid", "late"])
def test_sigkilled_run_resumes_to_the_golden_result(tmp_path, kill_after):
    started = time.monotonic()
    reference = run_fingerprint(_golden())

    path = str(tmp_path / f"kill{kill_after}.rjnl")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_run_until_killed, args=(path, kill_after))
    child.start()
    child.join(timeout=30.0)
    assert child.exitcode == -signal.SIGKILL  # died by signal, not exit

    state = read_run_journal(path)
    assert not state.ended  # the interruption is visible on disk
    assert len(state.issued) >= 1

    resumed = resume_run(path, FixedLatencySUT(0.002), EchoQSL())
    assert run_fingerprint(resumed) == reference

    sealed = read_run_journal(path)
    assert sealed.ended and not sealed.truncated
    assert len(sealed.issued) == 60
    assert time.monotonic() - started < 5.0


def test_unkilled_child_exits_normally(tmp_path):
    """The kill switch, not the harness, terminates the child — with the
    switch beyond the journal's record count the run completes."""
    path = str(tmp_path / "survivor.rjnl")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_run_until_killed, args=(path, 10_000))
    child.start()
    child.join(timeout=30.0)
    assert child.exitcode == 42
    assert read_run_journal(path).ended
