"""Chaos smoke: every fault class, every scenario, 100% injection rate.

The hang-safety contract of the hardened referee: no matter how the SUT
misbehaves, the run terminates within the watchdog bound and comes back
``valid=False`` with a reason naming the fault class.  This is the
fast tier-1 version of the full degradation study in
``benchmarks/test_ext_fault_injection.py``.
"""

import time

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.faults import FaultPlan, FaultType, FaultySUT

from tests.conftest import EchoQSL, FixedLatencySUT

WATCHDOG = 10.0

#: Wall-clock budget per faulted run; virtual time makes even the
#: watchdog-bounded runs near-instant, so this is a generous ceiling
#: that still catches a real (non-virtual) hang.
WALL_CLOCK_BUDGET = 10.0

#: For each fault class, a substring that must appear in at least one
#: INVALID reason when the fault fires on every query.
EXPECTED_REASON = {
    FaultType.DROP: "never completed",
    FaultType.DUPLICATE: "duplicate completions",
    FaultType.UNSOLICITED: "unsolicited responses",
    FaultType.MISSIZED: "malformed responses",
    FaultType.CORRUPT: "malformed responses",
    FaultType.DELAY: "watchdog fired",
    FaultType.STALL: "never completed",
}


def settings_for(scenario: Scenario) -> TestSettings:
    common = dict(min_duration=0.0, watchdog_timeout=WATCHDOG)
    if scenario is Scenario.SINGLE_STREAM:
        return TestSettings(scenario=scenario, min_query_count=8, **common)
    if scenario is Scenario.SERVER:
        return TestSettings(scenario=scenario, server_target_qps=100.0,
                            server_latency_bound=0.05, min_query_count=8,
                            **common)
    if scenario is Scenario.MULTI_STREAM:
        return TestSettings(scenario=scenario, multistream_interval=0.05,
                            multistream_samples_per_query=2,
                            min_query_count=8, **common)
    return TestSettings(scenario=scenario, offline_sample_count=16, **common)


@pytest.mark.parametrize("scenario", list(Scenario),
                         ids=lambda s: s.value)
@pytest.mark.parametrize("fault", list(FaultType),
                         ids=lambda f: f.value)
def test_total_fault_rate_terminates_invalid(scenario, fault):
    # DELAY needs spikes far beyond the watchdog so the run visibly
    # wedges; everything else uses the plan defaults.
    plan_kwargs = {"delay_scale": 1e6} if fault is FaultType.DELAY else {}
    plan = FaultPlan.single(fault, 1.0, **plan_kwargs)
    sut = FaultySUT(FixedLatencySUT(0.005), plan)

    started = time.monotonic()
    result = run_benchmark(sut, EchoQSL(total=64), settings_for(scenario))
    elapsed = time.monotonic() - started

    assert result is not None  # the run terminated and reported
    assert elapsed < WALL_CLOCK_BUDGET
    assert not result.valid
    assert any(EXPECTED_REASON[fault] in reason
               for reason in result.validity.reasons), result.validity.reasons
    # The event loop never ran past the watchdog bound.
    assert result.stats.watchdog_time <= WATCHDOG


def test_chaos_matrix_is_exhaustive():
    assert set(EXPECTED_REASON) == set(FaultType)
