"""Tier-1 streaming smoke: seeded determinism, SLO verdicts, misbehavior.

Fast virtual-clock checks of the guarantees the CI gate cares about:
same-seed streaming runs are bit-identical (summary text included),
token-level SLO targets produce VALID/INVALID verdicts with the tail
budget applied, and out-of-order or truncated streams are classified as
misbehavior.  The deep behavioral suites live in ``tests/streaming/``;
these carry the ``streaming`` marker so ``-m streaming`` selects the
whole tier.  See ``docs/streaming.md``.
"""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.loadgen import run_benchmark
from repro.core.query import StreamChunk
from repro.core.sut import SutBase
from repro.durability import run_fingerprint
from repro.streaming import StreamModel, streaming_echo

from tests.conftest import EchoQSL, FixedLatencySUT

pytestmark = pytest.mark.streaming


def settings(queries=100, seed=0, **overrides):
    base = dict(
        scenario=Scenario.SERVER, server_target_qps=200.0,
        server_latency_bound=0.5, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
        ttft_target_ns=50_000_000, tpot_target_ns=5_000_000,
    )
    base.update(overrides)
    return TestSettings(**base)


def streaming_run(run_settings=None, **sut_kwargs):
    sut_kwargs.setdefault("latency", 0.001)
    sut_kwargs.setdefault("model", StreamModel(seed=7))
    return run_benchmark(
        streaming_echo(**sut_kwargs), EchoQSL(),
        run_settings if run_settings is not None else settings())


def test_seeded_streaming_run_is_bit_identical():
    first, second = streaming_run(), streaming_run()
    assert first.valid
    assert first.summary() == second.summary()
    assert run_fingerprint(first) == run_fingerprint(second)
    stream = first.metrics.stream
    assert stream is not None
    assert stream.streamed_query_count == first.metrics.query_count
    assert stream.goodput > 0
    for line in ("Streamed queries", "TTFT p50/p90/p99",
                 "TPOT p50/p90/p99", "Goodput (q/s)"):
        assert line in first.summary()


def test_slo_targets_gate_validity():
    # Generous targets: all compliant, goodput equals completion rate.
    good = streaming_run()
    assert good.valid
    assert good.metrics.stream.slo_compliant_count == \
        good.metrics.query_count
    # An unmeetable TPOT target (inter-token delay is 0.5 ms, target
    # 0.1 ms) must invalidate the run with a reason naming the target.
    bad = streaming_run(settings(tpot_target_ns=100_000))
    assert not bad.valid
    assert any("TPOT target" in reason for reason in bad.validity.reasons)
    assert bad.metrics.stream.goodput == 0.0


def test_non_streaming_suts_are_unchanged():
    result = run_benchmark(
        FixedLatencySUT(latency=0.002), EchoQSL(),
        settings(ttft_target_ns=None, tpot_target_ns=None))
    assert result.valid
    assert result.metrics.stream is None
    assert "Streamed queries" not in result.summary()


class _MisbehavingStreamer(SutBase):
    """Streams two chunks in the wrong order, or truncates the stream."""

    def __init__(self, mode: str) -> None:
        super().__init__(f"misbehaving[{mode}]")
        self.mode = mode

    def issue_query(self, query) -> None:
        from repro.core.query import QuerySampleResponse

        if self.mode == "out-of-order":
            self.emit_chunk(query, StreamChunk(query.id, 1, last=True))
        else:  # truncated: chunks flow but the final chunk never comes
            self.emit_chunk(query, StreamChunk(query.id, 0))
        responses = [
            QuerySampleResponse(s.id, s.index) for s in query.samples
        ]
        self.loop.schedule_after(
            0.001, lambda: self.complete(query, responses))


@pytest.mark.parametrize("mode,expected", [
    ("out-of-order", "stream chunk anomalies"),
    ("truncated", "truncated streams"),
])
def test_stream_misbehavior_invalidates_the_run(mode, expected):
    result = run_benchmark(
        _MisbehavingStreamer(mode), EchoQSL(), settings(queries=20))
    assert not result.valid
    assert any(expected in reason for reason in result.validity.reasons), \
        result.validity.reasons
