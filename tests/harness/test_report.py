"""Markdown report generation."""

import pytest

from repro.core import Scenario, Task
from repro.harness.experiments import SubmissionRecord
from repro.harness.report import (
    coverage_section,
    degradation_section,
    generate_report,
    results_listing,
    spread_section,
)
from repro.sut.device import ProcessorType
from repro.sut.fleet import build_fleet


def record(system, task, scenario, metric, processor=ProcessorType.GPU):
    return SubmissionRecord(
        system=system, processor=processor, framework="TensorRT",
        category="available", task=task, scenario=scenario,
        metric=metric, valid=True,
    )


@pytest.fixture
def records():
    return [
        record("a", Task.IMAGE_CLASSIFICATION_HEAVY, Scenario.SERVER, 800.0),
        record("a", Task.IMAGE_CLASSIFICATION_HEAVY, Scenario.OFFLINE,
               1000.0),
        record("b", Task.IMAGE_CLASSIFICATION_HEAVY, Scenario.OFFLINE, 10.0),
        record("b", Task.MACHINE_TRANSLATION, Scenario.SINGLE_STREAM, 0.02),
    ]


def test_coverage_section_counts(records):
    table = coverage_section(records)
    assert "| resnet50-v1.5 | 0 | 0 | 1 | 2 | 3 |" in table
    assert "| **total** | 1 | 0 | 1 | 2 | 4 |" in table


def test_degradation_section_ratio(records):
    table = degradation_section(records)
    assert "| resnet50-v1.5 | 1 | 0.80 | 0.80 | 0.80 |" in table


def test_spread_section(records):
    table = spread_section(records)
    assert "| resnet50-v1.5 | O | 2 | 100.0x |" in table


def test_listing_formats_latency_in_ms(records):
    listing = results_listing(records)
    assert "20 ms (p90)" in listing


def test_listing_limit(records):
    listing = results_listing(records, limit=2)
    assert "(2 more)" in listing


def test_generate_report_has_all_sections(records):
    report = generate_report(records, systems=build_fleet(),
                             title="Test report")
    for heading in ("# Test report", "Table VI", "Figure 5", "Figure 7",
                    "Figure 6", "Figure 8", "Table VII",
                    "Individual results"):
        assert heading in report
    assert "TensorRT" in report
