"""Experimental extensions: burst mode and multitenancy."""

import pytest

from repro.core import Scenario, Task, TestMode, TestSettings
from repro.core.experimental import (
    BurstSettings,
    find_max_burst_rate,
    run_burst_benchmark,
)
from repro.harness.multitenant import (
    TenantSpec,
    all_tenants_valid,
    run_multitenant,
)
from repro.sut.device import ComputeMotif, DeviceModel, ProcessorType
from repro.sut.fleet import task_workload
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


class NullQSL:
    name = "ext"
    total_sample_count = 4096
    performance_sample_count = 1024

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return None


def make_device(**kwargs):
    defaults = dict(
        name="ext-dev", processor=ProcessorType.GPU, peak_gops=40_000.0,
        base_utilization=0.06, saturation_gops=150.0, overhead=0.5e-3,
        max_batch=64,
        structure_efficiency={ComputeMotif.RNN: 0.3},
    )
    defaults.update(kwargs)
    return DeviceModel(**defaults)


class TestBurstSettings:
    def test_defaults_from_task_rules(self):
        burst = BurstSettings(task=Task.IMAGE_CLASSIFICATION_HEAVY)
        assert burst.resolved_bound == 0.015
        assert burst.average_qps == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstSettings(task=Task.IMAGE_CLASSIFICATION_HEAVY, burst_size=0)
        with pytest.raises(ValueError):
            BurstSettings(task=Task.IMAGE_CLASSIFICATION_HEAVY,
                          bursts_per_second=0.0)


class TestBurstRuns:
    def _burst(self, **kwargs):
        defaults = dict(task=Task.IMAGE_CLASSIFICATION_HEAVY, burst_size=16,
                        bursts_per_second=10.0, min_query_count=1_000,
                        min_duration=1.5)
        defaults.update(kwargs)
        return BurstSettings(**defaults)

    def test_valid_run_at_low_rate(self):
        sut = SimulatedSUT(make_device(), WorkloadProfile(8.2))
        result = run_burst_benchmark(sut, NullQSL(), self._burst())
        assert result.valid
        assert result.metrics.query_count >= 1_000

    def test_queries_arrive_in_bursts(self):
        sut = SimulatedSUT(make_device(), WorkloadProfile(8.2))
        result = run_burst_benchmark(sut, NullQSL(), self._burst())
        issues = sorted(r.issue_time for r in result.log.records())
        # Within a burst, queries share an issue instant.
        same_instant = sum(
            1 for a, b in zip(issues, issues[1:]) if b - a < 1e-12)
        assert same_instant >= result.metrics.query_count * 0.8

    def test_overload_is_invalid(self):
        slow = make_device(peak_gops=400.0)
        sut = SimulatedSUT(slow, WorkloadProfile(8.2))
        result = run_burst_benchmark(
            sut, NullQSL(), self._burst(bursts_per_second=100.0))
        assert not result.valid

    @pytest.mark.slow
    def test_burst_capacity_below_smooth_server_capacity(self):
        """Bursty traffic at equal average rate is strictly harder than
        smooth Poisson arrivals."""
        from repro.harness.tuning import QUICK_SCALE, find_max_server_qps

        device = make_device()
        workload = WorkloadProfile(8.2)
        smooth = find_max_server_qps(
            lambda: SimulatedSUT(device, workload), NullQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        bursty = find_max_burst_rate(
            lambda: SimulatedSUT(device, workload), NullQSL(),
            self._burst(burst_size=16))
        assert bursty is not None
        assert bursty < smooth.value

    def test_oversized_bursts_can_never_qualify(self):
        """A burst whose minimum service time exceeds the bound fails
        at every rate - burst size itself is a latency floor."""
        rate = find_max_burst_rate(
            lambda: SimulatedSUT(make_device(), WorkloadProfile(8.2)),
            NullQSL(), self._burst(burst_size=64))
        assert rate is None

    def test_hopeless_bound_returns_none(self):
        glacial = make_device(peak_gops=50.0)
        rate = find_max_burst_rate(
            lambda: SimulatedSUT(glacial, WorkloadProfile(8.2)), NullQSL(),
            self._burst())
        assert rate is None


def tenant(name, task, qps, seed=0):
    return TenantSpec(
        name=name,
        workload=task_workload(task),
        settings=TestSettings(
            scenario=Scenario.SERVER, task=task, server_target_qps=qps,
            min_query_count=800, min_duration=1.0, seed=seed,
        ),
    )


class TestMultiTenant:
    def test_two_light_tenants_both_valid(self):
        results = run_multitenant(make_device(), [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, 500.0),
            tenant("mobilenet", Task.IMAGE_CLASSIFICATION_LIGHT, 500.0,
                   seed=5),
        ])
        assert set(results) == {"resnet", "mobilenet"}
        assert all_tenants_valid(results)

    def test_tenants_validated_independently(self):
        """An overloaded tenant fails its own QoS; the light one is
        degraded by interference but may still qualify."""
        results = run_multitenant(make_device(), [
            tenant("greedy", Task.IMAGE_CLASSIFICATION_HEAVY, 50_000.0),
            tenant("modest", Task.IMAGE_CLASSIFICATION_LIGHT, 50.0, seed=5),
        ])
        assert not results["greedy"].valid

    def test_colocation_interference(self):
        """A rate that is comfortable alone fails when co-located with a
        heavy neighbour - the QoS-maintenance challenge the paper's
        multitenancy mode is about."""
        device = make_device()
        rate = 3_000.0
        alone = run_multitenant(device, [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, rate),
        ])
        assert alone["resnet"].valid

        together = run_multitenant(device, [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, rate),
            tenant("gnmt", Task.MACHINE_TRANSLATION, 600.0, seed=9),
        ])
        resnet = together["resnet"]
        assert (not resnet.valid) or (
            resnet.metrics.latency_p99
            > alone["resnet"].metrics.latency_p99)

    def test_batches_never_mix_tenants(self):
        from repro.harness.multitenant import _SharedEnginePool
        device = make_device()
        results = run_multitenant(device, [
            tenant("a", Task.IMAGE_CLASSIFICATION_HEAVY, 300.0),
            tenant("b", Task.IMAGE_CLASSIFICATION_LIGHT, 300.0, seed=5),
        ])
        # Indirect check: both tenants completed everything.
        assert all(r.log.outstanding == 0 for r in results.values())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            run_multitenant(make_device(), [
                tenant("x", Task.IMAGE_CLASSIFICATION_HEAVY, 10.0),
                tenant("x", Task.IMAGE_CLASSIFICATION_LIGHT, 10.0),
            ])

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ValueError):
            run_multitenant(make_device(), [])

    def test_accuracy_mode_rejected(self):
        spec = TenantSpec(
            name="acc", workload=task_workload(Task.IMAGE_CLASSIFICATION_HEAVY),
            settings=TestSettings(scenario=Scenario.SERVER,
                                  task=Task.IMAGE_CLASSIFICATION_HEAVY,
                                  mode=TestMode.ACCURACY),
        )
        with pytest.raises(ValueError):
            run_multitenant(make_device(), [spec])


class TestMultiTenantSeedIsolation:
    """Back-to-back multitenant runs in one process must replay the
    same per-tenant arrival schedules (ISSUE 4 satellite: the arrival
    SeedSequence is rebuilt per driver, never shared or continued)."""

    def _issue_times(self):
        results = run_multitenant(make_device(), [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, 500.0),
            tenant("mobilenet", Task.IMAGE_CLASSIFICATION_LIGHT, 500.0,
                   seed=5),
        ])
        return {
            name: [r.issue_time for r in result.log.completed_records()]
            for name, result in results.items()
        }

    def test_sequential_runs_reproduce_arrivals(self):
        first = self._issue_times()
        second = self._issue_times()
        assert first == second
        # Different tenant seeds produced genuinely different traffic.
        assert first["resnet"] != first["mobilenet"]
