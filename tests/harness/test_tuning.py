"""Capacity searches against devices with known analytic limits."""

import pytest

from repro.core import Scenario, Task, TestSettings
from repro.harness.tuning import (
    FULL_SCALE,
    QUICK_SCALE,
    RunScale,
    find_max_multistream_n,
    find_max_server_qps,
    measure_offline,
    measure_single_stream,
)
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile

from tests.conftest import EchoQSL


def make_device(**kwargs):
    defaults = dict(
        name="dev", processor=ProcessorType.GPU, peak_gops=10_000.0,
        base_utilization=0.5, saturation_gops=20.0, overhead=0.5e-3,
        max_batch=16,
    )
    defaults.update(kwargs)
    return DeviceModel(**defaults)


def sut_factory(device=None, workload=None):
    device = device or make_device()
    workload = workload or WorkloadProfile(8.2)
    return lambda: SimulatedSUT(device, workload)


class TestRunScale:
    def test_full_scale_preserves_rule_minimums(self):
        settings = TestSettings(scenario=Scenario.SERVER,
                                task=Task.IMAGE_CLASSIFICATION_HEAVY)
        scaled = FULL_SCALE.apply(settings)
        assert scaled.resolved_min_query_count == 270_336
        assert scaled.resolved_min_duration == 60.0

    def test_quick_scale_shrinks_but_keeps_structure(self):
        settings = TestSettings(scenario=Scenario.SERVER,
                                task=Task.IMAGE_CLASSIFICATION_HEAVY)
        scaled = QUICK_SCALE.apply(settings)
        assert scaled.resolved_min_query_count == 270_336 // 64
        assert scaled.resolved_min_duration == 2.0
        # The latency bound is untouched - only statistical weight shrinks.
        assert scaled.resolved_server_latency_bound == 0.015

    def test_offline_floor(self):
        settings = TestSettings(scenario=Scenario.OFFLINE,
                                task=Task.IMAGE_CLASSIFICATION_HEAVY)
        scaled = RunScale(query_count_factor=1e-6).apply(settings)
        assert scaled.resolved_offline_samples == 1024


class TestSingleStreamAndOffline:
    def test_single_stream_latency_matches_device(self):
        device = make_device()
        result = measure_single_stream(
            sut_factory(device), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert result.valid
        expected = device.service_time(8.2, 1)
        assert result.primary_metric == pytest.approx(expected, rel=0.01)

    def test_offline_throughput_near_best_batch(self):
        device = make_device()
        result = measure_offline(
            sut_factory(device), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert result.valid
        best = device.best_offline_throughput(8.2)
        assert result.primary_metric == pytest.approx(best, rel=0.10)


class TestServerSearch:
    def test_found_capacity_below_offline_and_substantial(self):
        device = make_device()
        tuned = find_max_server_qps(
            sut_factory(device), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert tuned is not None
        offline = device.best_offline_throughput(8.2)
        assert 0.2 * offline < tuned.value <= offline * 1.02
        assert tuned.result.valid

    def test_impossible_bound_returns_none(self):
        # Service time at batch 1 exceeds the 15 ms ResNet bound.
        slow = make_device(peak_gops=100.0)
        tuned = find_max_server_qps(
            sut_factory(slow), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert tuned is None

    @pytest.mark.slow
    def test_search_is_reproducible(self):
        device = make_device()
        a = find_max_server_qps(sut_factory(device), EchoQSL(),
                                Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        b = find_max_server_qps(sut_factory(device), EchoQSL(),
                                Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert a.value == b.value


class TestMultiStreamSearch:
    @pytest.mark.slow
    def test_found_n_matches_interval_capacity(self):
        device = make_device()
        tuned = find_max_multistream_n(
            sut_factory(device), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert tuned is not None
        n = int(tuned.value)
        interval = 0.050
        # One more stream must not fit in the interval.
        assert device.service_time(8.2, min(n, device.max_batch)) <= interval
        # Sanity: servicing N+1 samples (possibly two dispatches) takes
        # longer than the interval, so N is genuinely maximal-ish.
        assert n >= 1

    def test_hopeless_system_returns_none(self):
        slow = make_device(peak_gops=50.0)
        tuned = find_max_multistream_n(
            sut_factory(slow), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE)
        assert tuned is None

    def test_max_n_cap_respected(self):
        fast = make_device(peak_gops=1e7, max_batch=100_000)
        tuned = find_max_multistream_n(
            sut_factory(fast), EchoQSL(),
            Task.IMAGE_CLASSIFICATION_HEAVY, QUICK_SCALE, max_n=16)
        assert tuned.value == 16
