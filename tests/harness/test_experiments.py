"""Fleet experiment harness and result views."""

import pytest

from repro.core import Scenario, Task
from repro.harness.experiments import (
    FLEET_SCALE,
    SubmissionRecord,
    relative_performance,
    result_matrix,
    results_per_processor,
    results_per_task,
    run_submission,
    server_offline_ratios,
)
from repro.sut.device import ProcessorType
from repro.sut.fleet import build_fleet


@pytest.fixture(scope="module")
def one_system():
    systems = {s.name: s for s in build_fleet()}
    return systems["dc-gpu-b"]


class TestRunSubmission:
    def test_offline_record(self, one_system):
        record = run_submission(one_system, Task.IMAGE_CLASSIFICATION_HEAVY,
                                Scenario.OFFLINE, FLEET_SCALE)
        assert record is not None
        assert record.valid
        assert record.metric > 100
        assert record.processor is ProcessorType.GPU
        assert record.framework == "TensorRT"

    def test_single_stream_performance_inverts_latency(self, one_system):
        record = run_submission(one_system, Task.IMAGE_CLASSIFICATION_HEAVY,
                                Scenario.SINGLE_STREAM, FLEET_SCALE)
        assert record.performance == pytest.approx(1.0 / record.metric)

    @pytest.mark.slow
    def test_server_record(self, one_system):
        record = run_submission(one_system, Task.IMAGE_CLASSIFICATION_HEAVY,
                                Scenario.SERVER, FLEET_SCALE)
        assert record is not None
        assert record.metric > 10


def _record(system, task, scenario, metric):
    return SubmissionRecord(
        system=system, processor=ProcessorType.CPU, framework="X",
        category="available", task=task, scenario=scenario,
        metric=metric, valid=True,
    )


class TestViews:
    def test_result_matrix_counts(self):
        records = [
            _record("a", Task.MACHINE_TRANSLATION, Scenario.SERVER, 10),
            _record("b", Task.MACHINE_TRANSLATION, Scenario.SERVER, 20),
            _record("a", Task.IMAGE_CLASSIFICATION_HEAVY, Scenario.OFFLINE, 5),
        ]
        matrix = result_matrix(records)
        assert matrix[Task.MACHINE_TRANSLATION][Scenario.SERVER] == 2
        assert matrix[Task.IMAGE_CLASSIFICATION_HEAVY][Scenario.OFFLINE] == 1
        assert matrix[Task.OBJECT_DETECTION_HEAVY][Scenario.SERVER] == 0

    def test_results_per_task_and_processor(self):
        records = [
            _record("a", Task.MACHINE_TRANSLATION, Scenario.SERVER, 10),
            _record("a", Task.MACHINE_TRANSLATION, Scenario.OFFLINE, 10),
        ]
        assert results_per_task(records)[Task.MACHINE_TRANSLATION] == 2
        per_proc = results_per_processor(records)
        assert per_proc[ProcessorType.CPU][Task.MACHINE_TRANSLATION] == 2

    def test_server_offline_ratio_pairs_only(self):
        records = [
            _record("a", Task.MACHINE_TRANSLATION, Scenario.SERVER, 40),
            _record("a", Task.MACHINE_TRANSLATION, Scenario.OFFLINE, 100),
            _record("b", Task.MACHINE_TRANSLATION, Scenario.SERVER, 50),
        ]
        ratios = server_offline_ratios(records)
        assert ratios == {"a": {Task.MACHINE_TRANSLATION: 0.4}}

    def test_relative_performance_normalizes_to_slowest(self):
        records = [
            _record("fast", Task.MACHINE_TRANSLATION, Scenario.OFFLINE, 100),
            _record("slow", Task.MACHINE_TRANSLATION, Scenario.OFFLINE, 10),
        ]
        rel = relative_performance(records)
        group = rel[(Task.MACHINE_TRANSLATION, Scenario.OFFLINE)]
        assert group["slow"] == pytest.approx(1.0)
        assert group["fast"] == pytest.approx(10.0)

    def test_relative_performance_single_stream_uses_inverse_latency(self):
        records = [
            _record("fast", Task.MACHINE_TRANSLATION,
                    Scenario.SINGLE_STREAM, 0.01),
            _record("slow", Task.MACHINE_TRANSLATION,
                    Scenario.SINGLE_STREAM, 0.1),
        ]
        rel = relative_performance(records)
        group = rel[(Task.MACHINE_TRANSLATION, Scenario.SINGLE_STREAM)]
        assert group["fast"] == pytest.approx(10.0)
        assert group["slow"] == pytest.approx(1.0)


class TestTables:
    def test_table_formatters_render(self):
        from repro.harness.tables import (
            format_coverage_matrix,
            format_framework_matrix,
            format_table_i,
            format_table_ii,
            format_table_iii,
            format_table_iv,
            format_table_v,
        )
        from repro.sut.fleet import TABLE_VI, TABLE_VII

        assert "ResNet-50 v1.5" in format_table_i()
        assert "Poisson" in format_table_ii()
        assert "250 ms" in format_table_iii()
        assert "270,336" in format_table_iv()
        assert "270K / N" in format_table_v()
        coverage = format_coverage_matrix(TABLE_VI)
        assert "TOTAL" in coverage
        assert "166" not in coverage.splitlines()[0]
        frameworks = format_framework_matrix(TABLE_VII)
        assert "TensorRT" in frameworks
        assert "X" in frameworks
