"""ChaosSchedule / ChaosOrchestrator / DegradedSUT: seeded chaos drills."""

import pytest

from repro.core import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.core.query import Query, QuerySample
from repro.durability import run_fingerprint
from repro.faults import (
    CHAOS_KINDS,
    ChaosEvent,
    ChaosOrchestrator,
    ChaosSchedule,
    DegradedSUT,
)
from repro.fleet import ReplicaSet
from repro.metrics import MetricsRegistry

from tests.conftest import EchoQSL, FixedLatencySUT


def server_settings(queries=400, qps=200.0, bound=0.2, seed=0):
    return TestSettings(
        scenario=Scenario.SERVER, server_target_qps=qps,
        server_latency_bound=bound, min_query_count=queries,
        min_duration=0.0, watchdog_timeout=60.0, seed=seed,
    )


def one_query(query_id=1):
    return Query(id=query_id,
                 samples=(QuerySample(id=query_id, index=0),))


def started_valve(latency=0.010):
    loop = EventLoop(VirtualClock())
    valve = DegradedSUT(FixedLatencySUT(latency=latency))
    deliveries = []
    valve.start_run(loop, lambda q, r: deliveries.append((loop.now, q, r)))
    return loop, valve, deliveries


class TestDegradedSUT:
    def test_healthy_valve_is_transparent(self):
        loop, valve, deliveries = started_valve()
        valve.issue_query(one_query())
        loop.run()
        assert len(deliveries) == 1
        assert deliveries[0][0] == pytest.approx(0.010)
        assert valve.slowed == 0 and valve.blackholed == 0

    def test_degrade_stretches_deliveries_proportionally(self):
        loop, valve, deliveries = started_valve()
        valve.degrade(3.0)
        valve.issue_query(one_query())
        loop.run()
        # 10 ms of backend time is held back by (3 - 1) * 10 ms more.
        assert deliveries[0][0] == pytest.approx(0.030)
        assert valve.slowed == 1
        assert not valve.healthy

    def test_partition_drops_deliveries_but_accepts_issues(self):
        loop, valve, deliveries = started_valve()
        valve.partition()
        valve.issue_query(one_query(1))
        loop.run()
        assert deliveries == []
        assert valve.blackholed == 1
        assert valve.inner.issued == 1
        # Recovery heals future queries; the dropped one stays dropped.
        valve.restore()
        valve.issue_query(one_query(2))
        loop.run()
        assert [q.id for _, q, _ in deliveries] == [2]
        assert valve.healthy

    def test_degrade_validates_the_factor(self):
        with pytest.raises(ValueError, match="factor"):
            DegradedSUT(FixedLatencySUT()).degrade(0.5)

    def test_start_run_resets_to_healthy(self):
        loop, valve, _ = started_valve()
        valve.degrade(8.0)
        valve.partition()
        valve.start_run(loop, lambda q, r: None)
        assert valve.healthy


class TestChaosSchedule:
    def test_same_seed_same_schedule(self):
        kwargs = dict(duration=2.0, replicas=4, zones=2, events=5)
        assert (ChaosSchedule.generate(17, **kwargs).events
                == ChaosSchedule.generate(17, **kwargs).events)
        assert (ChaosSchedule.generate(17, **kwargs).events
                != ChaosSchedule.generate(18, **kwargs).events)

    def test_generated_windows_land_inside_the_run(self):
        schedule = ChaosSchedule.generate(
            3, duration=2.0, replicas=4, zones=2, events=12)
        assert len(schedule.events) == 12
        for event in schedule.events:
            assert event.kind in CHAOS_KINDS
            assert 0.2 <= event.time <= 1.2
            assert event.time + event.duration <= 2.0 * 0.85 + 1e-9
            if event.kind == "zone-outage":
                assert event.target in ("z0", "z1")
            else:
                replica = int(event.target.split(":", 1)[1])
                assert 0 <= replica < 4
            if event.kind == "gray-failure":
                assert 4.0 <= event.severity <= 16.0
        assert list(schedule.events) == sorted(schedule.events)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosSchedule((ChaosEvent(0.1, 0.1, "meteor", "z0"),))
        with pytest.raises(ValueError, match="duration"):
            ChaosSchedule((ChaosEvent(0.1, 0.0, "zone-outage", "z0"),))
        with pytest.raises(ValueError, match="severity"):
            ChaosSchedule(
                (ChaosEvent(0.1, 0.1, "gray-failure", "replica:0", 0.5),))
        with pytest.raises(ValueError, match="replica:N"):
            ChaosSchedule((ChaosEvent(0.1, 0.1, "partition", "z0"),))


def build_chaos_fleet(schedule, *, replicas=4, zones=2, seed=0,
                      registry=None, latency=0.002):
    orchestrator = ChaosOrchestrator(schedule, registry=registry)
    fleet = ReplicaSet(
        orchestrator.wrap_factory(
            lambda i: FixedLatencySUT(latency=latency)),
        initial_replicas=replicas, zones=zones, policy="zone-spread",
        seed=seed, registry=registry)
    orchestrator.bind(fleet)
    return orchestrator, fleet


class TestOrchestrator:
    SCHEDULE = ChaosSchedule((
        ChaosEvent(0.30, 0.40, "gray-failure", "replica:1", 10.0),
        ChaosEvent(0.60, 0.50, "zone-outage", "z0"),
        ChaosEvent(0.90, 0.30, "partition", "replica:3"),
    ))

    def test_unbound_orchestrator_refuses_to_start(self):
        orchestrator = ChaosOrchestrator(self.SCHEDULE)
        with pytest.raises(ValueError, match="bind"):
            orchestrator.start(EventLoop(VirtualClock()), lambda: False)

    def test_missing_valves_are_rejected(self):
        orchestrator = ChaosOrchestrator(self.SCHEDULE)
        fleet = ReplicaSet(lambda i: FixedLatencySUT(),
                           initial_replicas=4)
        loop = EventLoop(VirtualClock())
        fleet.start_run(loop, lambda q, r: None)
        orchestrator.bind(fleet)
        with pytest.raises(ValueError, match="wrap_factory"):
            orchestrator.start(loop, lambda: False)

    def test_schedule_is_applied_and_recovered(self):
        registry = MetricsRegistry()
        orchestrator, fleet = build_chaos_fleet(
            self.SCHEDULE, registry=registry)
        result = run_benchmark(
            fleet, EchoQSL(), server_settings(), services=[orchestrator],
            registry=registry)
        # Partition on replica 3 drops deliveries: those queries miss
        # their attempt deadline and reroute; zero are lost.
        assert len(result.log.completed_records()) == 400
        assert not result.log.failed_records()
        applied = [(d.kind, d.target, d.action) for d in orchestrator.trace
                   if d.action != "hold"]
        assert applied == [
            ("gray-failure", "replica:1", "inject"),
            ("zone-outage", "z0", "inject"),
            ("gray-failure", "replica:1", "recover"),
            ("partition", "replica:3", "inject"),
            ("zone-outage", "z0", "recover"),
            ("partition", "replica:3", "recover"),
        ]
        assert orchestrator.active_faults == 0
        assert all(w.end is not None for w in orchestrator.windows)
        assert fleet.stats.zone_kills == 1
        assert orchestrator.degraded[1].slowed > 0
        assert orchestrator.degraded[3].blackholed > 0
        family = registry.get("chaos_injections_total")
        assert sum(child.value for _, child in family.series()) == 3.0

    def test_every_tick_emits_one_decision(self):
        orchestrator, fleet = build_chaos_fleet(self.SCHEDULE)
        run_benchmark(fleet, EchoQSL(), server_settings(),
                      services=[orchestrator])
        holds = [d for d in orchestrator.trace if d.action == "hold"]
        assert holds and all(
            (d.kind, d.target) == ("", "") for d in holds)
        # active counts are consistent along the trace.
        active = 0
        for decision in orchestrator.trace:
            if decision.action == "inject":
                active += 1
            elif decision.action == "recover":
                active -= 1
            assert decision.active == active

    def test_stop_closes_open_windows(self):
        orchestrator, fleet = build_chaos_fleet(ChaosSchedule((
            ChaosEvent(0.1, 500.0, "gray-failure", "replica:0", 4.0),)))
        loop = EventLoop(VirtualClock())
        fleet.start_run(loop, lambda q, r: None)
        orchestrator.start(loop, lambda: loop.now < 0.3)
        loop.run(until=0.4)
        assert orchestrator.active_faults == 1
        orchestrator.stop()
        assert orchestrator.active_faults == 0
        assert orchestrator.windows[0].end == pytest.approx(0.4)

    def test_same_seed_same_chaos_trace(self):
        def one_run():
            orchestrator, fleet = build_chaos_fleet(self.SCHEDULE, seed=13)
            result = run_benchmark(
                fleet, EchoQSL(), server_settings(seed=13),
                services=[orchestrator])
            return (orchestrator.trace,
                    [(w.kind, w.target, w.start, w.end)
                     for w in orchestrator.windows],
                    run_fingerprint(result))
        assert one_run() == one_run()
