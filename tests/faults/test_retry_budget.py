"""RetryPolicy.total_timeout: the deadline-aware retry budget."""

import pytest

from repro.core.events import EventLoop, VirtualClock
from repro.core.query import Query, QueryFailure, QuerySample
from repro.core.sut import SutBase
from repro.faults import ResilientSUT, RetryPolicy


class BlackholeSUT(SutBase):
    """Accepts every query and never answers."""

    def __init__(self):
        super().__init__("blackhole")
        self.attempts = 0

    def issue_query(self, query):
        self.attempts += 1

    def flush(self):
        pass


def run_one_query(policy):
    sut = ResilientSUT(BlackholeSUT(), policy)
    loop = EventLoop(VirtualClock())
    outcomes = []
    sut.start_run(loop, lambda q, r: outcomes.append((q, r)))
    sut.issue_query(Query(id=1, samples=(QuerySample(id=1, index=0),)))
    loop.run()
    assert len(outcomes) == 1
    return sut, loop, outcomes[0][1]


class TestWorstCaseLatency:
    def test_uncapped_is_attempts_plus_backoff_ceilings(self):
        policy = RetryPolicy(max_attempts=3, attempt_timeout=0.1,
                             backoff_base=0.01, backoff_factor=2.0)
        # 3 x 0.1 + (0.01 + 0.02) between attempts.
        assert policy.worst_case_latency() == pytest.approx(0.33)

    def test_total_timeout_caps_the_worst_case(self):
        policy = RetryPolicy(max_attempts=10, attempt_timeout=0.1,
                             backoff_base=0.01, total_timeout=0.25)
        assert policy.worst_case_latency() == 0.25

    def test_validation_requires_one_attempt_to_fit(self):
        with pytest.raises(ValueError, match="total_timeout"):
            RetryPolicy(attempt_timeout=0.2, total_timeout=0.1)


class TestForDeadline:
    def test_trims_attempts_until_the_worst_case_fits(self):
        policy = RetryPolicy.for_deadline(
            0.5, max_attempts=10, attempt_timeout=0.2,
            backoff_base=0.01)
        assert policy.total_timeout == 0.5
        assert policy.max_attempts == 2
        capless = RetryPolicy(max_attempts=policy.max_attempts,
                              attempt_timeout=0.2, backoff_base=0.01)
        assert capless.worst_case_latency() <= 0.5

    def test_keeps_all_attempts_when_they_fit(self):
        policy = RetryPolicy.for_deadline(
            1.0, max_attempts=3, attempt_timeout=0.1,
            backoff_base=0.0)
        assert policy.max_attempts == 3

    def test_rejects_an_attempt_timeout_larger_than_the_deadline(self):
        with pytest.raises(ValueError, match="fit"):
            RetryPolicy.for_deadline(0.1, attempt_timeout=0.5)

    def test_floors_at_one_attempt(self):
        policy = RetryPolicy.for_deadline(
            0.1, max_attempts=8, attempt_timeout=0.1,
            backoff_base=0.05)
        assert policy.max_attempts == 1


class TestBudgetEnforcement:
    def test_query_resolves_at_the_budget_not_attempts_times_timeout(self):
        # 100 attempts x 50 ms would dangle for 5 s; the budget walls
        # the query at 120 ms.
        policy = RetryPolicy(max_attempts=100, attempt_timeout=0.05,
                             backoff_base=0.0, jitter="none",
                             total_timeout=0.12)
        sut, loop, response = run_one_query(policy)
        assert isinstance(response, QueryFailure)
        assert "retry budget exhausted" in response.reason
        assert loop.now == pytest.approx(0.12)
        # Two full attempts plus the clamped 20 ms remainder.
        assert sut.inner.attempts == 3

    def test_backoff_that_overruns_the_budget_is_clamped(self):
        policy = RetryPolicy(max_attempts=10, attempt_timeout=0.05,
                             backoff_base=1.0, jitter="none",
                             total_timeout=0.5)
        sut, loop, response = run_one_query(policy)
        assert isinstance(response, QueryFailure)
        assert "retry budget exhausted" in response.reason
        # Sleeping the full 1 s backoff would schedule the retry past
        # the budget; the clamp shortens it to 0.40 s so the second
        # attempt still gets its full 50 ms slice and the query
        # resolves exactly at the wall.
        assert loop.now == pytest.approx(0.5)
        assert sut.inner.attempts == 2

    def test_remainder_smaller_than_an_attempt_retries_immediately(self):
        policy = RetryPolicy(max_attempts=10, attempt_timeout=0.05,
                             backoff_base=1.0, jitter="none",
                             total_timeout=0.08)
        sut, loop, response = run_one_query(policy)
        assert isinstance(response, QueryFailure)
        assert "retry budget exhausted" in response.reason
        # After the first lost attempt only 30 ms of budget remain -
        # less than attempt_timeout - so the backoff clamps to zero and
        # the final attempt runs at once with the 30 ms remainder.
        assert loop.now == pytest.approx(0.08)
        assert sut.inner.attempts == 2

    def test_uncapped_behavior_is_unchanged(self):
        policy = RetryPolicy(max_attempts=4, attempt_timeout=0.05,
                             backoff_base=0.0, jitter="none")
        sut, loop, response = run_one_query(policy)
        assert isinstance(response, QueryFailure)
        assert "after 4 attempts" in response.reason
        assert loop.now == pytest.approx(0.2)
        assert sut.inner.attempts == 4
