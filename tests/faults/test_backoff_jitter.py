"""Full-jitter retry backoff: seeded, decorrelated, bounded."""

import numpy as np
import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.faults import FaultPlan, FaultType, FaultySUT, ResilientSUT
from repro.faults.resilient import RetryPolicy

from tests.conftest import EchoQSL, FixedLatencySUT

POLICY = RetryPolicy(backoff_base=0.002, backoff_factor=2.0)


class TestDraws:
    def test_jitter_is_a_pure_function_of_seed_query_attempt(self):
        a = POLICY.jittered_backoff(2, seed=7, query_id=31)
        b = POLICY.jittered_backoff(2, seed=7, query_id=31)
        assert a == b

    def test_draw_lands_inside_the_ceiling(self):
        for attempt in range(4):
            ceiling = POLICY.backoff(attempt)
            for qid in range(20):
                d = POLICY.jittered_backoff(attempt, seed=3, query_id=qid)
                assert 0.0 <= d < ceiling

    def test_jitter_none_returns_the_deterministic_ceiling(self):
        policy = RetryPolicy(jitter="none", backoff_base=0.002)
        assert policy.jittered_backoff(1, seed=9, query_id=5) == \
            policy.backoff(1)

    def test_unknown_jitter_mode_is_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter="sometimes")

    def test_zero_base_backoff_stays_zero(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.jittered_backoff(3, seed=1, query_id=1) == 0.0


class TestDecorrelation:
    """The regression the jitter exists for: concurrent retriers must
    not retry in lockstep, and the decorrelation must hold across
    queries, attempts, and seeds."""

    def test_queries_spread_uniformly_below_the_ceiling(self):
        attempt = 2
        ceiling = POLICY.backoff(attempt)
        draws = np.array([
            POLICY.jittered_backoff(attempt, seed=0, query_id=qid)
            for qid in range(500)
        ])
        # Practically all distinct (a lockstep stampede would collapse
        # them onto one value) and filling the interval, not a corner.
        assert len(np.unique(draws)) >= 495
        assert draws.min() < 0.1 * ceiling
        assert draws.max() > 0.9 * ceiling
        assert 0.4 * ceiling < draws.mean() < 0.6 * ceiling

    def test_draws_do_not_trend_with_the_query_id(self):
        attempt = 1
        draws = np.array([
            POLICY.jittered_backoff(attempt, seed=0, query_id=qid)
            for qid in range(500)
        ])
        corr = np.corrcoef(np.arange(500), draws)[0, 1]
        assert abs(corr) < 0.15

    def test_attempts_of_one_query_are_mutually_decorrelated(self):
        # Same query retried repeatedly must not reuse its first draw
        # scaled up - each attempt gets an independent stream.
        fractions = [
            POLICY.jittered_backoff(a, seed=5, query_id=77)
            / POLICY.backoff(a)
            for a in range(6)
        ]
        assert len(set(round(f, 9) for f in fractions)) == 6

    def test_distinct_seeds_yield_distinct_schedules(self):
        a = [POLICY.jittered_backoff(1, seed=1, query_id=q)
             for q in range(50)]
        b = [POLICY.jittered_backoff(1, seed=2, query_id=q)
             for q in range(50)]
        assert a != b


class TestEndToEnd:
    def test_retried_run_is_reproducible_for_a_fixed_seed(self):
        def run():
            plan = FaultPlan.single(FaultType.DROP, 0.3, seed=11)
            sut = ResilientSUT(FaultySUT(FixedLatencySUT(0.002), plan),
                               RetryPolicy(attempt_timeout=0.02), seed=4)
            settings = TestSettings(
                scenario=Scenario.SINGLE_STREAM, min_query_count=64,
                min_duration=0.0, seed=4)
            result = run_benchmark(sut, EchoQSL(), settings)
            return ([r.completion_time for r in result.log.records()],
                    sut.stats.retries)

        first = run()
        second = run()
        assert first == second
        assert first[1] > 0  # the drops actually forced retries

    def test_sut_seed_perturbs_only_the_retry_tail(self):
        def latencies(sut_seed):
            plan = FaultPlan.single(FaultType.DROP, 0.3, seed=11)
            sut = ResilientSUT(FaultySUT(FixedLatencySUT(0.002), plan),
                               RetryPolicy(attempt_timeout=0.02),
                               seed=sut_seed)
            settings = TestSettings(
                scenario=Scenario.SINGLE_STREAM, min_query_count=64,
                min_duration=0.0, seed=4)
            result = run_benchmark(sut, EchoQSL(), settings)
            return [r.completion_time for r in result.log.records()]

        base, other = latencies(0), latencies(1)
        # Clean queries (no retry) complete identically; retried ones
        # moved because their backoff draws come from the new seed.
        assert base != other
        same = sum(1 for x, y in zip(base, other) if x == y)
        assert same > 0
