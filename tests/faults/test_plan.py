"""FaultPlan validation and FaultInjector determinism."""

import pytest

from repro.faults import (
    TRANSIENT_FAULTS,
    FaultInjector,
    FaultPlan,
    FaultType,
)


class TestPlanValidation:
    def test_empty_plan_is_fine(self):
        assert FaultPlan().total_rate == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan(rates={FaultType.DROP: -0.1})

    def test_rate_above_one_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan(rates={FaultType.DROP: 1.5})

    def test_rates_summing_above_one_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(rates={FaultType.DROP: 0.6, FaultType.DELAY: 0.6})

    def test_non_fault_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan(rates={"drop": 0.1})

    def test_bad_delay_scale_rejected(self):
        with pytest.raises(ValueError, match="delay_scale"):
            FaultPlan(delay_scale=0.0)

    def test_negative_duplicate_lag_rejected(self):
        with pytest.raises(ValueError, match="duplicate_lag"):
            FaultPlan(duplicate_lag=-0.001)

    def test_single_constructor(self):
        plan = FaultPlan.single(FaultType.CORRUPT, 0.25)
        assert plan.rates == {FaultType.CORRUPT: 0.25}
        assert plan.total_rate == 0.25

    def test_uniform_constructor_covers_every_fault(self):
        plan = FaultPlan.uniform(0.01)
        assert set(plan.rates) == set(FaultType)

    def test_transient_constructor_and_predicate(self):
        plan = FaultPlan.transient(0.05)
        assert set(plan.rates) == set(TRANSIENT_FAULTS)
        assert plan.is_transient_only()
        assert not FaultPlan.single(FaultType.STALL, 0.1).is_transient_only()

    def test_zero_rate_nontransient_still_transient_only(self):
        plan = FaultPlan(rates={FaultType.DROP: 0.1, FaultType.STALL: 0.0})
        assert plan.is_transient_only()


class TestInjectorDeterminism:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan.uniform(0.05, seed=42)
        a, b = FaultInjector(plan), FaultInjector(plan)
        decisions_a = [a.decide(qid) for qid in range(500)]
        decisions_b = [b.decide(qid) for qid in range(500)]
        assert decisions_a == decisions_b
        assert a.trace == b.trace

    def test_decisions_independent_of_query_order(self):
        plan = FaultPlan.uniform(0.05, seed=7)
        forward = {qid: FaultInjector(plan).decide(qid) for qid in range(200)}
        backward_injector = FaultInjector(plan)
        backward = {
            qid: backward_injector.decide(qid)
            for qid in reversed(range(200))
        }
        assert forward == backward

    def test_different_seed_different_schedule(self):
        base = FaultPlan.uniform(0.1, seed=1)
        other = FaultPlan.uniform(0.1, seed=2)
        a = [FaultInjector(base).decide(q) for q in range(300)]
        b = [FaultInjector(other).decide(q) for q in range(300)]
        assert a != b

    def test_retry_attempt_gets_fresh_draw(self):
        plan = FaultPlan.single(FaultType.DROP, 0.5, seed=3)
        injector = FaultInjector(plan)
        first = [injector.decide(q, attempt=0) for q in range(100)]
        second = [injector.decide(q, attempt=1) for q in range(100)]
        assert first != second
        # At 50% some first-attempt drops must clear on retry.
        recovered = [
            q for q in range(100)
            if first[q] is not None and second[q] is None
        ]
        assert recovered

    def test_zero_rate_never_injects(self):
        injector = FaultInjector(FaultPlan())
        assert all(injector.decide(q) is None for q in range(100))
        assert injector.injected == {}

    def test_full_rate_always_injects(self):
        injector = FaultInjector(FaultPlan.single(FaultType.CORRUPT, 1.0))
        decisions = [injector.decide(q) for q in range(50)]
        assert all(d is not None and d.fault is FaultType.CORRUPT
                   for d in decisions)
        assert injector.injected[FaultType.CORRUPT] == 50

    def test_injection_count_tracks_rate(self):
        injector = FaultInjector(FaultPlan.single(FaultType.DROP, 0.2))
        for q in range(2000):
            injector.decide(q)
        count = injector.injected.get(FaultType.DROP, 0)
        assert 300 < count < 500  # ~400 expected; generous tolerance

    def test_delay_decision_carries_positive_delay(self):
        injector = FaultInjector(
            FaultPlan.single(FaultType.DELAY, 1.0, delay_scale=0.01))
        delays = [injector.decide(q).delay for q in range(100)]
        assert all(d > 0 for d in delays)
        assert 0.005 < sum(delays) / len(delays) < 0.02  # mean ~= scale

    def test_reset_clears_bookkeeping(self):
        injector = FaultInjector(FaultPlan.single(FaultType.DROP, 1.0))
        injector.decide(1)
        injector.reset()
        assert injector.injected == {}
        assert injector.trace == []

    def test_summary_mentions_counts(self):
        injector = FaultInjector(FaultPlan.single(FaultType.DROP, 1.0))
        assert injector.summary() == "injected: none"
        injector.decide(1)
        assert "drop=1" in injector.summary()
