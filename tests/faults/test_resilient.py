"""ResilientSUT: bounded retries, deadlines, and response hygiene."""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.faults import (
    FaultPlan,
    FaultType,
    FaultySUT,
    ResilientSUT,
    RetryPolicy,
)

from tests.conftest import FixedLatencySUT


def quick_settings(**overrides):
    base = dict(scenario=Scenario.SINGLE_STREAM, min_query_count=20,
                min_duration=0.0, watchdog_timeout=60.0)
    base.update(overrides)
    return TestSettings(**base)


class DropFirstAttempt(SutBase):
    """Swallows the first issue of every query; answers re-issues."""

    def __init__(self, latency: float = 0.005) -> None:
        super().__init__("drop-first")
        self.latency = latency
        self.seen = {}

    def issue_query(self, query):
        attempt = self.seen.get(query.id, 0)
        self.seen[query.id] = attempt + 1
        if attempt == 0:
            return  # dropped on the floor
        responses = [QuerySampleResponse(s.id, s.index)
                     for s in query.samples]
        self.loop.schedule_after(
            self.latency, lambda: self.complete(query, responses))


class MissizeFirstAttempt(SutBase):
    """First attempt returns a truncated response set, later ones are fine."""

    def __init__(self) -> None:
        super().__init__("missize-first")
        self.seen = {}

    def issue_query(self, query):
        attempt = self.seen.get(query.id, 0)
        self.seen[query.id] = attempt + 1
        responses = [QuerySampleResponse(s.id, s.index)
                     for s in query.samples]
        if attempt == 0:
            responses = responses + [QuerySampleResponse(999_999, None)]
        self.loop.schedule_after(
            0.001, lambda: self.complete(query, responses))


class BlackHole(SutBase):
    def issue_query(self, query):
        pass


class TestRetryPolicyValidation:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 2
        assert policy.backoff(1) == policy.backoff(0) * policy.backoff_factor

    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(attempt_timeout=0.0),
        dict(attempt_timeout=-1.0),
        dict(backoff_base=-0.001),
        dict(backoff_factor=0.5),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRecovery:
    def test_recovers_dropped_first_attempts(self, echo_qsl):
        sut = ResilientSUT(DropFirstAttempt(), RetryPolicy(
            max_attempts=3, attempt_timeout=0.020, backoff_base=0.001))
        result = run_benchmark(sut, echo_qsl, quick_settings())
        assert result.valid
        assert result.log.outstanding == 0
        assert sut.stats.retries == 20          # one retry per query
        assert sut.stats.recovered_queries == 20
        assert sut.stats.gave_up_queries == 0

    def test_retry_overhead_is_visible_in_latency(self, echo_qsl):
        policy = RetryPolicy(max_attempts=3, attempt_timeout=0.020,
                             backoff_base=0.001)
        flaky = run_benchmark(
            ResilientSUT(DropFirstAttempt(0.005), policy),
            echo_qsl, quick_settings())
        clean = run_benchmark(
            FixedLatencySUT(0.005), echo_qsl, quick_settings())
        # Recovered latency = timeout + backoff + service time.
        assert flaky.primary_metric == pytest.approx(0.026, rel=0.05)
        assert flaky.primary_metric > clean.primary_metric

    def test_malformed_attempts_retried_immediately(self, echo_qsl):
        sut = ResilientSUT(MissizeFirstAttempt(), RetryPolicy(
            max_attempts=3, attempt_timeout=0.050, backoff_base=0.001))
        result = run_benchmark(sut, echo_qsl, quick_settings())
        assert result.valid
        assert sut.stats.malformed_attempts == 20
        assert sut.stats.recovered_queries == 20
        # The referee never saw the malformed sets.
        assert result.log.anomaly_count == 0


class TestGivingUp:
    def test_black_hole_becomes_recorded_failures_not_hang(self, echo_qsl):
        policy = RetryPolicy(max_attempts=2, attempt_timeout=0.010,
                             backoff_base=0.001)
        sut = ResilientSUT(BlackHole("hole"), policy)
        # No watchdog needed: the retry deadline bounds the run.
        settings = quick_settings(min_query_count=5, watchdog_timeout=None)
        result = run_benchmark(sut, echo_qsl, settings)
        assert not result.valid
        assert sut.stats.gave_up_queries == 5
        assert result.log.outstanding == 0
        assert any("malformed responses" in r
                   for r in result.validity.reasons)
        assert all("no valid response after 2 attempts" == r.failure_reason
                   for r in result.log.failed_records())


class TestFiltering:
    def test_duplicates_filtered_run_stays_valid(self, echo_qsl):
        plan = FaultPlan.single(FaultType.DUPLICATE, 1.0)
        sut = ResilientSUT(FaultySUT(FixedLatencySUT(0.005), plan))
        result = run_benchmark(sut, echo_qsl, quick_settings())
        assert result.valid
        assert result.log.anomaly_count == 0
        assert sut.stats.filtered_completions == 20

    def test_unsolicited_filtered_run_stays_valid(self, echo_qsl):
        plan = FaultPlan.single(FaultType.UNSOLICITED, 1.0)
        sut = ResilientSUT(FaultySUT(FixedLatencySUT(0.005), plan))
        result = run_benchmark(sut, echo_qsl, quick_settings())
        assert result.valid
        assert result.log.anomaly_count == 0
        assert sut.stats.filtered_completions == 20


class TestTransientPlans:
    def test_transient_faults_recovered_to_valid_run(self, echo_qsl):
        """The acceptance bar: <= 5% transient-only faults, wrapped run
        comes out VALID with zero referee-visible anomalies."""
        plan = FaultPlan.transient(0.025, seed=11)  # 5% total
        assert plan.is_transient_only()
        sut = ResilientSUT(
            FaultySUT(FixedLatencySUT(0.005), plan),
            RetryPolicy(max_attempts=4, attempt_timeout=0.200,
                        backoff_base=0.002),
        )
        settings = quick_settings(min_query_count=200, watchdog_timeout=120.0)
        result = run_benchmark(sut, echo_qsl, settings)
        assert result.valid, result.validity.reasons
        assert result.log.outstanding == 0
        assert result.log.anomaly_count == 0
        assert sut.stats.gave_up_queries == 0
