"""FaultySUT behavior, one fault class at a time, through full runs."""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.faults import FaultInjector, FaultPlan, FaultType, FaultySUT

from tests.conftest import FixedLatencySUT


def quick_settings(**overrides):
    base = dict(scenario=Scenario.SINGLE_STREAM, min_query_count=12,
                min_duration=0.0, watchdog_timeout=30.0)
    base.update(overrides)
    return TestSettings(**base)


def run_with_fault(echo_qsl, fault, rate=1.0, settings=None, **plan_kwargs):
    plan = FaultPlan.single(fault, rate, **plan_kwargs)
    sut = FaultySUT(FixedLatencySUT(0.005), plan)
    result = run_benchmark(sut, echo_qsl, settings or quick_settings())
    return result, sut


class TestEachFaultClass:
    def test_no_faults_passes_through(self, echo_qsl):
        sut = FaultySUT(FixedLatencySUT(0.005), FaultPlan())
        result = run_benchmark(sut, echo_qsl, quick_settings())
        assert result.valid
        assert sut.injector.trace == []

    def test_drop_leaves_query_outstanding(self, echo_qsl):
        result, _ = run_with_fault(echo_qsl, FaultType.DROP)
        assert not result.valid
        assert any("never completed" in r for r in result.validity.reasons)
        assert result.log.outstanding > 0

    def test_delay_adds_latency_but_completes(self, echo_qsl):
        result, _ = run_with_fault(
            echo_qsl, FaultType.DELAY, delay_scale=0.030)
        # Every completion still arrives (inside the watchdog), so the
        # run is clean - just slower than the 5 ms service time.
        assert result.log.outstanding == 0
        assert result.log.anomaly_count == 0
        latencies = [r.latency for r in result.log.completed_records()]
        assert min(latencies) > 0.005

    def test_duplicate_completions_detected(self, echo_qsl):
        result, _ = run_with_fault(echo_qsl, FaultType.DUPLICATE)
        assert not result.valid
        assert any("duplicate completions" in r
                   for r in result.validity.reasons)
        assert len(result.log.duplicate_completions) > 0
        # The first copy of each completion still counts.
        assert len(result.log.completed_records()) == result.log.query_count

    def test_unsolicited_completions_detected(self, echo_qsl):
        result, _ = run_with_fault(echo_qsl, FaultType.UNSOLICITED)
        assert not result.valid
        assert any("unsolicited responses" in r
                   for r in result.validity.reasons)
        assert len(result.log.unsolicited_responses) > 0

    def test_missized_responses_recorded_as_failures(self, echo_qsl):
        result, _ = run_with_fault(echo_qsl, FaultType.MISSIZED)
        assert not result.valid
        assert any("malformed responses" in r for r in result.validity.reasons)
        assert all("expected" in r.failure_reason
                   for r in result.log.failed_records())

    def test_corrupt_sample_ids_recorded_as_failures(self, echo_qsl):
        result, _ = run_with_fault(echo_qsl, FaultType.CORRUPT)
        assert not result.valid
        assert any("malformed responses" in r for r in result.validity.reasons)
        assert len(result.log.failed_records()) == result.log.query_count

    def test_stall_swallows_everything_after_the_crash(self, echo_qsl):
        result, sut = run_with_fault(echo_qsl, FaultType.STALL)
        assert not result.valid
        assert sut.crashed
        assert result.stats.watchdog_fired
        assert any("never completed" in r for r in result.validity.reasons)


class TestPartialRates:
    def test_low_drop_rate_degrades_not_destroys(self, echo_qsl):
        # Server arrivals are independent, so a 5% drop rate thins the
        # completion stream instead of stalling the whole run.
        settings = quick_settings(
            scenario=Scenario.SERVER, server_target_qps=200.0,
            server_latency_bound=0.05, min_query_count=200)
        result, sut = run_with_fault(
            echo_qsl, FaultType.DROP, rate=0.05, settings=settings)
        dropped = sut.injector.injected.get(FaultType.DROP, 0)
        assert 0 < dropped < 40
        assert result.log.outstanding == dropped
        assert not result.valid

    def test_anomaly_count_totals_everything(self, echo_qsl):
        plan = FaultPlan(rates={FaultType.DUPLICATE: 0.3,
                                FaultType.MISSIZED: 0.3,
                                FaultType.UNSOLICITED: 0.3})
        sut = FaultySUT(FixedLatencySUT(0.002), plan)
        result = run_benchmark(
            sut, echo_qsl, quick_settings(min_query_count=100))
        log = result.log
        assert log.anomaly_count == (
            len(log.duplicate_completions)
            + len(log.unsolicited_responses)
            + len(log.failed_records())
        )
        assert log.anomaly_count > 0


class TestDeterminism:
    @pytest.mark.parametrize("scenario,extra", [
        (Scenario.SINGLE_STREAM, dict(min_query_count=50)),
        (Scenario.SERVER, dict(server_target_qps=100.0,
                               server_latency_bound=0.05,
                               min_query_count=50)),
        (Scenario.OFFLINE, dict(offline_sample_count=64)),
    ])
    def test_same_seed_identical_log_and_verdict(
            self, echo_qsl, scenario, extra):
        settings = quick_settings(scenario=scenario, **extra)
        plan = FaultPlan.uniform(0.08, seed=99)

        def one_run():
            sut = FaultySUT(FixedLatencySUT(0.005), plan)
            result = run_benchmark(sut, echo_qsl, settings)
            return result, sut

        first, sut_a = one_run()
        second, sut_b = one_run()
        assert sut_a.injector.trace == sut_b.injector.trace
        assert first.log.to_jsonl() == second.log.to_jsonl()
        assert first.valid == second.valid
        assert first.validity.reasons == second.validity.reasons

    def test_injector_can_be_shared_and_reset(self, echo_qsl):
        injector = FaultInjector(FaultPlan.uniform(0.1, seed=5))
        sut = FaultySUT(FixedLatencySUT(0.005), injector)
        run_benchmark(sut, echo_qsl, quick_settings())
        first_trace = list(injector.trace)
        run_benchmark(sut, echo_qsl, quick_settings())
        assert injector.trace == first_trace  # reset + same seed => same
