"""CompletionFilter: the shared duplicate/straggler/malformed screen."""

import pytest

from repro.core.query import Query, QueryFailure, QuerySample, QuerySampleResponse
from repro.faults.filtering import CompletionFilter, Screened, malformed_reason


def make_query(qid=1, sample_ids=(1, 2)):
    return Query(id=qid, samples=tuple(
        QuerySample(id=s, index=s + 100) for s in sample_ids))


def responses_for(query):
    return [QuerySampleResponse(s.id, None) for s in query.samples]


class TestMalformedReason:
    def test_clean_set_is_none(self):
        query = make_query()
        assert malformed_reason(query, responses_for(query)) is None

    def test_count_mismatch(self):
        query = make_query()
        reason = malformed_reason(query, responses_for(query)[:1])
        assert "expected 2 responses" in reason

    def test_wrong_sample_ids(self):
        query = make_query()
        bad = [QuerySampleResponse(99, None), QuerySampleResponse(1, None)]
        reason = malformed_reason(query, bad)
        assert "not part of the query" in reason

    def test_order_does_not_matter(self):
        query = make_query()
        reordered = list(reversed(responses_for(query)))
        assert malformed_reason(query, reordered) is None


class TestCompletionFilter:
    def test_admit_get_resolve_lifecycle(self):
        filt = CompletionFilter()
        query = make_query()
        state = filt.admit(query, {"attempt": 0})
        assert filt.get(query.id) is state
        assert query.id in filt
        assert len(filt) == 1
        assert filt.resolve(query.id) is state
        assert filt.get(query.id) is None
        assert len(filt) == 0

    def test_states_preserve_admission_order(self):
        filt = CompletionFilter()
        states = [filt.admit(make_query(qid=i), f"s{i}") for i in range(5)]
        assert filt.states() == states

    def test_screen_unknown_query_is_stale(self):
        filt = CompletionFilter()
        query = make_query()
        screened = filt.screen(query, responses_for(query))
        assert screened.stale
        assert not screened.usable

    def test_screen_after_resolve_is_stale(self):
        """A duplicate completion - the whole point of the filter."""
        filt = CompletionFilter()
        query = make_query()
        filt.admit(query, "state")
        filt.resolve(query.id)
        assert filt.screen(query, responses_for(query)).stale

    def test_screen_clean_completion_is_usable(self):
        filt = CompletionFilter()
        query = make_query()
        state = filt.admit(query, "state")
        screened = filt.screen(query, responses_for(query))
        assert screened.usable
        assert screened.state is state
        assert screened.flaw is None
        # Screening must not resolve: the caller does that.
        assert filt.get(query.id) is state

    def test_screen_failure_carries_flaw(self):
        filt = CompletionFilter()
        query = make_query()
        filt.admit(query, "state")
        screened = filt.screen(query, QueryFailure("backend died"))
        assert not screened.stale
        assert not screened.usable
        assert "backend died" in screened.flaw

    def test_screen_malformed_carries_flaw(self):
        filt = CompletionFilter()
        query = make_query()
        filt.admit(query, "state")
        screened = filt.screen(query, responses_for(query)[:1])
        assert not screened.usable
        assert "expected 2 responses" in screened.flaw

    def test_screened_namedtuple_semantics(self):
        assert Screened(state=None, flaw=None).stale
        assert Screened(state="s", flaw=None).usable
        assert not Screened(state="s", flaw="bad").usable
