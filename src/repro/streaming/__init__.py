"""Streaming inference: token chunks, TTFT/TPOT SLOs, and goodput.

Modern LLM serving rounds of MLPerf (and production benchmarks such as
inference-perf) measure *streamed* responses: the answer arrives as a
sequence of token chunks, and the scores that matter are
time-to-first-token (TTFT), time-per-output-token (TPOT), and *goodput*
- throughput counting only queries that met every SLO.  This package is
that response path for the reproduction:

* :class:`StreamModel` / :class:`StreamPlan` - seeded, per-query
  deterministic chunk-count / chunk-size / inter-token-delay models, so
  a virtual-clock streaming run is bit-identical across reruns;
* :class:`StreamingSUT` - wraps any existing SUT and replays its answer
  as a chunked stream through the regular responder channel
  (``SutBase.emit_chunk``), ending with the normal completion - the
  compat shim that leaves every non-streaming SUT and wrapper working
  unchanged;
* :class:`StreamReassembler` - restores sequence order for chunks that
  crossed a reordering transport (``SimulatedChannelSUT``), so a lossy
  channel and an in-process run reach identical verdicts.

The referee half lives in ``repro.core``: ``QueryLog.record_chunk``
classifies out-of-order / duplicate / truncated streams as misbehavior,
``TestSettings.ttft_target_ns`` / ``tpot_target_ns`` carry the SLOs,
and ``validate_run`` budgets violations like the classic latency rule.
See ``docs/streaming.md`` for semantics and a worked example.
"""

from .model import ChunkEvent, StreamModel, StreamPlan
from .reassembly import StreamReassembler
from .sut import StreamingSUT, streaming_echo

__all__ = [
    "ChunkEvent",
    "StreamModel",
    "StreamPlan",
    "StreamReassembler",
    "StreamingSUT",
    "streaming_echo",
]
