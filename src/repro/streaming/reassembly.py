"""Sequence-order restoration for chunks that crossed a lossy transport.

A reordering channel (``SimulatedChannelSUT``; in the real world,
multipath networks or a proxy) can deliver chunk 3 before chunk 2.  The
referee would rightly flag that as an out-of-order stream - but the
transport misordering is not the *SUT's* misbehavior, and a streaming
client normally reassembles before presenting tokens to the user.
:class:`StreamReassembler` is that client-side buffer: it releases
chunks strictly in sequence order, holding early arrivals until the gap
fills, dropping duplicates, and resetting on a stream restart
(``seq == 0`` after progress).

Chunks lost outright (a *dropping* channel) leave a permanent gap: the
buffered tail is never released, the final chunk never reaches the
referee, and the completion is classified as a truncated stream - which
is exactly the verdict a lossy transport deserves.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.query import StreamChunk


class _StreamBuffer:
    __slots__ = ("expected", "held")

    def __init__(self) -> None:
        self.expected = 0
        self.held: Dict[int, StreamChunk] = {}


class StreamReassembler:
    """Per-query in-order release of out-of-order chunk arrivals."""

    def __init__(self) -> None:
        self._buffers: Dict[int, _StreamBuffer] = {}
        #: Duplicate chunks dropped and early chunks held, for tests
        #: and channel stats.
        self.duplicates_dropped = 0
        self.held_peak = 0

    def push(self, query_id: int, chunk: StreamChunk) -> List[StreamChunk]:
        """Accept one arrival; return the chunks now releasable in order."""
        buffer = self._buffers.get(query_id)
        if buffer is None:
            buffer = self._buffers[query_id] = _StreamBuffer()
        if chunk.seq == 0 and buffer.expected > 0:
            # Stream restart: everything held belonged to the old
            # attempt and must not leak into the new one.
            buffer.expected = 0
            buffer.held.clear()
        if chunk.seq < buffer.expected or chunk.seq in buffer.held:
            self.duplicates_dropped += 1
            return []
        buffer.held[chunk.seq] = chunk
        self.held_peak = max(self.held_peak, len(buffer.held))
        released: List[StreamChunk] = []
        while buffer.expected in buffer.held:
            released.append(buffer.held.pop(buffer.expected))
            buffer.expected += 1
        return released

    def finish(self, query_id: int) -> int:
        """The query resolved: discard its buffer, returning how many
        chunks were stranded behind a gap (lost-chunk evidence)."""
        buffer = self._buffers.pop(query_id, None)
        return len(buffer.held) if buffer is not None else 0

    @property
    def open_streams(self) -> int:
        return len(self._buffers)
