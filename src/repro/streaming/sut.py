"""The streaming compat shim: wrap any SUT, stream its answer as chunks.

:class:`StreamingSUT` sits between the LoadGen (or any wrapper stack)
and an inner SUT.  Queries pass through unchanged; when the inner SUT
completes one, the wrapper replays the answer as the query's seeded
:class:`~repro.streaming.model.StreamPlan` - chunk events scheduled on
the run's event loop - and delivers the original response list right
after the final chunk.  Failures and chunks already produced by the
inner SUT pass straight through, so streaming wrappers nest.

Because chunks ride the normal responder channel, everything downstream
(retry wrappers, the TCP server, the fleet) needs no special casing to
*tolerate* streams; they only need extra code to *forward* them, which
is exactly what ``CompletionFilter.screen_chunk`` provides.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.events import EventLoop
from ..core.query import Query, QueryFailure, QuerySampleResponse, StreamChunk
from ..core.sut import Responder, SutBase, SystemUnderTest
from .model import StreamModel


class StreamingSUT(SutBase):
    """Wraps ``inner`` and streams each of its answers as token chunks."""

    def __init__(
        self,
        inner: SystemUnderTest,
        model: Optional[StreamModel] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"streaming({inner.name})")
        self.inner = inner
        self.model = model if model is not None else StreamModel()
        #: Streams currently being replayed (query id -> pending events),
        #: so ``flush`` and late failures know what is still in flight.
        self._active = {}

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self._active = {}
        self.inner.start_run(loop, self._on_inner_completion)

    def issue_query(self, query: Query) -> None:
        self.inner.issue_query(query)

    def flush(self) -> None:
        self.inner.flush()

    # -- inner completions become streams --------------------------------------

    def _on_inner_completion(self, query: Query, responses) -> None:
        if isinstance(responses, (QueryFailure, StreamChunk)):
            # Failures pass through; an already-streaming inner SUT's
            # chunks do too (nested streaming wrappers compose).
            self._responder(query, responses)
            return
        self._begin_stream(query, list(responses))

    def _begin_stream(
        self, query: Query, responses: List[QuerySampleResponse]
    ) -> None:
        plan = self.model.plan(query.id)
        loop = self.loop
        handles = []
        for seq, event in enumerate(plan.chunks):
            chunk = StreamChunk(
                query_id=query.id,
                seq=seq,
                token_count=event.token_count,
                last=event.last,
            )
            handles.append(
                loop.schedule_after(
                    event.offset, lambda q=query, c=chunk: self._emit(q, c)
                )
            )
        # The terminal completion lands at the final chunk's offset;
        # same-time events run FIFO, so the last chunk precedes it.
        handles.append(
            loop.schedule_after(
                plan.duration,
                lambda q=query, r=responses: self._finish(q, r),
            )
        )
        self._active[query.id] = handles

    def _emit(self, query: Query, chunk: StreamChunk) -> None:
        self._responder(query, chunk)

    def _finish(
        self, query: Query, responses: List[QuerySampleResponse]
    ) -> None:
        self._active.pop(query.id, None)
        self._responder(query, responses)


def streaming_echo(
    latency: float = 0.0,
    model: Optional[StreamModel] = None,
    name: str = "streaming-echo",
) -> StreamingSUT:
    """An EchoSUT answering through a streaming shim - the reference
    streaming backend used by tests, ``repro serve``, and the CLI."""
    from ..sut.echo import EchoSUT

    return StreamingSUT(EchoSUT(latency=latency), model=model, name=name)
