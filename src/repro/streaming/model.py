"""Seeded per-query stream shapes: how many tokens, in which chunks, when.

The model is a pure function of ``(model seed, query id)``: a
:class:`StreamModel` asked twice for the same query returns the same
:class:`StreamPlan`, which is what makes a virtual-clock streaming run
bit-identical across reruns and lets tests predict exact chunk timings.
Draws use a dedicated ``SeedSequence`` domain tag so stream shapes are
independent of every other seeded subsystem (arrival times, loaded-set
choice, fault plans).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Tuple

import numpy as np

#: SeedSequence domain tag for stream-shape draws.
_STREAM_TAG = 0x57EA4


class ChunkEvent(NamedTuple):
    """One planned chunk: emission offset from the stream's start."""

    #: Seconds after the stream starts (the inner answer being ready).
    offset: float
    #: Output tokens this chunk carries.
    token_count: int
    #: True on the stream's final chunk.
    last: bool


class StreamPlan(NamedTuple):
    """The full planned stream for one query."""

    token_count: int
    chunks: Tuple[ChunkEvent, ...]

    @property
    def duration(self) -> float:
        """Offset of the final chunk."""
        return self.chunks[-1].offset


@dataclass(frozen=True)
class StreamModel:
    """Distribution of stream shapes, deterministic per query.

    ``first_token_delay`` models the gap between the answer being ready
    and the first chunk leaving (prefill-to-decode handoff);
    ``inter_token_delay`` is the per-token decode interval.  Jitter
    fields add a seeded uniform ``±jitter`` perturbation per event,
    clamped so offsets never go backwards.  Token counts are drawn
    uniformly from ``[min_tokens, max_tokens]``; chunks carry
    ``tokens_per_chunk`` tokens (the final chunk takes the remainder),
    mirroring streaming APIs that batch several tokens per flush.
    """

    first_token_delay: float = 0.002
    inter_token_delay: float = 0.0005
    min_tokens: int = 8
    max_tokens: int = 32
    tokens_per_chunk: int = 1
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.first_token_delay < 0:
            raise ValueError(
                f"first_token_delay must be >= 0, got {self.first_token_delay}"
            )
        if self.inter_token_delay < 0:
            raise ValueError(
                f"inter_token_delay must be >= 0, got {self.inter_token_delay}"
            )
        if self.min_tokens < 1:
            raise ValueError(f"min_tokens must be >= 1, got {self.min_tokens}")
        if self.max_tokens < self.min_tokens:
            raise ValueError(
                f"max_tokens must be >= min_tokens, got {self.max_tokens}"
            )
        if self.tokens_per_chunk < 1:
            raise ValueError(
                f"tokens_per_chunk must be >= 1, got {self.tokens_per_chunk}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def plan(self, query_id: int) -> StreamPlan:
        """The deterministic stream shape for one query."""
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, query_id, _STREAM_TAG))
        )
        tokens = int(rng.integers(self.min_tokens, self.max_tokens + 1))
        chunks = []
        offset = 0.0
        emitted = 0
        seq = 0
        while emitted < tokens:
            count = min(self.tokens_per_chunk, tokens - emitted)
            delay = (
                self.first_token_delay
                if seq == 0
                else self.inter_token_delay * count
            )
            if self.jitter > 0.0:
                delay += float(rng.uniform(-self.jitter, self.jitter))
            offset += max(0.0, delay)
            emitted += count
            chunks.append(
                ChunkEvent(offset=offset, token_count=count,
                           last=emitted >= tokens)
            )
            seq += 1
        return StreamPlan(token_count=tokens, chunks=tuple(chunks))
