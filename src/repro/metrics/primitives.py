"""Low-overhead metric primitives: Counter, Gauge, Histogram.

These are the leaves of the telemetry tree (`repro.metrics`).  Three
design rules keep them cheap enough to sit on the LoadGen issue path:

* **No locks on the write path.**  Every primitive is *single-writer*:
  one thread (usually the run's event-loop thread) owns it and mutates
  it with plain attribute arithmetic.  Concurrency is handled the way
  the paper's LoadGen handles logging - per-thread instruments that are
  :meth:`~Histogram.merge`-d at collection time - or by updating inside
  a lock the caller already holds (the network server bumps its metrics
  inside the same critical sections that guard ``ServerStats``).
* **No time reads.**  A primitive never looks at a clock; observations
  are pure values.  That is what keeps the virtual-time path bit-exact
  reproducible: a metric can only reflect what the (deterministic) run
  fed it.
* **Fixed memory.**  A histogram is a fixed array of integer bucket
  counts; nothing grows with the number of observations, so a
  100-million-query run costs the same RAM as a 10-query one.

The histogram is log-bucketed: bucket boundaries form a geometric
series, so relative reconstruction error is bounded by the growth
factor regardless of magnitude - the right trade for latencies that
span microseconds to minutes.  Percentile *ranks* are exact (computed
from exact integer counts); the returned *value* is interpolated inside
one bucket, so it is within a factor of ``growth`` of the true order
statistic (< 4.5% with the default ``growth = 2**(1/16)``).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "DEFAULT_BASE", "DEFAULT_GROWTH",
           "DEFAULT_BUCKETS"]

#: Upper bound of the first histogram bucket, seconds (1 microsecond).
DEFAULT_BASE = 1e-6
#: Geometric bucket growth factor: 16 buckets per octave (~4.4% wide).
DEFAULT_GROWTH = 2.0 ** (1.0 / 16.0)
#: Bucket count.  512 buckets at the default growth cover 1 us .. 2^32 us
#: (~71 minutes) before the overflow bucket catches the rest.
DEFAULT_BUCKETS = 512


class Counter:
    """A monotonically increasing count (queries issued, faults injected).

    Single-writer by design (see the module docstring); cross-thread
    aggregation goes through :meth:`merge` or per-thread label children.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Counter") -> None:
        """Fold another counter's count into this one."""
        self._value += other._value


class Gauge:
    """A value that can go up and down (queue depth, in-flight queries).

    A gauge may instead be backed by a zero-argument callable
    (``Gauge(fn=...)``): reading :attr:`value` then *pulls* the number
    from live state at collection time, which costs the hot path
    nothing.  Callback gauges reject writes.
    """

    __slots__ = ("_value", "_fn")

    def __init__(self, fn: Optional[Callable[[], float]] = None) -> None:
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("cannot set a callback-backed gauge")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError("cannot inc a callback-backed gauge")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-size log-bucketed distribution with exact-rank percentiles.

    Bucket ``0`` holds every observation ``<= base``; bucket ``k`` holds
    ``(base * growth**(k-1), base * growth**k]``; the final bucket also
    absorbs overflow (its logical upper edge is +inf).  ``sum``, ``count``,
    ``min`` and ``max`` are tracked exactly, so the mean and the extremes
    carry no bucketing error; only interior percentiles are quantized,
    with relative error bounded by ``growth - 1``.
    """

    __slots__ = ("base", "growth", "_counts", "_count", "_sum", "_min",
                 "_max", "_log_base", "_inv_log_growth", "_uppers")

    def __init__(
        self,
        base: float = DEFAULT_BASE,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        self.base = base
        self.growth = growth
        self._counts: List[int] = [0] * buckets
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._log_base = math.log(base)
        self._inv_log_growth = 1.0 / math.log(growth)
        # Finite upper edges, precomputed: the hot path's boundary
        # repair must not evaluate growth**k per observation.
        self._uppers: List[float] = [
            base * growth ** k for k in range(buckets - 1)
        ]

    # -- writing ---------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp to bucket 0).

        This is the hot path (one call per completed query); the index
        computation is inlined rather than delegated to :meth:`_index`
        to spare a Python call per observation.
        """
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= self.base:
            self._counts[0] += 1
            return
        counts = self._counts
        k = math.ceil(
            (math.log(value) - self._log_base) * self._inv_log_growth
        )
        last = len(counts) - 1
        if k > last:
            counts[last] += 1
            return
        uppers = self._uppers
        while k > 0 and value <= uppers[k - 1]:
            k -= 1
        while k < last and value > uppers[k]:
            k += 1
        counts[k] += 1

    def _index(self, value: float) -> int:
        if value <= self.base:
            return 0
        k = int(math.ceil(
            (math.log(value) - self._log_base) * self._inv_log_growth
        ))
        uppers = self._uppers
        last = len(self._counts) - 1
        if k > last:
            return last
        # Repair float wobble at boundaries: the bucket's edges are the
        # authority, not the logarithm.
        while k > 0 and value <= uppers[k - 1]:
            k -= 1
        while k < last and value > uppers[k]:
            k += 1
        return k

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (identical bucketing) into this one.

        This is the cross-thread aggregation path: each worker observes
        into a private histogram and the collector merges them.
        """
        if (other.base != self.base or other.growth != self.growth
                or len(other._counts) != len(self._counts)):
            raise ValueError(
                "cannot merge histograms with different bucketing: "
                f"({self.base}, {self.growth}, {len(self._counts)}) vs "
                f"({other.base}, {other.growth}, {len(other._counts)})"
            )
        for i, c in enumerate(other._counts):
            if c:
                self._counts[i] += c
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- reading ---------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def bucket_upper(self, index: int) -> float:
        """Upper edge of bucket ``index`` (+inf for the overflow bucket)."""
        if index >= len(self._counts) - 1:
            return math.inf
        return self._uppers[index]

    def bucket_lower(self, index: int) -> float:
        """Lower edge of bucket ``index`` (0 for the first)."""
        if index == 0:
            return 0.0
        return self._uppers[index - 1]

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """``(bucket index, count)`` for every non-empty bucket."""
        return [(i, c) for i, c in enumerate(self._counts) if c]

    def percentile(self, q: float) -> float:
        """Reconstruct the ``q``-quantile (``q`` in [0, 1]).

        The rank is exact: with ``n`` observations the target is order
        statistic ``ceil(q * n)`` (1-based), matching
        :func:`repro.core.stats.percentile`'s nearest-rank convention.
        The extreme ranks are returned *exactly* -- rank 1 is the
        tracked min (this is where ``q = 0.0`` lands) and rank ``n``
        the tracked max -- because both order statistics are known
        without bucketing error; a single-observation or single-bucket
        histogram therefore reproduces the nearest-rank answer
        verbatim.  Interior ranks are linearly interpolated across the
        containing bucket's width, clamped to the exact observed
        min/max so the estimate never leaves the data's true range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self._count))
        if rank <= 1:
            return self._min
        if rank >= self._count:
            return self._max
        seen = 0
        for i, c in enumerate(self._counts):
            if not c:
                continue
            if seen + c >= rank:
                lo = self.bucket_lower(i)
                hi = self.bucket_upper(i)
                if math.isinf(hi):
                    hi = self._max
                # Position of the target rank inside this bucket.
                frac = (rank - seen) / c
                estimate = lo + (hi - lo) * frac
                return min(max(estimate, self._min), self._max)
            seen += c
        # 1 < rank < count and the buckets sum to count, so the walk
        # above always lands; reaching here means the invariants broke.
        raise RuntimeError(
            f"bucket counts inconsistent with count={self._count}")

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        """Batch :meth:`percentile` in a *single* bucket walk.

        Snapshot capture reads several quantiles per histogram per tick;
        resolving them all in one pass (ranks sorted, walk stops at the
        highest) keeps the sampler's cost a small fraction of the run.
        Results are identical to calling :meth:`percentile` per ``q``.
        """
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
        results = [0.0] * len(qs)
        if self._count == 0 or not qs:
            return results
        targets = []
        for slot, q in enumerate(qs):
            rank = max(1, math.ceil(q * self._count))
            if rank <= 1:  # exact order statistics, no walk needed
                results[slot] = self._min
            elif rank >= self._count:
                results[slot] = self._max
            else:
                targets.append((rank, slot))
        targets.sort()
        pending = 0
        seen = 0
        for i, c in enumerate(self._counts):
            if not c:
                continue
            while pending < len(targets) and targets[pending][0] <= seen + c:
                rank, slot = targets[pending]
                lo = self.bucket_lower(i)
                hi = self.bucket_upper(i)
                if math.isinf(hi):
                    hi = self._max
                frac = (rank - seen) / c
                estimate = lo + (hi - lo) * frac
                results[slot] = min(max(estimate, self._min), self._max)
                pending += 1
            if pending == len(targets):
                break
            seen += c
        return results
