"""Render a registry as Prometheus text, JSON, or a terminal view.

Three consumers, three formats:

* :func:`to_prometheus_text` - the exposition format scrapers expect:
  ``# HELP`` / ``# TYPE`` headers, one line per series, histograms as
  cumulative ``_bucket{le="..."}`` series plus ``_sum`` / ``_count``.
  Buckets are emitted *sparsely* (only boundaries that hold data, plus
  ``+Inf``): cumulative counts stay correct, and a 512-bucket histogram
  does not print 512 lines of zeros.
* :func:`to_json` - a structured dump (families, labels, bucket
  arrays, quantiles) for programmatic post-processing.
* :func:`render_table` - the ``repro metrics`` CLI view: counters and
  gauges in a table, each histogram as count/mean/p50/p90/p99/p999 with
  an ASCII bar sketch of its distribution.

All three read the registry at call time; pair them with
:class:`~repro.metrics.snapshot.SnapshotSampler` when a time series
rather than a final state is wanted.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Sequence, Tuple

from .primitives import Counter, Gauge, Histogram
from .registry import MetricsRegistry, series_key

__all__ = ["to_prometheus_text", "to_json", "render_table",
           "render_histogram"]

#: Bar alphabet for the terminal histogram sketch, thin to full.
_BARS = " .:-=+*#%@"


def _fmt(value: float) -> str:
    """Prometheus-style number: integral floats lose the ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Serialize ``registry`` in the Prometheus exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, child in family.series():
            key = series_key(family.name, labels)
            if isinstance(child, Histogram):
                cumulative = 0
                for index, count in child.nonzero_buckets():
                    cumulative += count
                    upper = child.bucket_upper(index)
                    le = dict(labels)
                    le["le"] = _fmt(upper)
                    lines.append(
                        f"{series_key(family.name + '_bucket', le)} "
                        f"{cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(
                    f"{series_key(family.name + '_bucket', inf_labels)} "
                    f"{child.count}"
                )
                lines.append(
                    f"{series_key(family.name + '_sum', dict(labels))} "
                    f"{_fmt(child.sum)}"
                )
                lines.append(
                    f"{series_key(family.name + '_count', dict(labels))} "
                    f"{child.count}"
                )
            else:
                lines.append(f"{key} {_fmt(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json(registry: MetricsRegistry, indent: int = 1) -> str:
    """Serialize ``registry`` as a JSON document."""
    families = []
    for family in registry.collect():
        entry: Dict[str, object] = {
            "name": family.name,
            "type": family.kind,
            "help": family.help,
            "series": [],
        }
        for labels, child in family.series():
            if isinstance(child, Histogram):
                series: Dict[str, object] = {
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                    "min": child.min,
                    "max": child.max,
                    "mean": child.mean,
                    "quantiles": {
                        "p50": child.percentile(0.50),
                        "p90": child.percentile(0.90),
                        "p99": child.percentile(0.99),
                        "p999": child.percentile(0.999),
                    },
                    "buckets": [
                        # ``le`` is a string so the overflow bucket's
                        # "+Inf" edge stays valid JSON.
                        {"le": _fmt(child.bucket_upper(i)), "count": c}
                        for i, c in child.nonzero_buckets()
                    ],
                }
            else:
                series = {"labels": labels, "value": child.value}
            entry["series"].append(series)
        families.append(entry)
    return json.dumps({"metrics": families}, indent=indent)


def render_histogram(name: str, hist: Histogram, width: int = 40) -> str:
    """One histogram as summary stats plus an ASCII distribution sketch."""
    lines = [
        f"{name}",
        f"  count={hist.count} mean={hist.mean:.6g} "
        f"min={hist.min:.6g} max={hist.max:.6g}",
        f"  p50={hist.percentile(0.50):.6g} "
        f"p90={hist.percentile(0.90):.6g} "
        f"p99={hist.percentile(0.99):.6g} "
        f"p99.9={hist.percentile(0.999):.6g}",
    ]
    nonzero = hist.nonzero_buckets()
    if not nonzero:
        return "\n".join(lines)
    lo_index = nonzero[0][0]
    hi_index = nonzero[-1][0]
    span = hi_index - lo_index + 1
    # Fold the occupied bucket range into at most ``width`` columns.
    columns = min(width, span)
    per_col = [0] * columns
    for index, count in nonzero:
        col = (index - lo_index) * columns // span
        per_col[col] += count
    peak = max(per_col)
    bar = "".join(
        _BARS[min(len(_BARS) - 1,
                  int(round(c / peak * (len(_BARS) - 1))))] if c else " "
        for c in per_col
    )
    lines.append(
        f"  [{hist.bucket_lower(lo_index):.3g} .. "
        f"{min(hist.bucket_upper(hi_index), hist.max):.3g}] |{bar}|"
    )
    return "\n".join(lines)


def render_table(registry: MetricsRegistry, width: int = 40) -> str:
    """Terminal view of the whole registry (the ``repro metrics`` body)."""
    scalar_rows: List[Tuple[str, str, str]] = []
    histogram_blocks: List[str] = []
    for family in registry.collect():
        for labels, child in family.series():
            key = series_key(family.name, labels)
            if isinstance(child, Histogram):
                histogram_blocks.append(render_histogram(key, child, width))
            else:
                scalar_rows.append((family.kind, key, _fmt(child.value)))
    lines: List[str] = []
    if scalar_rows:
        key_width = max(len(key) for _, key, _ in scalar_rows)
        for kind, key, value in scalar_rows:
            lines.append(f"{kind:<8} {key:<{key_width}}  {value}")
    if histogram_blocks:
        if lines:
            lines.append("")
        lines.extend(histogram_blocks)
    return "\n".join(lines)
