"""Periodic sampling of a registry into an ordered series of snapshots.

A :class:`Snapshot` flattens a :class:`~repro.metrics.registry.
MetricsRegistry` into ``{series key: float}`` at one instant: counters
and gauges verbatim, histograms as ``_count`` / ``_sum`` plus one entry
per requested quantile (``..._p50``, ``..._p99``).  Flat floats are
deliberate - snapshots are what the Chrome-trace counter track, the
JSON export, and the determinism tests consume, and all three want
plain comparable numbers.

The :class:`SnapshotSampler` drives capture off the run's own
:class:`~repro.core.events.EventLoop`, so the *same* code samples a
virtual-clock run (snapshot times are exact multiples of the period,
bit-for-bit reproducible) and a wall-clock network run (snapshots land
on real time).  The sampler never reads a wall clock itself - the
timestamp is the loop's clock reading, which is the whole determinism
story: re-running a seeded virtual run yields an identical snapshot
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .primitives import Histogram
from .registry import MetricsRegistry, series_key

# NOTE: this module deliberately imports nothing from repro.core.  The
# sampler duck-types its loop (anything with ``now`` and
# ``schedule_after`` works, in particular repro.core.events.EventLoop),
# which keeps repro.metrics a leaf package every layer may depend on.

__all__ = ["Snapshot", "SnapshotSampler", "capture"]

#: Quantiles captured per histogram, as (suffix, q) pairs.
DEFAULT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999),
)


@dataclass(frozen=True)
class Snapshot:
    """One registry reading: a timestamp plus flat series values."""

    #: The owning loop's clock at capture (virtual or wall seconds).
    time: float
    #: ``series key -> value``; histogram series expand to ``_count``,
    #: ``_sum`` and one ``_pXX`` entry per captured quantile.
    values: Dict[str, float] = field(default_factory=dict)

    def get(self, key: str, default: float = 0.0) -> float:
        return self.values.get(key, default)


def capture(
    registry: MetricsRegistry,
    time: float,
    quantiles: Sequence[Tuple[str, float]] = DEFAULT_QUANTILES,
) -> Snapshot:
    """Flatten ``registry`` into a :class:`Snapshot` stamped ``time``."""
    values: Dict[str, float] = {}
    for family in registry.collect():
        for labels, child in family.series():
            key = series_key(family.name, labels)
            if isinstance(child, Histogram):
                values[f"{key}_count"] = float(child.count)
                values[f"{key}_sum"] = child.sum
                estimates = child.percentiles([q for _, q in quantiles])
                for (suffix, _), estimate in zip(quantiles, estimates):
                    values[f"{key}_{suffix}"] = estimate
            else:
                values[key] = child.value  # Counter or Gauge
    return Snapshot(time=time, values=values)


class SnapshotSampler:
    """Capture a registry every ``period`` seconds of loop time.

    The sampler schedules itself on the loop like any other event, so
    under a virtual clock it costs nothing between ticks and its
    timestamps are exact.  ``keep_going`` (when given) is consulted
    after each capture: once it returns False the sampler takes that
    tick as its final snapshot and stops rescheduling, which is how a
    run-scoped sampler avoids keeping the loop alive forever.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        loop,
        period: float,
        quantiles: Sequence[Tuple[str, float]] = DEFAULT_QUANTILES,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.registry = registry
        self.loop = loop
        self.period = period
        self.quantiles = tuple(quantiles)
        self.snapshots: List[Snapshot] = []
        self._handle = None  # the pending tick's cancellable handle
        self._keep_going: Optional[Callable[[], bool]] = None
        self._running = False

    def start(self, keep_going: Optional[Callable[[], bool]] = None) -> None:
        """Take an immediate baseline snapshot and begin ticking."""
        if self._running:
            raise RuntimeError("sampler already started")
        self._running = True
        self._keep_going = keep_going
        self._capture()
        self._schedule()

    def stop(self) -> None:
        """Cancel the pending tick (snapshots taken so far are kept)."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def sample_now(self) -> Snapshot:
        """Capture one extra snapshot immediately (e.g. at run end)."""
        return self._capture()

    # -- internals -------------------------------------------------------------

    def _capture(self) -> Snapshot:
        snap = capture(self.registry, self.loop.now, self.quantiles)
        self.snapshots.append(snap)
        return snap

    def _schedule(self) -> None:
        self._handle = self.loop.schedule_after(self.period, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._capture()
        if self._keep_going is not None and not self._keep_going():
            self._running = False
            self._handle = None
            return
        self._schedule()
