"""Metric families and the registry that owns them.

A *family* is one named metric plus its label dimensions
(``loadgen_queries_issued_total{scenario="server"}``); each distinct
label-value combination materializes one primitive child on first use.
A :class:`MetricsRegistry` owns a namespace of families: registration
is idempotent (asking for an existing name returns the existing family)
but re-registering a name with a different type or label set is a
programming error and raises.

The intended pattern for hot paths is to resolve the child **once**::

    issued = registry.counter(
        "loadgen_queries_issued_total", "Queries issued by the LoadGen",
        labels=("scenario",),
    ).labels(scenario="server")
    ...
    issued.inc()          # per-query cost: one attribute add

so the per-event cost is a single unlocked attribute update, never a
dictionary lookup or string formatting.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .primitives import (
    DEFAULT_BASE,
    DEFAULT_BUCKETS,
    DEFAULT_GROWTH,
    Counter,
    Gauge,
    Histogram,
)

__all__ = [
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricFamily",
    "MetricsRegistry",
    "series_key",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def series_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical ``name{label="value",...}`` key for one series.

    Label order follows the family's declared label names, so the key is
    stable across runs - snapshot equality tests depend on that.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return f"{name}{{{inner}}}"


class MetricFamily:
    """One named metric and its labeled children (base class)."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(label_names):
            raise ValueError(f"duplicate label names in {label_names!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self) -> object:
        raise NotImplementedError

    def labels(self, **labels: object):
        """Return (creating on first use) the child for these labels."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def series(self) -> Iterator[Tuple[Dict[str, str], object]]:
        """Iterate ``(label dict, child)`` in insertion order."""
        for key, child in self._children.items():
            yield dict(zip(self.label_names, key)), child

    def _default(self):
        """The single unlabeled child (valid only when label-free)."""
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "use .labels(...)"
            )
        return self.labels()


class CounterFamily(MetricFamily):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    # Label-free convenience: the family acts as its single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    @property
    def value(self) -> float:
        return self._default().value


class GaugeFamily(MetricFamily):
    kind = "gauge"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 fn: Optional[Callable[[], float]] = None) -> None:
        super().__init__(name, help, label_names)
        self._fn = fn
        if fn is not None and label_names:
            raise ValueError(
                "callback gauges cannot take a family-wide callback; "
                "bind one callback per labeled child via labels_fn(...)"
            )

    def _make_child(self) -> Gauge:
        return Gauge(fn=self._fn)

    def labels_fn(self, fn: Callable[[], float], **labels: object) -> Gauge:
        """Bind a callback-backed child for these labels.

        Labeled families cannot carry a single family-wide callback (each
        series needs its own live state to pull from), so per-series
        callbacks are bound here instead: one call per label combination,
        e.g. ``prefix_cache_resident_tokens{replica="3"}`` pulling from
        replica 3's cache.  Binding the same label set twice returns the
        existing child; rebinding over a write-style child is an error.
        """
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = Gauge(fn=fn)
            self._children[key] = child
        elif child._fn is None:
            raise ValueError(
                f"series {series_key(self.name, dict(zip(self.label_names, key)))!r} "
                "already exists as a write-style gauge; cannot rebind it "
                "to a callback"
            )
        return child

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    @property
    def value(self) -> float:
        return self._default().value


class HistogramFamily(MetricFamily):
    kind = "histogram"

    def __init__(self, name: str, help: str,
                 label_names: Sequence[str] = (),
                 base: float = DEFAULT_BASE,
                 growth: float = DEFAULT_GROWTH,
                 buckets: int = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        self.base = base
        self.growth = growth
        self.buckets = buckets

    def _make_child(self) -> Histogram:
        return Histogram(base=self.base, growth=self.growth,
                         buckets=self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def percentile(self, q: float) -> float:
        return self._default().percentile(q)

    @property
    def count(self) -> int:
        return self._default().count


class MetricsRegistry:
    """A namespace of metric families, the unit of export and snapshot.

    One registry per observed entity: a LoadGen run, an
    ``InferenceServer``, a benchmark harness.  Registries are cheap -
    there is no global default, so two concurrent runs can never bleed
    series into each other.
    """

    def __init__(self, namespace: str = "") -> None:
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid namespace {namespace!r}")
        self.namespace = namespace
        self._families: Dict[str, MetricFamily] = {}

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, family: MetricFamily) -> MetricFamily:
        existing = self._families.get(family.name)
        if existing is not None:
            if (type(existing) is not type(family)
                    or existing.label_names != family.label_names):
                raise ValueError(
                    f"metric {family.name!r} already registered as "
                    f"{existing.kind}{existing.label_names}; cannot "
                    f"re-register as {family.kind}{family.label_names}"
                )
            return existing
        self._families[family.name] = family
        if not family.label_names:
            # Materialize the single child now so zero-valued and
            # callback-backed series show up in exports immediately.
            family.labels()
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> CounterFamily:
        """Register (or fetch) a counter family."""
        family = self._register(
            CounterFamily(self._full_name(name), help, labels))
        assert isinstance(family, CounterFamily)
        return family

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = (),
              fn: Optional[Callable[[], float]] = None) -> GaugeFamily:
        """Register (or fetch) a gauge family.

        With ``fn`` the gauge is callback-backed: its value is pulled
        from ``fn()`` at collection time and writes are rejected.
        """
        family = self._register(
            GaugeFamily(self._full_name(name), help, labels, fn=fn))
        assert isinstance(family, GaugeFamily)
        return family

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  base: float = DEFAULT_BASE,
                  growth: float = DEFAULT_GROWTH,
                  buckets: int = DEFAULT_BUCKETS) -> HistogramFamily:
        """Register (or fetch) a histogram family."""
        family = self._register(HistogramFamily(
            self._full_name(name), help, labels,
            base=base, growth=growth, buckets=buckets))
        assert isinstance(family, HistogramFamily)
        return family

    def collect(self) -> List[MetricFamily]:
        """All families, sorted by name (the export order)."""
        return [self._families[name] for name in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> Optional[MetricFamily]:
        """Fetch a family by (full) name, or ``None``."""
        return self._families.get(name)
