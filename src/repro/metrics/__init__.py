"""Live metrics & telemetry for the benchmark's moving parts.

The paper defines MLPerf Inference by its statistical methodology -
tail-latency percentiles, QPS, per-scenario metrics (Table V) - but a
run you can only analyse *after* it finishes is not an observable
system.  This package is the runtime half of that story: dependency-free
:class:`Counter` / :class:`Gauge` / :class:`Histogram` primitives, a
:class:`MetricsRegistry` of labeled families, a periodic
:class:`SnapshotSampler` driven by the run's own event loop (virtual or
wall clock), and Prometheus-text / JSON / terminal exporters.

Layering: ``repro.metrics`` imports nothing from the rest of the repo,
so every layer - LoadGen drivers, the network server, the fault
wrappers, the harness - can depend on it.  Instrumented code takes an
*optional* registry; with ``registry=None`` the hot paths skip
telemetry entirely, so an un-observed run pays one predicate test per
query and nothing more.

See ``docs/observability.md`` for the metric catalog (every name, type,
label, and emitting code path) and worked examples.
"""

from .export import (
    render_histogram,
    render_table,
    to_json,
    to_prometheus_text,
)
from .primitives import (
    DEFAULT_BASE,
    DEFAULT_BUCKETS,
    DEFAULT_GROWTH,
    Counter,
    Gauge,
    Histogram,
)
from .registry import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricFamily,
    MetricsRegistry,
    series_key,
)
from .snapshot import DEFAULT_QUANTILES, Snapshot, SnapshotSampler, capture

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BASE",
    "DEFAULT_BUCKETS",
    "DEFAULT_GROWTH",
    "DEFAULT_QUANTILES",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricFamily",
    "MetricsRegistry",
    "Snapshot",
    "SnapshotSampler",
    "capture",
    "render_histogram",
    "render_table",
    "series_key",
    "to_json",
    "to_prometheus_text",
]
