"""Process-parallel SUT: shard batches across worker processes.

``ParallelSUT`` is the execution backend the ROADMAP's
"sharding/batching/multi-backend" item calls for: the LoadGen side of
the Fig. 3 boundary is untouched, while the SUT side fans each dynamic
batch out over N worker processes (``repro.parallel.pool``) with
tensors travelling through shared memory (``repro.parallel.shm``).

Timing policy follows ``repro.sut.backend``: the wall-clock cost of a
dispatch is measured and replayed as virtual service time, or modelled
by a ``service_time_fn`` for deterministic studies.  For the parallel
case the model is applied *per shard* and the batch completes at the
max over shards -- the straggler defines the batch latency, which is
exactly the scaling curve the Offline benchmark measures.

Determinism: the dynamic batcher groups queries identically at any
worker count (it depends only on arrival order and the loop clock),
shards split the sample list contiguously, and outputs are recombined
in issue order -- so accuracy-mode results are reproducible bit-for-bit
whether one worker or eight did the arithmetic.

Crash handling: a worker killed mid-batch surfaces as ``QueryFailure``
for every query in the batch (never a hang), the dead worker is
respawned before the next dispatch, and ``ResilientSUT`` layered on top
turns those failures into retries -- the composition the fault-model
section of ``docs/architecture.md`` promises.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.query import Query, QuerySampleResponse
from ..core.sut import QuerySampleLibrary, Responder, SutBase
from ..core.events import EventLoop
from ..faults.plan import FaultInjector, FaultPlan, FaultType
from ..metrics import MetricsRegistry
from .batching import BatchingPolicy, DynamicBatcher
from .pool import WorkerCrashed, WorkerPool, shard_evenly


class _ParallelInstruments:
    """``parallel_*`` metric families (see ``docs/observability.md``).

    All counters are bumped from the loop thread that runs dispatches,
    satisfying the registry's single-writer contract.
    """

    def __init__(self, registry: MetricsRegistry, workers: int) -> None:
        self.dispatches = registry.counter(
            "parallel_dispatches_total",
            "Batches fanned out across the worker pool")
        self.batch_size = registry.histogram(
            "parallel_batch_size_samples",
            "Samples in each dispatched batch",
            base=1.0, growth=2.0 ** 0.25, buckets=72)
        self.batch_wait = registry.histogram(
            "parallel_batch_wait_seconds",
            "Loop-clock time each query sat in the dynamic batcher")
        self.dispatch_seconds = registry.histogram(
            "parallel_dispatch_seconds",
            "Wall seconds per dispatch (ship + compute + collect)")
        self.transfer_bytes = registry.counter(
            "parallel_transfer_bytes_total",
            "Bytes moved between the SUT and its workers",
            labels=("direction",))
        self.worker_samples = registry.counter(
            "parallel_worker_samples_total",
            "Samples each worker computed", labels=("worker",))
        self.worker_busy = registry.counter(
            "parallel_worker_busy_seconds_total",
            "Self-reported compute seconds per worker",
            labels=("worker",))
        self.crashes = registry.counter(
            "parallel_worker_crashes_total",
            "Worker deaths observed mid-batch")
        self.restarts = registry.counter(
            "parallel_worker_restarts_total",
            "Dead workers respawned before a dispatch")
        # Pre-resolve per-worker children: dispatch is the hot path.
        self._in = self.transfer_bytes.labels(direction="in")
        self._out = self.transfer_bytes.labels(direction="out")
        self._samples = [
            self.worker_samples.labels(worker=str(i)) for i in range(workers)]
        self._busy = [
            self.worker_busy.labels(worker=str(i)) for i in range(workers)]


class ParallelSUT(SutBase):
    """Shard query batches across a pool of worker processes.

    Parameters mirror the numpy backends in ``repro.sut.backend`` plus
    the pool knobs:

    ``worker_factory``
        Called once inside each worker process; returns
        ``predict(samples) -> outputs`` (a list of per-sample outputs,
        or one stacked ``ndarray``).  May accept one positional
        argument to receive the worker's deterministically seeded
        ``numpy`` Generator.
    ``service_time_fn``
        Optional ``f(shard_sample_count) -> seconds`` model applied per
        shard; the batch completes at ``max`` over its non-empty
        shards.  Omitted, the measured wall time of the dispatch is
        replayed (virtual clock) or already elapsed (wall clock).
    ``crash_plan``
        A ``FaultPlan`` or ``FaultInjector`` whose ``STALL`` decisions
        are interpreted as "kill one worker before this query's batch
        dispatches" -- decisions stay pure in (seed, query id, attempt),
        so crash schedules are reproducible and retry attempts draw
        fresh decisions.
    """

    def __init__(self, worker_factory: Callable, qsl: QuerySampleLibrary,
                 *, workers: int = 2,
                 policy: Optional[BatchingPolicy] = None,
                 seed: int = 0,
                 transport: str = "shm",
                 service_time_fn: Optional[Callable[[int], float]] = None,
                 crash_plan=None,
                 job_timeout: Optional[float] = None,
                 registry: Optional[MetricsRegistry] = None,
                 name: Optional[str] = None) -> None:
        super().__init__(name or f"parallel[{workers}]")
        self._qsl = qsl
        self.policy = policy or BatchingPolicy()
        self.pool = WorkerPool(
            worker_factory, workers, seed=seed, transport=transport,
            job_timeout=job_timeout)
        self._service_time_fn = service_time_fn
        self._batcher: Optional[DynamicBatcher] = None
        self._m = (_ParallelInstruments(registry, workers)
                   if registry is not None else None)
        if isinstance(crash_plan, FaultPlan):
            crash_plan = FaultInjector(crash_plan)
        self._crash_injector: Optional[FaultInjector] = crash_plan
        self._attempts: Dict[int, int] = {}
        self._victims = itertools.cycle(range(workers))

    @property
    def workers(self) -> int:
        return self.pool.workers

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.pool.start()
        self._batcher = DynamicBatcher(loop, self.policy, self._dispatch)
        self._attempts.clear()

    def issue_query(self, query: Query) -> None:
        self._batcher.add(query)

    def flush(self) -> None:
        if self._batcher is not None:
            self._batcher.flush()

    def close(self) -> None:
        """Shut the worker pool down and release the arenas."""
        self.pool.close()

    def __enter__(self) -> "ParallelSUT":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch machinery -------------------------------------------

    def _inject_crashes(self, queries: Sequence[Query]) -> None:
        if self._crash_injector is None:
            return
        for query in queries:
            attempt = self._attempts.get(query.id, 0)
            self._attempts[query.id] = attempt + 1
            decision = self._crash_injector.decide(query.id, attempt)
            if decision is not None and decision.fault is FaultType.STALL:
                self.pool.kill_worker(next(self._victims))

    def _dispatch(self, batch: Sequence[Tuple[Query, float]]) -> None:
        queries = [query for query, _wait in batch]
        samples = [
            self._qsl.get_sample(sample.index)
            for query in queries for sample in query.samples
        ]
        restarted = self.pool.ensure_alive()
        self._inject_crashes(queries)
        shards = shard_evenly(samples, self.pool.workers)
        started = time.perf_counter()
        try:
            outcomes = self.pool.run_shards(shards)
        except WorkerCrashed as crash:
            self._complete_batch(
                batch, outputs=None, shards=shards,
                elapsed=time.perf_counter() - started,
                failure=str(crash), restarted=restarted)
            return
        outputs: List[object] = []
        for outcome in outcomes:
            outputs.extend(outcome.outputs)
        self._complete_batch(
            batch, outputs=outputs, shards=shards,
            elapsed=time.perf_counter() - started,
            failure=None, restarted=restarted, outcomes=outcomes)

    def _duration(self, shards: Sequence[Sequence[object]],
                  elapsed: float) -> float:
        if self._service_time_fn is not None:
            return max(
                (self._service_time_fn(len(shard))
                 for shard in shards if shard), default=0.0)
        # Wall-clock loops already spent the time inside this dispatch;
        # virtual loops replay the measurement as service time.
        return 0.0 if self.loop.realtime else elapsed

    def _complete_batch(self, batch, *, outputs, shards, elapsed,
                        failure, restarted, outcomes=()) -> None:
        duration = self._duration(shards, elapsed)
        position = 0
        # Completions are scheduled query by query in issue order at one
        # instant; the loop's FIFO-per-instant ordering keeps the
        # QueryLog sequence identical at any worker count.
        for query, _wait in batch:
            if failure is not None:
                self.loop.schedule_after(
                    duration,
                    lambda q=query: self.fail(q, failure))
                continue
            outs = outputs[position:position + query.sample_count]
            position += query.sample_count
            if len(outs) != query.sample_count:
                self.loop.schedule_after(
                    duration,
                    lambda q=query: self.fail(
                        q, "worker pool returned a short batch"))
                continue
            responses = [
                QuerySampleResponse(sample.id, out)
                for sample, out in zip(query.samples, outs)
            ]
            self.loop.schedule_after(
                duration,
                lambda q=query, r=responses: self.complete(q, r))
        self._record(batch, shards, elapsed, failure, restarted, outcomes)

    def _record(self, batch, shards, elapsed, failure, restarted,
                outcomes) -> None:
        m = self._m
        if m is None:
            return
        m.dispatches.inc()
        m.batch_size.observe(sum(q.sample_count for q, _ in batch))
        for _query, wait in batch:
            m.batch_wait.observe(wait)
        m.dispatch_seconds.observe(elapsed)
        if restarted:
            m.restarts.inc(restarted)
        if failure is not None:
            m.crashes.inc()
            return
        for index, outcome in enumerate(outcomes):
            if outcome.outputs:
                m._samples[index].inc(len(outcome.outputs))
                m._busy[index].inc(outcome.compute_seconds)
            m._in.inc(outcome.bytes_in)
            m._out.inc(outcome.bytes_out)
