"""Dynamic batching for the parallel backend.

Same shape as the edge batcher inside ``repro.network.server``'s
request queue -- accumulate until either ``max_batch_size`` samples are
pending or the oldest query has waited ``max_wait`` seconds -- but
driven by the SUT's event loop instead of a condition variable, so it
behaves identically under the virtual clock (deterministic tests) and
the wall clock (real serving).

Queries are never split: a query's samples always travel in one
dispatch, because the LoadGen's latency accounting is per query.  An
oversized query simply ships as its own batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.events import EventLoop
from ..core.query import Query


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs for the dynamic batcher.

    ``max_wait`` is in seconds (the paper's serving systems quote
    microseconds; 2000us is the default here).  ``max_batch_size``
    counts samples, not queries, matching the device-side batch the
    workers actually see.
    """

    max_batch_size: int = 256
    max_wait: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


class DynamicBatcher:
    """Accumulates queries and fires ``dispatch`` with the batch.

    ``dispatch`` receives ``[(query, wait_seconds), ...]`` in arrival
    order, where ``wait_seconds`` is how long each query sat in the
    batcher (loop-clock time, so exact under the virtual clock).
    """

    def __init__(self, loop: EventLoop, policy: BatchingPolicy,
                 dispatch: Callable[[Sequence[Tuple[Query, float]]], None],
                 ) -> None:
        self._loop = loop
        self._policy = policy
        self._dispatch = dispatch
        self._pending: List[Tuple[Query, float]] = []
        self._pending_samples = 0
        self._timer: Optional[object] = None
        self.batches = 0  #: dispatch count (observability)

    @property
    def pending_samples(self) -> int:
        return self._pending_samples

    def add(self, query: Query) -> None:
        self._pending.append((query, self._loop.now))
        self._pending_samples += query.sample_count
        if self._pending_samples >= self._policy.max_batch_size:
            self._fire()
        elif self._timer is None and self._policy.max_wait > 0:
            self._timer = self._loop.schedule_after(
                self._policy.max_wait, self._on_timer)
        elif self._policy.max_wait == 0:
            self._fire()

    def flush(self) -> None:
        """Dispatch whatever is pending (end of run / drain)."""
        if self._pending:
            self._fire()

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self._fire()

    def _fire(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self._pending_samples = 0
        now = self._loop.now
        self.batches += 1
        self._dispatch([(query, now - arrived) for query, arrived in batch])
