"""Process-parallel execution backend (ROADMAP: sharding/batching).

The LoadGen never learns how many processes did the arithmetic: this
package implements the submitter side of the paper's Fig. 3 boundary
as a pool of worker processes fed through shared memory, behind the
same ``SystemUnderTest`` protocol every other backend speaks.

* :mod:`repro.parallel.shm` -- growable shared-memory arenas; tensors
  move as ``(offset, dtype, shape)`` descriptors, never pickles.
* :mod:`repro.parallel.pool` -- the worker processes: deterministic
  seeding, crash detection, respawn, transfer accounting.
* :mod:`repro.parallel.batching` -- the dynamic batcher (max batch
  size + max wait), event-loop driven so virtual-clock runs are exact.
* :mod:`repro.parallel.sut` -- :class:`ParallelSUT`, tying the above
  behind ``issue_query``/``flush`` with ``parallel_*`` telemetry.
"""

from .batching import BatchingPolicy, DynamicBatcher
from .pool import PoolStats, ShardOutcome, WorkerCrashed, WorkerPool, shard_evenly
from .shm import ShmArena
from .sut import ParallelSUT

__all__ = [
    "BatchingPolicy",
    "DynamicBatcher",
    "ParallelSUT",
    "PoolStats",
    "ShardOutcome",
    "ShmArena",
    "WorkerCrashed",
    "WorkerPool",
    "shard_evenly",
]
