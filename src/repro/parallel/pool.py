"""Process worker pool for the parallel SUT backend.

One OS process per worker, a duplex pipe each for control messages, and
a pair of shared-memory arenas per worker (input tensors down, result
tensors up) so the hot path moves descriptors, not data.  The design
constraints, in order:

* **Determinism** -- worker ``index`` and the pool ``seed`` fully
  determine each worker's RNG (``SeedSequence((seed, index))``), so an
  accuracy run is bit-for-bit reproducible at any worker count: the
  shard -> worker mapping is a pure function of the sample order.  A
  crash *replacement* worker derives from
  ``SeedSequence((seed, index, restart_count))`` instead -- still fully
  deterministic, but never a replay of the dead worker's stream.
* **Crash visibility** -- a worker dying mid-batch must surface as a
  :class:`WorkerCrashed` within one poll interval, never as a hang.
  The SUT layer turns that into ``QueryFailure`` so ``ResilientSUT``
  can retry; dead workers are respawned before the next dispatch.
* **No pickling of tensors on the hot path** -- numpy shards travel
  through :mod:`repro.parallel.shm`; the pipe carries only job ids and
  array specs.  A ``transport="pickle"`` mode exists purely so the
  benchmark can quantify what the arena buys.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .shm import ArenaCache, ArraySpec, ShmArena, as_arrays, packed_size

#: Seconds between liveness polls while waiting on a worker reply.
_POLL = 0.05


class WorkerCrashed(RuntimeError):
    """A worker process died (or timed out) with a job outstanding."""

    def __init__(self, index: int, detail: str) -> None:
        super().__init__(f"worker {index} crashed: {detail}")
        self.index = index
        self.detail = detail


@dataclass
class ShardOutcome:
    """What one worker reported back for its shard of a dispatch."""

    outputs: List[object]
    compute_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    via_shm: bool = True


@dataclass
class _Worker:
    index: int
    process: multiprocessing.Process
    conn: object
    input_arena: ShmArena
    result_arena: ShmArena
    jobs: int = 0


@dataclass
class PoolStats:
    """Cumulative transfer accounting, read by the SUT's instruments."""

    bytes_in: int = 0
    bytes_out: int = 0
    shm_dispatches: int = 0
    pickle_dispatches: int = 0
    restarts: int = 0
    crashes: int = 0
    per_worker_jobs: dict = field(default_factory=dict)


def _predictor(factory: Callable, rng: np.random.Generator) -> Callable:
    """Build the worker's predict function, passing the seeded RNG when
    the factory declares a positional parameter for it."""
    import inspect

    wants_rng = False
    try:
        params = inspect.signature(factory).parameters.values()
        wants_rng = any(
            p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            and p.default is p.empty
            for p in params
        )
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        pass
    return factory(rng) if wants_rng else factory()


def _pack_outputs(outputs, result_seg) -> Optional[tuple]:
    """Try to place ``outputs`` in the worker's result arena.

    Returns the reply payload, or ``None`` when the arena is too small
    (the parent grows it and the reply falls back to pickle this once).
    """
    offset = 0

    def write(arr: np.ndarray) -> ArraySpec:
        nonlocal offset
        contig = np.ascontiguousarray(arr).reshape(arr.shape)
        view = np.ndarray(contig.shape, dtype=contig.dtype,
                          buffer=result_seg.buf, offset=offset)
        view[...] = contig
        spec = (offset, contig.dtype.str, tuple(contig.shape))
        offset += (contig.nbytes + 63) // 64 * 64
        return spec

    if isinstance(outputs, np.ndarray):
        if packed_size([outputs]) > result_seg.size:
            return None
        return ("shm-stack", write(outputs))
    arrays = as_arrays(outputs)
    if arrays is not None:
        if packed_size(arrays) > result_seg.size:
            return None
        return ("shm", [write(a) for a in arrays])
    return ("pickle", pickle.dumps(list(outputs), protocol=5), 0)


def _worker_main(index: int, seed: int, restart: int, conn,
                 factory: Callable) -> None:
    """Worker process entry point: seed, build the model, serve jobs.

    ``restart`` is how many times this slot has been respawned.  The
    original worker (restart 0) seeds from ``(seed, index)`` - the
    documented purity contract - while a replacement derives a *fresh*
    stream from ``(seed, index, restart)``: a restarted worker must not
    replay the dead worker's draws, or retried work would silently see
    the same "random" behavior that was in flight when it crashed.
    """
    key = (seed, index) if restart == 0 else (seed, index, restart)
    sequence = np.random.SeedSequence(key)
    np.random.seed(int(sequence.generate_state(1)[0]))
    predict = _predictor(factory, np.random.default_rng(sequence))
    arenas = ArenaCache()
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, job_id, payload, result_name = message
            try:
                if payload[0] == "shm":
                    _, input_name, specs = payload
                    samples = ShmArena.read(arenas.get(input_name), specs)
                else:
                    samples = pickle.loads(payload[1])
                started = time.perf_counter()
                outputs = predict(samples)
                compute = time.perf_counter() - started
                if payload[0] == "shm":
                    reply = _pack_outputs(outputs, arenas.get(result_name))
                    if reply is None:  # arena too small: pickle this once
                        blob = pickle.dumps(_listify(outputs), protocol=5)
                        reply = ("pickle", blob, _needed_bytes(outputs))
                else:
                    reply = ("pickle",
                             pickle.dumps(_listify(outputs), protocol=5), 0)
                conn.send(("ok", job_id, reply, compute))
            except Exception:
                conn.send(("err", job_id, traceback.format_exc(limit=8)))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        arenas.close()
        conn.close()


def _listify(outputs) -> list:
    if isinstance(outputs, np.ndarray):
        return list(outputs)
    return list(outputs)


def _needed_bytes(outputs) -> int:
    if isinstance(outputs, np.ndarray):
        return packed_size([outputs])
    arrays = as_arrays(outputs)
    return packed_size(arrays) if arrays is not None else 0


class WorkerPool:
    """N model processes fed through pipes + shared-memory arenas.

    ``factory`` must be picklable-or-forkable: with the default fork
    start method any closure works; under spawn it must be a
    module-level callable.  It is called once inside each worker --
    optionally with the worker's seeded ``numpy`` Generator if it takes
    a required positional argument -- and must return
    ``predict(samples) -> outputs``.
    """

    def __init__(self, factory: Callable, workers: int, *,
                 seed: int = 0, transport: str = "shm",
                 job_timeout: Optional[float] = None,
                 start_method: str = "fork") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if transport not in ("shm", "pickle"):
            raise ValueError(f"unknown transport {transport!r}")
        self._factory = factory
        self.workers = workers
        self.seed = seed
        self.transport = transport
        self.job_timeout = job_timeout
        try:
            self._ctx = multiprocessing.get_context(start_method)
        except ValueError:  # pragma: no cover - e.g. no fork on platform
            self._ctx = multiprocessing.get_context()
        self._members: List[Optional[_Worker]] = [None] * workers
        #: Per-slot respawn count; feeds the replacement worker's
        #: ``SeedSequence((seed, index, restart_count))`` derivation.
        self._restarts: List[int] = [0] * workers
        self._job_ids = iter(range(1, 1 << 62))
        self.stats = PoolStats()
        self._started = False

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self.workers):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        # Arenas are created *before* the fork so the parent's resource
        # tracker is already running and gets inherited: a worker that
        # started its own tracker would unlink parent-owned segments on
        # exit (see repro.parallel.shm.attach).
        old = self._members[index]
        input_arena = (old.input_arena if old
                       else ShmArena(f"in{index}-{id(self)}"))
        result_arena = (old.result_arena if old
                        else ShmArena(f"out{index}-{id(self)}"))
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, self.seed, self._restarts[index], child_conn,
                  self._factory),
            name=f"repro-parallel-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._members[index] = _Worker(
            index=index,
            process=process,
            conn=parent_conn,
            input_arena=input_arena,
            result_arena=result_arena,
        )

    def ensure_alive(self) -> int:
        """Respawn any dead worker; returns how many were restarted."""
        if not self._started:
            self.start()
            return 0
        restarted = 0
        for index, member in enumerate(self._members):
            if member is None or not member.process.is_alive():
                if member is not None:
                    member.conn.close()
                    member.process.join(timeout=1.0)
                self._restarts[index] += 1
                self._spawn(index)
                restarted += 1
        self.stats.restarts += restarted
        return restarted

    @property
    def alive_workers(self) -> int:
        return sum(
            1 for m in self._members
            if m is not None and m.process.is_alive())

    def kill_worker(self, index: int) -> None:
        """SIGKILL a worker (fault injection / crash tests)."""
        member = self._members[index % self.workers]
        if member is not None and member.process.is_alive():
            member.process.kill()
            member.process.join(timeout=2.0)

    def close(self) -> None:
        for member in self._members:
            if member is None:
                continue
            try:
                if member.process.is_alive():
                    member.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for member in self._members:
            if member is None:
                continue
            member.process.join(timeout=2.0)
            if member.process.is_alive():  # pragma: no cover - stuck worker
                member.process.kill()
                member.process.join(timeout=2.0)
            member.conn.close()
            member.input_arena.close()
            member.result_arena.close()
        self._members = [None] * self.workers
        # A deliberately closed-and-reopened pool is a fresh run, not a
        # crash recovery: the (seed, index) purity contract applies again.
        self._restarts = [0] * self.workers
        self._started = False

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch -----------------------------------------------------

    def run_shards(self, shards: Sequence[Sequence[object]],
                   ) -> List[ShardOutcome]:
        """Run ``shards[i]`` on worker ``i``; outcomes in shard order.

        Empty shards are skipped without touching their worker.  Raises
        :class:`WorkerCrashed` if any involved worker dies or exceeds
        ``job_timeout``; callers decide whether that fails the batch or
        feeds a retry wrapper.
        """
        if len(shards) > self.workers:
            raise ValueError(
                f"{len(shards)} shards for {self.workers} workers")
        if not self._started:
            self.start()
        job_id = next(self._job_ids)
        sent: List[Optional[int]] = []  # bytes_in per shard, None=skipped
        for index, shard in enumerate(shards):
            if not shard:
                sent.append(None)
                continue
            sent.append(self._send_job(index, job_id, shard))
        outcomes: List[ShardOutcome] = []
        for index, shard in enumerate(shards):
            if sent[index] is None:
                outcomes.append(ShardOutcome(outputs=[]))
                continue
            outcome = self._collect(index, job_id, len(shard))
            outcome.bytes_in = sent[index]
            outcomes.append(outcome)
        return outcomes

    def _send_job(self, index: int, job_id: int,
                  shard: Sequence[object]) -> int:
        member = self._members[index]
        if member is None or not member.process.is_alive():
            self._reap(index)
            raise WorkerCrashed(index, "dead before dispatch")
        arrays = as_arrays(shard) if self.transport == "shm" else None
        if arrays is not None:
            specs = member.input_arena.write(arrays)
            payload = ("shm", member.input_arena.name, specs)
            bytes_in = packed_size(arrays)
            # Presize the result arena pessimistically: model outputs
            # rarely exceed their inputs, so overflow pickles are rare.
            member.result_arena.ensure(max(bytes_in, 1 << 12))
            self.stats.shm_dispatches += 1
        else:
            blob = pickle.dumps(list(shard), protocol=5)
            payload = ("pickle", blob)
            bytes_in = len(blob)
            self.stats.pickle_dispatches += 1
        try:
            member.conn.send(("job", job_id, payload,
                              member.result_arena.name))
        except (BrokenPipeError, OSError) as exc:
            self._reap(index)
            raise WorkerCrashed(index, f"pipe broke on send: {exc}")
        member.jobs += 1
        self.stats.bytes_in += bytes_in
        self.stats.per_worker_jobs[index] = (
            self.stats.per_worker_jobs.get(index, 0) + 1)
        return bytes_in

    def _collect(self, index: int, job_id: int,
                 shard_len: int) -> ShardOutcome:
        member = self._members[index]
        assert member is not None
        deadline = (time.monotonic() + self.job_timeout
                    if self.job_timeout else None)
        while True:
            try:
                ready = member.conn.poll(_POLL)
            except (BrokenPipeError, OSError):
                ready = False
            if ready:
                try:
                    message = member.conn.recv()
                except (EOFError, OSError) as exc:
                    self._reap(index)
                    raise WorkerCrashed(index, f"pipe closed: {exc}")
                kind = message[0]
                if message[1] != job_id:
                    continue  # stale reply from before a crash-retry
                if kind == "err":
                    raise WorkerCrashed(index, message[2])
                return self._decode(member, message, shard_len)
            if not member.process.is_alive():
                self._reap(index)
                raise WorkerCrashed(
                    index,
                    f"exit code {member.process.exitcode} mid-batch")
            if deadline is not None and time.monotonic() > deadline:
                member.process.kill()
                self._reap(index)
                raise WorkerCrashed(
                    index, f"job timeout after {self.job_timeout}s")

    def _decode(self, member: _Worker, message, shard_len: int,
                ) -> ShardOutcome:
        _, _, reply, compute = message
        if reply[0] == "shm-stack":
            stacked = member.result_arena.read_own([reply[1]])[0]
            outputs = list(stacked)
            bytes_out = packed_size([stacked])
        elif reply[0] == "shm":
            outputs = member.result_arena.read_own(reply[1])
            bytes_out = sum((a.nbytes + 63) // 64 * 64 for a in outputs)
        else:
            outputs = pickle.loads(reply[1])
            bytes_out = len(reply[1])
            if reply[2]:  # result arena overflowed: grow for next time
                member.result_arena.ensure(reply[2])
        if len(outputs) != shard_len:
            raise WorkerCrashed(
                member.index,
                f"returned {len(outputs)} outputs for {shard_len} samples")
        self.stats.bytes_out += bytes_out
        return ShardOutcome(outputs=outputs, compute_seconds=compute,
                            bytes_out=bytes_out,
                            via_shm=reply[0] != "pickle")

    def _reap(self, index: int) -> None:
        member = self._members[index]
        if member is None:
            return
        self.stats.crashes += 1
        try:
            member.conn.close()
        except OSError:  # pragma: no cover
            pass
        member.process.join(timeout=1.0)


def shard_evenly(samples: Sequence[object], shards: int,
                 ) -> List[List[object]]:
    """Split ``samples`` into ``shards`` contiguous, near-even parts.

    Contiguity keeps the recombination order a pure function of the
    sample order -- the determinism guarantee leans on this.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    total = len(samples)
    out: List[List[object]] = []
    start = 0
    for i in range(shards):
        size = total // shards + (1 if i < total % shards else 0)
        out.append(list(samples[start:start + size]))
        start += size
    return out
