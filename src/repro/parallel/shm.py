"""Shared-memory tensor transport for the process-parallel backend.

Shipping query samples to worker processes through a pickle round-trip
copies every tensor twice (serialize, deserialize) and burns the issue
thread on encoding.  The paper's Offline scenario is explicitly a
throughput contest (MLPerf Inference, Reddi et al., ISCA 2020, SIII-C),
so the hot path here writes numpy arrays straight into a
``multiprocessing.shared_memory`` block and sends only a tiny
descriptor -- ``(offset, dtype, shape)`` per array -- over the control
pipe.  Workers map the same block and read the tensors zero-copy.

Arenas grow geometrically and are reused across dispatches, so the
steady state does no allocation at all.  The parent process owns every
segment (creation and unlinking); workers only ever attach, which keeps
cleanup single-owner and leak-free even when a worker is killed
mid-batch.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Byte alignment for packed arrays; cache-line sized so a worker's
#: reads never straddle a neighbouring tensor's tail.
_ALIGN = 64

#: ``(offset, dtype-str, shape)`` -- everything a reader needs to map
#: one packed array out of an arena.
ArraySpec = Tuple[int, str, Tuple[int, ...]]


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def packed_size(arrays: Sequence[np.ndarray]) -> int:
    """Bytes required to pack ``arrays`` back to back with alignment."""
    return sum(_aligned(a.nbytes) for a in arrays)


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    Workers are forked after the parent's resource tracker is running,
    so parent and children share one tracker whose name cache is a set:
    the child's attach-time register (gh-82300) is a no-op duplicate
    and the parent's single ``unlink`` retires the name exactly once.
    """
    return shared_memory.SharedMemory(name=name)


class ShmArena:
    """A growable shared-memory block owned by the creating process.

    ``write`` packs a list of arrays and returns their specs; ``read``
    maps specs back into (copied) arrays.  Growth replaces the segment
    with a fresh, larger one under a new name -- readers learn the new
    name from the next job descriptor, so no coordination is needed.
    """

    def __init__(self, tag: str, capacity: int = 1 << 16) -> None:
        self._tag = tag
        self._serial = 0
        self._seg = shared_memory.SharedMemory(
            create=True, size=max(capacity, _ALIGN),
            name=self._next_name())
        self.grown = 0  #: number of grow-by-recreate events (observability)

    def _next_name(self) -> str:
        self._serial += 1
        return f"repro-{self._tag}-{self._serial}"

    @property
    def name(self) -> str:
        return self._seg.name

    @property
    def capacity(self) -> int:
        return self._seg.size

    def ensure(self, nbytes: int) -> None:
        """Grow (by recreation) until at least ``nbytes`` fit."""
        if nbytes <= self._seg.size:
            return
        size = self._seg.size
        while size < nbytes:
            size *= 2
        old = self._seg
        self._seg = shared_memory.SharedMemory(
            create=True, size=size, name=self._next_name())
        self.grown += 1
        old.close()
        old.unlink()

    def write(self, arrays: Sequence[np.ndarray]) -> List[ArraySpec]:
        """Pack ``arrays`` into the arena, growing it if needed."""
        self.ensure(packed_size(arrays))
        specs: List[ArraySpec] = []
        offset = 0
        buf = self._seg.buf
        for arr in arrays:
            # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
            contig = np.ascontiguousarray(arr).reshape(arr.shape)
            view = np.ndarray(
                contig.shape, dtype=contig.dtype, buffer=buf, offset=offset)
            view[...] = contig
            specs.append((offset, contig.dtype.str, tuple(contig.shape)))
            offset += _aligned(contig.nbytes)
        return specs

    @staticmethod
    def read(seg: shared_memory.SharedMemory,
             specs: Sequence[ArraySpec]) -> List[np.ndarray]:
        """Copy the described arrays out of ``seg``.

        The copy is deliberate: the arena is reused for the next
        dispatch, so borrowed views would be silently overwritten.
        """
        out = []
        for offset, dtype, shape in specs:
            view = np.ndarray(shape, dtype=np.dtype(dtype),
                              buffer=seg.buf, offset=offset)
            out.append(np.array(view, copy=True))
        return out

    def read_own(self, specs: Sequence[ArraySpec]) -> List[np.ndarray]:
        """``read`` against this arena's own segment."""
        return self.read(self._seg, specs)

    def close(self, unlink: bool = True) -> None:
        self._seg.close()
        if unlink:
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ArenaCache:
    """Name-keyed cache of attached segments (worker side).

    A worker sees a new arena name only when the parent grew the block;
    stale attachments are dropped eagerly because at most one input and
    one output arena are live per worker.
    """

    def __init__(self) -> None:
        self._segs: dict = {}

    def get(self, name: str) -> shared_memory.SharedMemory:
        seg = self._segs.get(name)
        if seg is None:
            # Drop stale segments: a new name supersedes the old block.
            self.close()
            seg = attach(name)
            self._segs[name] = seg
        return seg

    def close(self) -> None:
        for seg in self._segs.values():
            seg.close()
        self._segs.clear()


def as_arrays(samples: Sequence[object]) -> Optional[List[np.ndarray]]:
    """The samples as numpy arrays if *all* of them are, else ``None``.

    Mixed batches fall back to pickle transport; the benchmark
    quantifies exactly what that fallback costs.
    """
    if not samples:
        return None
    if all(isinstance(s, np.ndarray) for s in samples):
        return list(samples)  # type: ignore[arg-type]
    return None
