"""repro: a pure-Python reproduction of the MLPerf Inference benchmark.

The package mirrors the paper's decomposition:

* ``repro.core``       - the LoadGen, scenarios, statistics, run rules;
* ``repro.models``     - reference-model substrate (architectures,
                         runnable instantiations, NMS, quantization);
* ``repro.datasets``   - synthetic ImageNet/COCO/WMT16 stand-ins;
* ``repro.accuracy``   - Top-1 / mAP / BLEU and the accuracy script;
* ``repro.sut``        - simulated devices, backends, and the fleet;
* ``repro.audit``      - the Section V-B validation suite;
* ``repro.submission`` - submission schema, checker, review, reporting;
* ``repro.harness``    - capacity tuning, fleet sweeps, table formatters.

Quickstart::

    from repro.core import Scenario, TestSettings, run_benchmark
    from repro.datasets import DatasetQSL, SyntheticImageNet
    from repro.models.runtime import build_glyph_classifier
    from repro.sut import ClassifierSUT

    dataset = SyntheticImageNet(size=512)
    qsl = DatasetQSL(dataset)
    model = build_glyph_classifier(dataset, variant="heavy")
    sut = ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.002 * n)
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=256, min_duration=1.0)
    result = run_benchmark(sut, qsl, settings)
    print(result.summary())
"""

__version__ = "0.5.0"
