"""Fault injection and run-resilience tooling.

The referee side of MLPerf Inference is only credible if it can referee:
this package supplies deterministic misbehavior (``FaultPlan`` /
``FaultInjector`` / ``FaultySUT``) to prove the hardened LoadGen always
terminates with the right verdict, and a submitter-side retry wrapper
(``ResilientSUT``) that turns transient faults back into VALID runs.
Correlated, fleet-wide failures - zone outages, gray failures,
asymmetric partitions - are driven by the seeded
``ChaosSchedule``/``ChaosOrchestrator`` pair through per-replica
``DegradedSUT`` valves (``docs/chaos.md``).
"""

from .burst import BurstPlan, BurstWindow
from .chaos import (
    CHAOS_KINDS,
    ChaosDecision,
    ChaosEvent,
    ChaosOrchestrator,
    ChaosSchedule,
    ChaosWindow,
)
from .filtering import CompletionFilter, Screened, malformed_reason
from .plan import (
    TRANSIENT_FAULTS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultType,
)
from .resilient import ResilienceStats, ResilientSUT, RetryPolicy
from .sut import BrownoutSUT, DegradedSUT, FaultySUT, OutageSUT

__all__ = [
    "CHAOS_KINDS",
    "TRANSIENT_FAULTS",
    "BrownoutSUT",
    "BurstPlan",
    "BurstWindow",
    "ChaosDecision",
    "ChaosEvent",
    "ChaosOrchestrator",
    "ChaosSchedule",
    "ChaosWindow",
    "CompletionFilter",
    "DegradedSUT",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultType",
    "FaultySUT",
    "OutageSUT",
    "ResilienceStats",
    "ResilientSUT",
    "RetryPolicy",
    "Screened",
    "malformed_reason",
]
