"""Fault injection and run-resilience tooling.

The referee side of MLPerf Inference is only credible if it can referee:
this package supplies deterministic misbehavior (``FaultPlan`` /
``FaultInjector`` / ``FaultySUT``) to prove the hardened LoadGen always
terminates with the right verdict, and a submitter-side retry wrapper
(``ResilientSUT``) that turns transient faults back into VALID runs.
"""

from .burst import BurstPlan, BurstWindow
from .filtering import CompletionFilter, Screened, malformed_reason
from .plan import (
    TRANSIENT_FAULTS,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    FaultType,
)
from .resilient import ResilienceStats, ResilientSUT, RetryPolicy
from .sut import BrownoutSUT, FaultySUT, OutageSUT

__all__ = [
    "TRANSIENT_FAULTS",
    "BrownoutSUT",
    "BurstPlan",
    "BurstWindow",
    "CompletionFilter",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultType",
    "FaultySUT",
    "OutageSUT",
    "ResilienceStats",
    "ResilientSUT",
    "RetryPolicy",
    "Screened",
    "malformed_reason",
]
