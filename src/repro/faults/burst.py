"""Scheduled arrival-rate bursts: the flash-crowd fault plan.

Outages and brownouts degrade the *supply* side of a serving system;
this module degrades *demand*.  A :class:`BurstPlan` is a set of
non-overlapping :class:`BurstWindow` spans during which the Server
scenario's Poisson arrival rate is multiplied - the classic flash crowd
(multiplier > 1) or a traffic trough (multiplier < 1).

The plan itself is ergonomics only: the LoadGen core cannot import this
package, so :meth:`BurstPlan.as_settings` lowers the plan to the plain
``(start, duration, multiplier)`` tuples that
``TestSettings.server_rate_bursts`` carries (plain data also keeps the
run journal's pickled settings self-contained).  The
:class:`~repro.core.scenarios.ServerDriver` applies the multiplier to
its exponential inter-arrival draws inside the windows, so a burst is
exactly as deterministic per seed as the base arrival process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Tuple


class BurstWindow(NamedTuple):
    """One span of modified arrival rate on the run clock."""

    #: Window opens at this run time, seconds.
    start: float
    #: Window length, seconds.
    duration: float
    #: Arrival-rate multiplier inside the window.
    multiplier: float


@dataclass(frozen=True)
class BurstPlan:
    """A deterministic schedule of arrival-rate windows."""

    windows: Tuple[BurstWindow, ...]

    def __post_init__(self) -> None:
        # TestSettings performs the same validation; doing it here too
        # means a bad plan fails at construction, next to the mistake.
        previous_end = None
        for window in self.windows:
            if window.start < 0:
                raise ValueError(
                    f"burst start must be >= 0, got {window.start}")
            if window.duration <= 0:
                raise ValueError(
                    f"burst duration must be positive, got {window.duration}")
            if window.multiplier <= 0:
                raise ValueError(
                    "burst multiplier must be positive, got "
                    f"{window.multiplier}")
            if previous_end is not None and window.start < previous_end:
                raise ValueError(
                    "burst windows must be sorted and non-overlapping")
            previous_end = window.start + window.duration

    @classmethod
    def flash_crowd(cls, start: float, duration: float,
                    multiplier: float = 4.0) -> "BurstPlan":
        """The canonical single-spike plan."""
        return cls(windows=(BurstWindow(start, duration, multiplier),))

    def multiplier(self, time: float) -> float:
        """The arrival-rate multiplier in force at run time ``time``."""
        for window in self.windows:
            if window.start <= time < window.start + window.duration:
                return window.multiplier
        return 1.0

    def as_settings(self) -> Tuple[Tuple[float, float, float], ...]:
        """Lower to ``TestSettings.server_rate_bursts`` plain data."""
        return tuple(
            (w.start, w.duration, w.multiplier) for w in self.windows)
