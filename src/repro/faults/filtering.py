"""Response hygiene shared by every wrapper that re-issues work.

Both the retry wrapper (:class:`~repro.faults.resilient.ResilientSUT`)
and the network client (:class:`~repro.network.client.NetworkSUT`) face
the same problem: completions arrive from an unreliable source, so a
completion may be a duplicate, a straggler that lost its deadline race,
an answer to a query the wrapper never sent, or a malformed response
set.  None of those may reach the referee - the wrapper either retries
or reports a recorded failure.

:class:`CompletionFilter` is that shared screen: an in-flight registry
keyed by query id plus the classification logic.  Callers attach an
opaque per-query state object at :meth:`~CompletionFilter.admit` time
(retry counters, deadline timers, the connection a query went out on)
and get it back from :meth:`~CompletionFilter.screen`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, TypeVar

from ..core.query import Query, QueryFailure, StreamChunk

S = TypeVar("S")


def malformed_reason(query: Query, responses) -> Optional[str]:
    """Why ``responses`` is not a well-formed answer to ``query``.

    Returns ``None`` for a clean response set.  This is the wrapper-side
    twin of the referee's checks in ``QueryLog.observe_completion``: the
    same response set the referee would record as a malformed-response
    failure is the one a wrapper should treat as a lost attempt.
    """
    if len(responses) != query.sample_count:
        return (
            f"expected {query.sample_count} responses, got {len(responses)}"
        )
    expected = {s.id for s in query.samples}
    got = {r.sample_id for r in responses}
    if got != expected:
        return (
            f"{len(got - expected)} responses name sample ids that are "
            "not part of the query"
        )
    return None


class Screened(NamedTuple):
    """Outcome of screening one inner completion.

    ``state`` is the object registered at admit time, or ``None`` when
    the completion is stale (duplicate, straggler, or never admitted) and
    must be swallowed.  ``flaw`` is set when the attempt resolved but its
    payload cannot be used: a :class:`QueryFailure` from below, or a
    malformed response set.
    """

    state: Optional[object]
    flaw: Optional[str]

    @property
    def stale(self) -> bool:
        return self.state is None

    @property
    def usable(self) -> bool:
        return self.state is not None and self.flaw is None


class _StreamProgress:
    """Where one in-flight query's chunk stream has advanced to."""

    __slots__ = ("next_seq", "saw_last")

    def __init__(self) -> None:
        self.next_seq = 0
        self.saw_last = False


class CompletionFilter:
    """In-flight registry + duplicate/straggler/malformed screening."""

    def __init__(self) -> None:
        self._inflight: Dict[int, object] = {}
        #: Chunk-stream progress per in-flight query, kept in a side
        #: table so non-streaming queries pay nothing.
        self._streams: Dict[int, _StreamProgress] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._inflight

    def admit(self, query: Query, state: S) -> S:
        """Register ``query`` as in flight, carrying ``state``."""
        self._inflight[query.id] = state
        return state

    def get(self, query_id: int) -> Optional[object]:
        """The admitted state, or ``None`` if not in flight."""
        return self._inflight.get(query_id)

    def resolve(self, query_id: int) -> Optional[object]:
        """Remove and return the state; later completions for this query
        will screen as stale."""
        self._streams.pop(query_id, None)
        return self._inflight.pop(query_id, None)

    def restart_stream(self, query_id: int) -> None:
        """Forget the query's chunk progress because the caller is about
        to reissue it (retry, reroute, hedge).

        The next attempt's stream starts over at ``seq == 0``; without
        this reset its chunks would collide with the dead attempt's
        progress and either be double-counted or screened as flawed.
        Stragglers from the old attempt instead screen as flawed chunks
        and are silently dropped by the caller.
        """
        self._streams.pop(query_id, None)

    def states(self) -> List[object]:
        """Snapshot of every in-flight state (admission order)."""
        return list(self._inflight.values())

    def screen(self, query: Query, responses) -> Screened:
        """Classify one completion arriving from the unreliable source.

        Does *not* resolve the query - a flawed attempt stays in flight
        so the caller can retry it; a clean one is resolved by the caller
        once it has dealt with timers/stats.
        """
        state = self._inflight.get(query.id)
        if state is None:
            return Screened(state=None, flaw=None)
        if isinstance(responses, QueryFailure):
            return Screened(state=state, flaw=f"attempt failed: {responses.reason}")
        return Screened(state=state, flaw=malformed_reason(query, responses))

    def screen_chunk(self, query: Query, chunk: StreamChunk) -> Screened:
        """Classify one stream chunk arriving from the unreliable source.

        A clean chunk (``flaw is None``) advances the query's stream
        progress and should be forwarded upward; a flawed chunk
        (out-of-sequence, duplicate, after the final chunk) must be
        *dropped*, not treated as a failed attempt - chunks are
        progress reports, and a straggler from a dead attempt says
        nothing about the live one.  ``seq == 0`` after prior progress
        is a legitimate stream restart (a lower layer reissued the
        query) and resets progress.
        """
        state = self._inflight.get(query.id)
        if state is None:
            return Screened(state=None, flaw=None)
        progress = self._streams.get(query.id)
        if progress is None:
            progress = self._streams[query.id] = _StreamProgress()
        if chunk.seq == 0 and progress.next_seq > 0:
            progress.next_seq = 0
            progress.saw_last = False
        if progress.saw_last:
            return Screened(
                state=state,
                flaw=f"chunk seq {chunk.seq} after the final chunk",
            )
        if chunk.seq != progress.next_seq:
            return Screened(
                state=state,
                flaw=(
                    f"out-of-sequence chunk seq {chunk.seq} "
                    f"(expected {progress.next_seq})"
                ),
            )
        progress.next_seq += 1
        if chunk.last:
            progress.saw_last = True
        return Screened(state=state, flaw=None)
