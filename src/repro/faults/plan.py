"""Deterministic fault plans and the injector that executes them.

The fault model covers the misbehavior modes real submission stacks
exhibit (MLPerf Mobile's flaky runtimes dropped, duplicated, and delayed
completions; the v0.5 round leaned on audits to catch worse):

* ``DROP``        - the response never arrives;
* ``DUPLICATE``   - the completion is delivered twice;
* ``UNSOLICITED`` - a completion arrives for a query never issued;
* ``MISSIZED``    - the response set has the wrong number of entries;
* ``CORRUPT``     - responses name sample ids that are not in the query;
* ``DELAY``       - a transient latency spike on top of the service time;
* ``STALL``       - the SUT crashes: this and every later query vanish.

Determinism mirrors the sampler: every fault decision is a pure function
of ``(plan seed, query id, attempt)``, drawn from its own
``SeedSequence`` stream.  Two runs with the same seed and plan therefore
inject byte-identical fault schedules regardless of event interleaving,
and a retried query (attempt > 0) gets a fresh draw - which is what
makes transient faults recoverable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np


class FaultType(enum.Enum):
    """The injectable misbehavior classes."""

    DROP = "drop"
    DUPLICATE = "duplicate"
    UNSOLICITED = "unsolicited"
    MISSIZED = "missized"
    CORRUPT = "corrupt"
    DELAY = "delay"
    STALL = "stall"


#: Faults a bounded retry can recover from: the next attempt gets a
#: fresh draw, so a drop or a latency spike is not fatal.  (Duplicate /
#: unsolicited / malformed completions are filtered, not retried.)
TRANSIENT_FAULTS = frozenset({FaultType.DROP, FaultType.DELAY})

#: Stable iteration order for the cumulative-probability draw.
_FAULT_ORDER: Tuple[FaultType, ...] = tuple(FaultType)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, per-query-probability fault schedule.

    ``rates`` maps each fault type to the probability that one (query,
    attempt) suffers it; at most one fault is injected per attempt, so
    the rates must sum to at most 1.
    """

    rates: Mapping[FaultType, float] = field(default_factory=dict)
    #: Mean extra latency of a DELAY spike, seconds (exponential).
    delay_scale: float = 0.050
    #: Gap between the twin completions of a DUPLICATE fault, seconds.
    duplicate_lag: float = 0.001
    seed: int = 0xFA017

    def __post_init__(self) -> None:
        total = 0.0
        for fault, rate in self.rates.items():
            if not isinstance(fault, FaultType):
                raise ValueError(f"unknown fault type {fault!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for {fault.value} must be in [0, 1], got {rate}"
                )
            total += rate
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fault rates sum to {total:.4f}; at most one fault is "
                "injected per query, so they must sum to <= 1"
            )
        if self.delay_scale <= 0:
            raise ValueError(f"delay_scale must be positive, got {self.delay_scale}")
        if self.duplicate_lag < 0:
            raise ValueError(
                f"duplicate_lag must be >= 0, got {self.duplicate_lag}"
            )

    @classmethod
    def single(cls, fault: FaultType, rate: float, **kwargs) -> "FaultPlan":
        """A plan injecting exactly one fault class at ``rate``."""
        return cls(rates={fault: rate}, **kwargs)

    @classmethod
    def uniform(cls, rate_per_fault: float, **kwargs) -> "FaultPlan":
        """Every fault class at the same per-query rate."""
        return cls(rates={f: rate_per_fault for f in FaultType}, **kwargs)

    @classmethod
    def transient(cls, rate_per_fault: float, **kwargs) -> "FaultPlan":
        """Only retry-recoverable faults (drops and delay spikes)."""
        return cls(
            rates={f: rate_per_fault for f in TRANSIENT_FAULTS}, **kwargs
        )

    @property
    def total_rate(self) -> float:
        return sum(self.rates.values())

    def is_transient_only(self) -> bool:
        return all(
            fault in TRANSIENT_FAULTS or rate == 0.0
            for fault, rate in self.rates.items()
        )


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one (query, attempt)."""

    fault: FaultType
    #: Extra latency, seconds; only meaningful for DELAY.
    delay: float = 0.0


class FaultInjector:
    """Executes a :class:`FaultPlan` deterministically.

    Stateless across queries except for bookkeeping: the decision for
    ``(query_id, attempt)`` depends only on the plan's seed, never on
    arrival order, so fault schedules are reproducible run to run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        #: Count of injected faults by type, for reports and tests.
        self.injected: Dict[FaultType, int] = {}
        #: Chronological (query_id, attempt, fault) trace.
        self.trace: List[Tuple[int, int, FaultType]] = []

    def reset(self) -> None:
        """Clear bookkeeping at the start of a run."""
        self.injected = {}
        self.trace = []

    def decide(self, query_id: int, attempt: int = 0) -> Optional[FaultDecision]:
        """The fault (if any) for this query attempt.

        Pure in ``(plan.seed, query_id, attempt)`` apart from the
        bookkeeping side effects.
        """
        rng = np.random.default_rng(
            np.random.SeedSequence((self.plan.seed, query_id, attempt))
        )
        draw = rng.random()
        cumulative = 0.0
        for fault in _FAULT_ORDER:
            cumulative += self.plan.rates.get(fault, 0.0)
            if draw < cumulative:
                delay = (
                    float(rng.exponential(self.plan.delay_scale))
                    if fault is FaultType.DELAY
                    else 0.0
                )
                self.injected[fault] = self.injected.get(fault, 0) + 1
                self.trace.append((query_id, attempt, fault))
                return FaultDecision(fault=fault, delay=delay)
        return None

    def summary(self) -> str:
        parts = [
            f"{fault.value}={count}"
            for fault, count in sorted(
                self.injected.items(), key=lambda kv: kv[0].value
            )
        ]
        return "injected: " + (", ".join(parts) if parts else "none")
