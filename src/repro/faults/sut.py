"""A fault-injecting wrapper around any :class:`SystemUnderTest`.

``FaultySUT`` sits between the LoadGen and a real SUT on the event loop
and perturbs the completion stream according to a deterministic
:class:`~repro.faults.plan.FaultPlan`.  It exercises exactly the
misbehavior the hardened referee must survive: dropped and duplicated
completions, completions for phantom queries, mis-sized and corrupted
response sets, latency spikes, and a full SUT crash.  The wrapped SUT is
never told it is being sabotaged - like a real flaky runtime, it does
its work and the failures happen on the wire.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union

from ..core.query import (Query, QueryFailure, QuerySample,
                          QuerySampleResponse, StreamChunk)
from ..core.sut import Responder, SutBase, SystemUnderTest
from ..core.events import EventLoop
from ..metrics import MetricsRegistry
from .plan import FaultDecision, FaultInjector, FaultPlan, FaultType

#: Offset added to sample ids by the CORRUPT fault, large enough to
#: never collide with real ids issued by the QueryFactory.
_CORRUPT_ID_OFFSET = 1_000_000_007

#: Base for phantom query ids fabricated by the UNSOLICITED fault.
_PHANTOM_ID_BASE = 2_000_000_000


class FaultySUT(SutBase):
    """Injects plan-scheduled faults around an inner SUT.

    Faults that need a completion to act on (drop, duplicate, delay,
    missized, corrupt, unsolicited) are applied when the inner SUT
    completes; STALL acts at issue time and silently swallows that query
    and every later one, modelling a crashed backend.
    """

    def __init__(
        self,
        inner: SystemUnderTest,
        plan_or_injector: Union[FaultPlan, FaultInjector],
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(name or f"faulty[{inner.name}]")
        self.inner = inner
        self.injector = (
            plan_or_injector
            if isinstance(plan_or_injector, FaultInjector)
            else FaultInjector(plan_or_injector)
        )
        self.crashed = False
        self._attempts: dict = {}
        self._decisions: dict = {}
        self._phantom_ids = itertools.count(_PHANTOM_ID_BASE)
        self._injected = (
            registry.counter(
                "faults_injected_total",
                "Faults the injector applied to the completion stream",
                labels=("fault",),
            )
            if registry is not None
            else None
        )

    def _count_fault(self, fault: FaultType) -> None:
        if self._injected is not None:
            self._injected.labels(fault=fault.value).inc()

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.crashed = False
        self._attempts = {}
        self._decisions = {}
        self.injector.reset()
        self.inner.start_run(loop, self._intercept)

    def issue_query(self, query: Query) -> None:
        if self.crashed:
            return  # a crashed SUT swallows everything, silently
        attempt = self._attempts.get(query.id, 0)
        self._attempts[query.id] = attempt + 1
        decision = self.injector.decide(query.id, attempt)
        if decision is not None and decision.fault is FaultType.STALL:
            self.crashed = True
            self._count_fault(FaultType.STALL)
            return
        self._decisions[query.id] = decision
        self.inner.issue_query(query)

    def flush(self) -> None:
        if not self.crashed:
            self.inner.flush()

    # -- the wire ---------------------------------------------------------------

    def _intercept(self, query: Query, responses) -> None:
        decision = self._decisions.pop(query.id, None)
        if decision is None or isinstance(responses, QueryFailure):
            self.complete(query, responses)
            return
        fault = decision.fault
        self._count_fault(fault)

        if fault is FaultType.DROP:
            return  # the response vanishes

        if fault is FaultType.DELAY:
            self.loop.schedule_after(
                decision.delay, lambda: self.complete(query, responses)
            )
            return

        if fault is FaultType.DUPLICATE:
            self.complete(query, responses)
            twin = list(responses)
            self.loop.schedule_after(
                self.injector.plan.duplicate_lag,
                lambda: self.complete(query, twin),
            )
            return

        if fault is FaultType.MISSIZED:
            self.complete(query, self._missize(responses))
            return

        if fault is FaultType.CORRUPT:
            corrupted = [
                QuerySampleResponse(r.sample_id + _CORRUPT_ID_OFFSET, r.data)
                for r in responses
            ]
            self.complete(query, corrupted)
            return

        if fault is FaultType.UNSOLICITED:
            # The genuine answer still arrives; an extra completion for
            # a query the LoadGen never issued rides along with it.
            self.complete(query, responses)
            phantom_sample = QuerySample(id=next(self._phantom_ids), index=0)
            phantom = Query(
                id=next(self._phantom_ids),
                samples=(phantom_sample,),
                issue_time=self.loop.now,
            )
            self.complete(
                phantom, [QuerySampleResponse(phantom_sample.id, None)]
            )
            return

        # pragma: no cover - exhaustive over FaultType minus STALL
        raise AssertionError(f"unhandled fault {fault}")

    @staticmethod
    def _missize(responses: List[QuerySampleResponse]) -> List[QuerySampleResponse]:
        """Return a response set with the wrong cardinality."""
        if len(responses) > 1:
            return responses[:-1]
        # A single-sample query cannot lose a response and stay
        # non-empty in an interesting way; grow it instead.
        extra_id = (responses[0].sample_id if responses else 0) + _CORRUPT_ID_OFFSET
        return list(responses) + [QuerySampleResponse(extra_id, None)]


class OutageSUT(SutBase):
    """Total backend outage for a scheduled time window.

    Unlike :class:`FaultySUT`'s probabilistic per-query faults, this
    wrapper models the failure the circuit breaker exists for: the
    backend is perfectly healthy, then answers *nothing* for
    ``[outage_start, outage_start + outage_duration)`` on the run clock,
    then is healthy again.  Queries issued during the window are
    swallowed (their completions never happen), so only a deadline or
    breaker above can save the run.  Used by the self-healing tests and
    the ``benchmarks/test_ext_durability.py`` outage study.
    """

    def __init__(
        self,
        inner: SystemUnderTest,
        outage_start: float,
        outage_duration: float,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"outage[{inner.name}]")
        if outage_duration < 0:
            raise ValueError(
                f"outage_duration must be >= 0, got {outage_duration}")
        self.inner = inner
        self.outage_start = outage_start
        self.outage_duration = outage_duration
        #: Queries swallowed by the outage window.
        self.blackholed = 0

    def in_outage(self, time: float) -> bool:
        return (self.outage_start <= time
                < self.outage_start + self.outage_duration)

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.blackholed = 0
        self.inner.start_run(loop, self._gate)

    def issue_query(self, query: Query) -> None:
        if self.in_outage(self.loop.now):
            self.blackholed += 1
            return
        self.inner.issue_query(query)

    def flush(self) -> None:
        self.inner.flush()

    def _gate(self, query: Query, responses) -> None:
        # Completions are dropped during the window too: a down backend
        # does not deliver answers for work it accepted just before.
        if self.in_outage(self.loop.now):
            self.blackholed += 1
            return
        self.complete(query, responses)


class BrownoutSUT(SutBase):
    """A slow-replica brownout: alive but degraded for a time window.

    The gray-failure counterpart of :class:`OutageSUT`: during
    ``[brownout_start, brownout_start + brownout_duration)`` on the run
    clock every completion is held back an extra ``extra_latency``
    seconds before being delivered.  The backend still answers - health
    checks that only test liveness stay green - which is exactly the
    failure mode latency-aware balancing policies
    (``repro.fleet.WeightedP99Policy``) and per-replica deadlines exist
    to contain.
    """

    def __init__(
        self,
        inner: SystemUnderTest,
        brownout_start: float,
        brownout_duration: float,
        extra_latency: float,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"brownout[{inner.name}]")
        if brownout_duration < 0:
            raise ValueError(
                f"brownout_duration must be >= 0, got {brownout_duration}")
        if extra_latency <= 0:
            raise ValueError(
                f"extra_latency must be positive, got {extra_latency}")
        self.inner = inner
        self.brownout_start = brownout_start
        self.brownout_duration = brownout_duration
        self.extra_latency = extra_latency
        #: Completions delayed by the brownout window.
        self.slowed = 0

    def in_brownout(self, time: float) -> bool:
        return (self.brownout_start <= time
                < self.brownout_start + self.brownout_duration)

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.slowed = 0
        self.inner.start_run(loop, self._gate)

    def issue_query(self, query: Query) -> None:
        self.inner.issue_query(query)

    def flush(self) -> None:
        self.inner.flush()

    def _gate(self, query: Query, responses) -> None:
        if self.in_brownout(self.loop.now):
            self.slowed += 1
            self.loop.schedule_after(
                self.extra_latency,
                lambda: self.complete(query, responses))
            return
        self.complete(query, responses)


class DegradedSUT(SutBase):
    """A controllable gray-failure valve around one replica backend.

    Where :class:`OutageSUT` / :class:`BrownoutSUT` carry their own
    fixed time window, this wrapper is *driven*: the chaos orchestrator
    (:mod:`repro.faults.chaos`) flips it between three modes at
    scheduled virtual times -

    * **healthy** (the default, and what :meth:`restore` returns to):
      transparent pass-through;
    * **degraded** (:meth:`degrade`): every delivery - chunks included -
      is held back by ``(factor - 1)`` times the time the query has
      already spent in the backend, so a 10x factor turns a 2ms replica
      into a 20ms one *proportionally*, the thermal-throttling /
      background-load signature MLPerf Mobile describes.  Breakers stay
      closed as long as the stretched latency still beats the attempt
      deadline: the replica is sick, not dead - only a latency-aware
      outlier detector can see it;
    * **partitioned** (:meth:`partition`): the asymmetric failure -
      issues still reach the backend (the forward path is fine) but
      every delivery is dropped, modelling a one-way network partition.

    Mode changes apply to deliveries from that moment on, in-flight
    queries included.
    """

    def __init__(
        self,
        inner: SystemUnderTest,
        factor: float = 1.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"degraded[{inner.name}]")
        self.inner = inner
        self._factor = 1.0
        self._partitioned = False
        if factor != 1.0:
            self.degrade(factor)
        #: Deliveries held back by the latency multiplier.
        self.slowed = 0
        #: Deliveries dropped by the partition.
        self.blackholed = 0
        self._issued_at: Dict[int, float] = {}

    @property
    def factor(self) -> float:
        return self._factor

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    @property
    def healthy(self) -> bool:
        return self._factor == 1.0 and not self._partitioned

    def degrade(self, factor: float) -> None:
        """Stretch every delivery to ``factor`` times its backend time."""
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self._factor = factor

    def partition(self) -> None:
        """Drop deliveries while still accepting issues (asymmetric)."""
        self._partitioned = True

    def restore(self) -> None:
        """Back to healthy pass-through (clears both failure modes)."""
        self._factor = 1.0
        self._partitioned = False

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.restore()
        self.slowed = 0
        self.blackholed = 0
        self._issued_at = {}
        self.inner.start_run(loop, self._gate)

    def issue_query(self, query: Query) -> None:
        self._issued_at[query.id] = self.loop.now
        self.inner.issue_query(query)

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()

    def _gate(self, query: Query, responses) -> None:
        terminal = not isinstance(responses, StreamChunk)
        if self._partitioned:
            self.blackholed += 1
            if terminal:
                self._issued_at.pop(query.id, None)
            return
        issued_at = self._issued_at.get(query.id, self.loop.now)
        if terminal:
            self._issued_at.pop(query.id, None)
        extra = (self._factor - 1.0) * (self.loop.now - issued_at)
        if extra > 0:
            self.slowed += 1
            self.loop.schedule_after(
                extra, lambda: self.complete(query, responses))
            return
        self.complete(query, responses)
