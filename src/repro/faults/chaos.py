"""Seeded chaos orchestration: correlated, fleet-wide failure drills.

Everything in :mod:`repro.faults` so far fails one thing at a time - a
query, a replica, a time window on one backend.  Real incidents are
*correlated*: a whole availability zone goes dark, a rack browns out
together, a switch drops one direction of traffic.  The
:class:`ChaosOrchestrator` is a :class:`~repro.core.loadgen.RunService`
that drives exactly those scenarios against a
:class:`~repro.fleet.replicaset.ReplicaSet`, from a schedule that is
either hand-written or generated deterministically from
``SeedSequence((seed, 0xC4A05))``.

Scenario vocabulary (one :class:`ChaosEvent` each, see
``docs/chaos.md``):

* ``"zone-outage"`` - every replica in the target zone is killed at
  once (:meth:`~repro.fleet.replicaset.ReplicaSet.kill_zone`; in-flight
  queries rescued onto survivors, session prefixes warmed into the
  rescue caches) and restored when the window closes;
* ``"gray-failure"`` - the target replica's :class:`DegradedSUT` valve
  stretches every delivery by the event's ``severity`` factor: alive,
  answering, breakers closed, p99 ruined - the outlier detector's
  quarry;
* ``"partition"`` - the target replica's valve goes asymmetric: issues
  still reach the backend, deliveries are dropped.

The orchestrator ticks every ``period`` seconds of run time and applies
whatever transitions are due, emitting one :class:`ChaosDecision` per
tick (holds included) exactly like the autoscaler's
:class:`~repro.fleet.autoscaler.ScalingDecision` trace - the
bit-identical-across-same-seed-runs witness the chaos acceptance tests
assert.  Fault windows are exported as :class:`ChaosWindow` rows for the
Chrome trace (``repro.core.trace.to_chrome_trace(chaos=...)``) and as
``chaos_*`` metric families (``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..core.events import EventHandle, EventLoop
from ..core.sut import SystemUnderTest
from ..metrics import MetricsRegistry
from .sut import DegradedSUT

#: Domain-separation tag for the chaos schedule RNG (mixed with the run
#: seed), disjoint from the balancer/jitter/session/probe streams.
CHAOS_TAG = 0xC4A05

#: The scenario vocabulary.
CHAOS_KINDS = ("zone-outage", "gray-failure", "partition")


class ChaosEvent(NamedTuple):
    """One scheduled fault window.

    ``target`` is a zone name for ``"zone-outage"`` and ``"replica:N"``
    for the per-replica kinds; ``severity`` is the latency multiplier
    for ``"gray-failure"`` (unused, 0.0, for the others).
    """

    time: float
    duration: float
    kind: str
    target: str
    severity: float = 0.0


class ChaosDecision(NamedTuple):
    """One orchestrator tick: what it did (mirrors ScalingDecision)."""

    time: float
    kind: str    # event kind, or "" for a hold tick
    target: str  # event target, or "" for a hold tick
    action: str  # "inject" | "recover" | "hold"
    active: int  # fault windows open after this tick


@dataclass
class ChaosWindow:
    """One fault window as actually applied (for the Chrome trace)."""

    kind: str
    target: str
    start: float
    end: Optional[float] = None


def _replica_target(target: str) -> Optional[int]:
    if target.startswith("replica:"):
        return int(target.split(":", 1)[1])
    return None


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable list of fault windows, sorted by injection time."""

    events: Tuple[ChaosEvent, ...]

    def __post_init__(self) -> None:
        for event in self.events:
            if event.kind not in CHAOS_KINDS:
                raise ValueError(
                    f"unknown chaos kind {event.kind!r}; "
                    f"known: {', '.join(CHAOS_KINDS)}")
            if event.duration <= 0:
                raise ValueError(
                    f"event duration must be positive, got {event}")
            if event.kind == "gray-failure" and event.severity < 1.0:
                raise ValueError(
                    f"gray-failure severity must be >= 1, got {event}")
            if (event.kind != "zone-outage"
                    and _replica_target(event.target) is None):
                raise ValueError(
                    f"{event.kind} target must be 'replica:N', got {event}")
        object.__setattr__(
            self, "events", tuple(sorted(self.events)))

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        duration: float,
        replicas: int,
        zones: int = 1,
        events: int = 3,
        kinds: Sequence[str] = CHAOS_KINDS,
        severity_range: Tuple[float, float] = (4.0, 16.0),
    ) -> "ChaosSchedule":
        """Draw ``events`` correlated-fault windows for a run of about
        ``duration`` seconds over ``replicas`` replicas in ``zones``
        zones (striped ``z0..z{zones-1}``, the ReplicaSet's ``zones=N``
        convention).

        Windows open in the first 60% of the run and close within it,
        so a full-length run always exercises both the injection and
        the recovery side of every event.  Same ``(seed, arguments)``
        -> same schedule, bit for bit.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if zones < 1:
            raise ValueError(f"zones must be >= 1, got {zones}")
        if events < 0:
            raise ValueError(f"events must be >= 0, got {events}")
        rng = np.random.default_rng(
            np.random.SeedSequence((seed, CHAOS_TAG)))
        drawn: List[ChaosEvent] = []
        for _ in range(events):
            kind = str(kinds[int(rng.integers(len(kinds)))])
            start = float(rng.uniform(0.10, 0.60)) * duration
            width = float(rng.uniform(0.10, 0.25)) * duration
            severity = 0.0
            if kind == "zone-outage":
                target = f"z{int(rng.integers(zones))}"
            else:
                target = f"replica:{int(rng.integers(replicas))}"
                if kind == "gray-failure":
                    severity = float(rng.uniform(*severity_range))
            drawn.append(ChaosEvent(start, width, kind, target, severity))
        return cls(events=tuple(drawn))


class _ChaosInstruments:
    """Live ``chaos_*`` metric families."""

    __slots__ = ("injections", "recoveries")

    def __init__(self, registry: MetricsRegistry, orchestrator) -> None:
        self.injections = registry.counter(
            "chaos_injections_total",
            "Fault windows opened by the chaos orchestrator",
            labels=("kind",))
        self.recoveries = registry.counter(
            "chaos_recoveries_total",
            "Fault windows closed (recovered) by the chaos orchestrator",
            labels=("kind",))
        registry.gauge(
            "chaos_active_faults",
            "Fault windows currently open",
            fn=lambda: float(orchestrator.active_faults))


class ChaosOrchestrator:
    """Apply a :class:`ChaosSchedule` to a fleet, deterministically.

    Wiring order matters and mirrors how the pieces nest::

        orchestrator = ChaosOrchestrator(schedule, registry=registry)
        fleet = ReplicaSet(orchestrator.wrap_factory(backend_factory),
                           zones=2, ...)
        orchestrator.bind(fleet)
        run_benchmark(fleet, qsl, settings,
                      services=[orchestrator, detector, ...])

    :meth:`wrap_factory` slips a :class:`DegradedSUT` valve between each
    replica's backend and the fleet (inside any ``cache_factory``
    wrapper, so prefill delays are stretched too), and records the
    handles the per-replica scenarios actuate.  Zone scenarios drive
    the fleet's own :meth:`~repro.fleet.replicaset.ReplicaSet.kill_zone`
    / ``restore_zone`` primitives.
    """

    def __init__(
        self,
        schedule: ChaosSchedule,
        *,
        period: float = 0.025,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.schedule = schedule
        self.period = period
        #: replica index -> its :class:`DegradedSUT` valve (filled by
        #: the wrapped factory as the fleet builds replicas).
        self.degraded: Dict[int, DegradedSUT] = {}
        #: One :class:`ChaosDecision` per tick, holds included.
        self.trace: List[ChaosDecision] = []
        #: Fault windows as actually applied (Chrome-trace rows).
        self.windows: List[ChaosWindow] = []
        self._fleet = None
        self._m = (
            _ChaosInstruments(registry, self) if registry is not None
            else None
        )
        self._loop: Optional[EventLoop] = None
        self._keep_going: Callable[[], bool] = lambda: False
        self._timer: Optional[EventHandle] = None
        #: (time, order, action, event) transitions still due.
        self._pending: List[Tuple[float, int, str, ChaosEvent]] = []
        self._open: Dict[Tuple[str, str], ChaosWindow] = {}

    @property
    def active_faults(self) -> int:
        return len(self._open)

    def wrap_factory(
        self, factory: Callable[[int], SystemUnderTest],
    ) -> Callable[[int], SystemUnderTest]:
        """Wrap a replica factory so every backend gets a chaos valve."""

        def wrapped(index: int) -> SystemUnderTest:
            valve = DegradedSUT(factory(index), name=f"chaos-valve[{index}]")
            self.degraded[index] = valve
            return valve

        return wrapped

    def bind(self, replica_set) -> None:
        """Attach the fleet whose zones/replicas the schedule targets."""
        self._fleet = replica_set

    # -- RunService -------------------------------------------------------------

    def start(self, loop: EventLoop,
              keep_going: Callable[[], bool]) -> None:
        if self._fleet is None:
            raise ValueError(
                "ChaosOrchestrator.bind(replica_set) must be called "
                "before the run starts")
        missing = sorted({
            _replica_target(e.target) for e in self.schedule.events
            if e.kind != "zone-outage"
            and _replica_target(e.target) not in self.degraded
        })
        if missing:
            raise ValueError(
                f"schedule targets replicas {missing} but their backends "
                "were not built through wrap_factory (no chaos valve)")
        self._loop = loop
        self._keep_going = keep_going
        self.trace = []
        self.windows = []
        self._open = {}
        self._pending = sorted(
            [(e.time, i, "inject", e)
             for i, e in enumerate(self.schedule.events)]
            + [(e.time + e.duration, i, "recover", e)
               for i, e in enumerate(self.schedule.events)])
        self._timer = loop.schedule_after(self.period, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._loop is not None:
            for window in self._open.values():
                window.end = self._loop.now
            self._open = {}

    def _tick(self) -> None:
        self._timer = None
        loop = self._loop
        assert loop is not None
        now = loop.now
        applied = 0
        while self._pending and self._pending[0][0] <= now:
            _, _, action, event = self._pending.pop(0)
            if action == "inject":
                self._inject(event, now)
            else:
                self._recover(event, now)
            applied += 1
            self.trace.append(ChaosDecision(
                now, event.kind, event.target, action, self.active_faults))
        if not applied:
            self.trace.append(
                ChaosDecision(now, "", "", "hold", self.active_faults))
        if self._keep_going():
            self._timer = loop.schedule_after(self.period, self._tick)

    # -- scenario actuation -----------------------------------------------------

    def _inject(self, event: ChaosEvent, now: float) -> None:
        if event.kind == "zone-outage":
            self._fleet.kill_zone(event.target)
        else:
            valve = self.degraded[_replica_target(event.target)]
            if event.kind == "gray-failure":
                valve.degrade(event.severity)
            else:
                valve.partition()
        window = ChaosWindow(event.kind, event.target, start=now)
        self.windows.append(window)
        self._open[(event.kind, event.target)] = window
        if self._m:
            self._m.injections.labels(kind=event.kind).inc()

    def _recover(self, event: ChaosEvent, now: float) -> None:
        if event.kind == "zone-outage":
            self._fleet.restore_zone(event.target)
        else:
            self.degraded[_replica_target(event.target)].restore()
        window = self._open.pop((event.kind, event.target), None)
        if window is not None:
            window.end = now
        if self._m:
            self._m.recoveries.labels(kind=event.kind).inc()
