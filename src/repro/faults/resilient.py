"""Retry/deadline wrapper that makes a flaky SUT presentable.

``ResilientSUT`` is the submitter-side mirror of the referee hardening:
it wraps an unreliable backend and enforces a per-attempt deadline,
bounded retries with seeded full-jitter exponential backoff (so a fleet
of retriers recovering together cannot stampede the backend in
lockstep), and response hygiene
(duplicate and unsolicited completions are filtered, malformed response
sets are retried).  With :attr:`RetryPolicy.total_timeout` set, retries
plus backoff are additionally capped by a per-query wall-clock budget -
:meth:`RetryPolicy.for_deadline` builds a policy that provably resolves
every query inside a run's ``watchdog_timeout``.  Transient faults - drops, latency spikes - are
recovered at the cost of the retry latency; permanent ones are reported
to the LoadGen as recorded failures (:meth:`SutBase.fail`) so the run
terminates with a clean INVALID verdict instead of hanging.

All timing runs on the run's event loop, so resilience behavior is as
deterministic and virtual-time-fast as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import replace as dataclasses_replace
from typing import Optional

import numpy as np

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, StreamChunk
from ..core.sut import Responder, SutBase, SystemUnderTest
from ..metrics import MetricsRegistry
from .filtering import CompletionFilter

#: Domain-separation tag mixed into the backoff-jitter seed stream so it
#: can never collide with the fault injector's (seed, query, attempt)
#: streams.
_JITTER_TAG = 0xBAC0FF


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters for :class:`ResilientSUT`."""

    #: Total attempts per query (first try included).
    max_attempts: int = 4
    #: Per-attempt deadline, seconds: how long to wait for the inner SUT
    #: before declaring the attempt lost.
    attempt_timeout: float = 0.050
    #: Backoff before attempt ``n`` retries: ``base * factor**(n-1)``.
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    #: ``"full"`` draws the actual delay uniformly from ``[0, backoff)``
    #: per (seed, query, attempt) - concurrent retriers decorrelate
    #: instead of stampeding a recovering backend in lockstep.
    #: ``"none"`` keeps the deterministic ceiling itself.
    jitter: str = "full"
    #: Hard per-query wall: across *all* attempts and backoffs, a query
    #: is given up once this much run time has elapsed since its first
    #: issue.  ``None`` bounds a query only by
    #: ``max_attempts x (timeout + backoff)`` - which stacked wrappers
    #: can push past ``TestSettings.watchdog_timeout``; see
    #: :meth:`for_deadline`.
    total_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {self.attempt_timeout}"
            )
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter not in ("full", "none"):
            raise ValueError(
                f"jitter must be 'full' or 'none', got {self.jitter!r}"
            )
        if (self.total_timeout is not None
                and self.total_timeout < self.attempt_timeout):
            raise ValueError(
                "total_timeout must be >= attempt_timeout (one attempt "
                f"must fit), got {self.total_timeout} < "
                f"{self.attempt_timeout}"
            )

    def worst_case_latency(self) -> float:
        """Upper bound on one query's time inside the wrapper, seconds.

        All attempts time out at the full ``attempt_timeout`` and every
        backoff hits its jitter ceiling.  With ``total_timeout`` set the
        budget caps this bound; without it, this is exactly the quantity
        that must stay below the run's watchdog for a single query to be
        deadline-safe.
        """
        uncapped = self.max_attempts * self.attempt_timeout + sum(
            self.backoff(attempt) for attempt in range(self.max_attempts - 1)
        )
        if self.total_timeout is None:
            return uncapped
        return min(uncapped, self.total_timeout)

    @classmethod
    def for_deadline(cls, deadline: float, **kwargs) -> "RetryPolicy":
        """A policy guaranteed to resolve every query within ``deadline``.

        Builds a policy from ``kwargs`` (same fields as the
        constructor), sets ``total_timeout=deadline``, and trims
        ``max_attempts`` down to the largest count whose worst case fits
        - so retries are bounded *a priori*, not just cut off at the
        wall.  Use ``TestSettings.watchdog_timeout`` (minus headroom) as
        the deadline to make a retry stack watchdog-safe by
        construction.
        """
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        kwargs.pop("total_timeout", None)
        policy = cls(total_timeout=deadline, **kwargs)
        if policy.attempt_timeout > deadline:
            raise ValueError(
                f"attempt_timeout {policy.attempt_timeout} cannot fit in "
                f"deadline {deadline}")
        while policy.max_attempts > 1:
            capless = dataclasses_replace(policy, total_timeout=None)
            if capless.worst_case_latency() <= deadline:
                break
            policy = dataclasses_replace(
                policy, max_attempts=policy.max_attempts - 1)
        return policy

    def backoff(self, attempt: int) -> float:
        """Backoff ceiling before re-issuing after losing ``attempt``
        (0-based).  With full jitter the actual delay is drawn uniformly
        below this ceiling (:meth:`jittered_backoff`)."""
        return self.backoff_base * (self.backoff_factor ** attempt)

    def jittered_backoff(self, attempt: int, seed: int, query_id: int) -> float:
        """The delay actually slept: full jitter over :meth:`backoff`.

        The draw is a pure function of ``(seed, query_id, attempt)`` -
        deterministic and replayable like everything else in the run,
        yet decorrelated across queries and across retriers with
        different seeds, so synchronized retries cannot stampede a
        recovering backend.
        """
        ceiling = self.backoff(attempt)
        if self.jitter == "none" or ceiling <= 0.0:
            return ceiling
        rng = np.random.default_rng(
            np.random.SeedSequence((seed, query_id, attempt, _JITTER_TAG))
        )
        return float(rng.uniform(0.0, ceiling))


@dataclass
class ResilienceStats:
    """What the wrapper did during one run."""

    retries: int = 0
    recovered_queries: int = 0
    gave_up_queries: int = 0
    filtered_completions: int = 0
    malformed_attempts: int = 0

    def summary(self) -> str:
        return (
            f"retries={self.retries} recovered={self.recovered_queries} "
            f"gave_up={self.gave_up_queries} "
            f"filtered={self.filtered_completions} "
            f"malformed={self.malformed_attempts}"
        )


class _ResilienceInstruments:
    """Live counters mirroring :class:`ResilienceStats` (same run loop,
    single writer, so unlocked increments are safe)."""

    __slots__ = ("retries", "recovered", "gave_up", "filtered", "malformed")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.retries = registry.counter(
            "resilient_retries_total",
            "Attempts re-issued after a lost or malformed attempt")
        self.recovered = registry.counter(
            "resilient_recovered_queries_total",
            "Queries that succeeded only after at least one retry")
        self.gave_up = registry.counter(
            "resilient_gave_up_queries_total",
            "Queries reported as failures after exhausting all attempts")
        self.filtered = registry.counter(
            "resilient_filtered_completions_total",
            "Duplicate/straggler/unsolicited completions absorbed")
        self.malformed = registry.counter(
            "resilient_malformed_attempts_total",
            "Attempts whose response set was unusable")


@dataclass
class _Inflight:
    query: Query
    attempt: int = 0
    #: Run time of the first issue - the anchor the per-query
    #: ``total_timeout`` budget is measured from.
    started: float = 0.0
    timer: Optional[EventHandle] = None


class ResilientSUT(SutBase):
    """Bounded retry + per-attempt deadline around an inner SUT."""

    def __init__(
        self,
        inner: SystemUnderTest,
        policy: Optional[RetryPolicy] = None,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name or f"resilient[{inner.name}]")
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.seed = seed
        self.stats = ResilienceStats()
        self._filter = CompletionFilter()
        self._m = (
            _ResilienceInstruments(registry) if registry is not None
            else None
        )

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.stats = ResilienceStats()
        self._filter = CompletionFilter()
        self.inner.start_run(loop, self._on_inner_completion)

    def issue_query(self, query: Query) -> None:
        state = self._filter.admit(
            query, _Inflight(query=query, started=self.loop.now))
        self._attempt(state)

    def flush(self) -> None:
        self.inner.flush()

    # -- attempts ---------------------------------------------------------------

    def _budget_left(self, state: _Inflight) -> Optional[float]:
        """Run time remaining in the query's total budget (None: uncapped)."""
        if self.policy.total_timeout is None:
            return None
        return self.policy.total_timeout - (self.loop.now - state.started)

    def _give_up(self, state: _Inflight, reason: str) -> None:
        self._filter.resolve(state.query.id)
        self.stats.gave_up_queries += 1
        if self._m:
            self._m.gave_up.inc()
        self.fail(state.query, reason)

    def _attempt(self, state: _Inflight) -> None:
        timeout = self.policy.attempt_timeout
        remaining = self._budget_left(state)
        if remaining is not None:
            if remaining <= 0:
                self._give_up(state, self._budget_reason(state))
                return
            # The deadline never drifts past the budget: the final
            # attempt gets only what is left of it.
            timeout = min(timeout, remaining)
        state.timer = self.loop.schedule_after(
            timeout, lambda: self._attempt_lost(state)
        )
        self.inner.issue_query(state.query)

    def _budget_reason(self, state: _Inflight) -> str:
        return (
            f"retry budget exhausted: {self.policy.total_timeout:g}s "
            f"total_timeout spent over {state.attempt + 1} attempts"
        )

    def _attempt_lost(self, state: _Inflight) -> None:
        qid = state.query.id
        if self._filter.get(qid) is not state:
            return  # resolved in the meantime
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        if state.attempt + 1 >= self.policy.max_attempts:
            self._give_up(
                state,
                f"no valid response after {self.policy.max_attempts} attempts",
            )
            return
        backoff = self.policy.jittered_backoff(
            state.attempt, self.seed, state.query.id)
        remaining = self._budget_left(state)
        if remaining is not None:
            if remaining <= 0:
                self._give_up(state, self._budget_reason(state))
                return
            # Clamp the sleep so the retry wakes with budget to spend:
            # a jittered backoff that overruns ``total_timeout`` would
            # otherwise schedule an attempt guaranteed to be classified
            # budget-exhausted on arrival - a burned retry.  The final
            # attempt is left ``attempt_timeout`` of runway when the
            # budget still has it, and whatever remains when it does not.
            backoff = min(
                backoff,
                max(0.0, remaining - self.policy.attempt_timeout))
        state.attempt += 1
        self.stats.retries += 1
        if self._m:
            self._m.retries.inc()
        self.loop.schedule_after(backoff, lambda: self._reissue(state))

    def _reissue(self, state: _Inflight) -> None:
        if self._filter.get(state.query.id) is state:
            # The new attempt's stream starts over at seq 0; forget the
            # dead attempt's chunk progress so its chunks are not
            # double-counted and the restart screens clean.
            self._filter.restart_stream(state.query.id)
            self._attempt(state)

    # -- inner completions ------------------------------------------------------

    def _on_chunk(self, query: Query, chunk: StreamChunk) -> None:
        screened = self._filter.screen_chunk(query, chunk)
        if screened.stale or screened.flaw is not None:
            # Straggler chunks from a dead attempt (or for a resolved
            # query) are absorbed; they are progress reports, not
            # evidence the live attempt failed.
            self.stats.filtered_completions += 1
            if self._m:
                self._m.filtered.inc()
            return
        state = screened.state
        # Streaming progress resets the per-attempt deadline: the
        # attempt is alive, so the timeout meters the gap between
        # chunks rather than the whole stream.
        if state.timer is not None:
            state.timer.cancel()
        timeout = self.policy.attempt_timeout
        remaining = self._budget_left(state)
        if remaining is not None:
            timeout = max(0.0, min(timeout, remaining))
        state.timer = self.loop.schedule_after(
            timeout, lambda: self._attempt_lost(state)
        )
        self._responder(query, chunk)

    def _on_inner_completion(self, query: Query, responses) -> None:
        if isinstance(responses, StreamChunk):
            self._on_chunk(query, responses)
            return
        screened = self._filter.screen(query, responses)
        if screened.stale:
            # Duplicate, unsolicited, or post-deadline straggler: the
            # resilience layer absorbs it so the referee never sees it.
            self.stats.filtered_completions += 1
            if self._m:
                self._m.filtered.inc()
            return
        state = screened.state
        if screened.flaw is not None:
            # A bad attempt is a lost attempt; retry immediately rather
            # than waiting out the deadline.
            self.stats.malformed_attempts += 1
            if self._m:
                self._m.malformed.inc()
            self._attempt_lost(state)
            return
        if state.timer is not None:
            state.timer.cancel()
        self._filter.resolve(query.id)
        if state.attempt > 0:
            self.stats.recovered_queries += 1
            if self._m:
                self._m.recovered.inc()
        self.complete(query, responses)
