"""Command-line interface: ``python -m repro.cli <command>``.

Six commands cover the everyday workflows:

* ``tables``  - print the paper's normative tables (I-V) from the code.
* ``run``     - measure one (task, scenario) on a parameterized
                simulated device, printing the LoadGen summary; with
                ``--sut network --addr HOST:PORT`` the same LoadGen
                instead drives a remote ``repro serve`` instance over
                TCP on the wall clock; with ``--sut parallel
                --workers N`` it runs the glyph classifier sharded
                across N worker processes (``repro.parallel``); with
                ``--workload session`` it replays seeded multi-turn
                conversations through a shared-prefix cache and audits
                the cache's hit trail (``docs/sessions.md``); add
                ``--replicas N --chaos`` to balance them over a zoned
                fleet while a seeded fault schedule knocks zones out
                and browns replicas down, with the outlier detector
                ejecting the gray failures (``docs/chaos.md``).
* ``serve``   - host a backend behind the network protocol so a
                ``run --sut network`` (or any NetworkSUT) can drive it;
                ``--backend parallel`` hosts the process-parallel pool
                instead of the in-thread echo.
* ``fleet``   - run the Section VI fleet survey (optionally a subset)
                and print the coverage matrix and per-model counts.
* ``check``   - run the submission checker over an on-disk submission
                directory (see ``repro.submission.artifacts``).
* ``metrics`` - run an instrumented network scenario on the virtual
                clock and render its live telemetry (counters, gauges,
                latency histograms with p50/p99) as a table, Prometheus
                exposition text, or JSON; see ``docs/observability.md``.
* ``sweep``   - search the Server arrival rate for the highest QPS that
                still meets the latency SLO, against a modeled SUT or a
                replicated fleet (optionally autoscaled, on the backlog
                or a live metric series); with ``--workload session`` the
                probed rate is *sessions/s* routed through per-replica
                prefix caches, each probe reporting its audited token hit
                rate; with ``--chaos`` every probe runs under the same
                seeded fault schedule, so the knee is the capacity the
                fleet holds *through* zone outages and gray failures.
                Writes a ``BENCH_fleet.json``-style capacity report with
                ``--report``; see ``docs/fleet.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import Scenario, Task
from .harness.tables import (
    format_coverage_matrix,
    format_table_i,
    format_table_ii,
    format_table_iii,
    format_table_iv,
    format_table_v,
)

_TASKS = {task.value: task for task in Task}
_SCENARIOS = {
    "single-stream": Scenario.SINGLE_STREAM,
    "multi-stream": Scenario.MULTI_STREAM,
    "server": Scenario.SERVER,
    "offline": Scenario.OFFLINE,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLPerf Inference benchmark reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tables = sub.add_parser("tables", help="print the paper's tables")
    tables.add_argument(
        "--which", choices=["1", "2", "3", "4", "5", "all"], default="all")

    run = sub.add_parser("run", help="benchmark a simulated device")
    run.add_argument("--task", choices=sorted(_TASKS))
    run.add_argument("--scenario", choices=sorted(_SCENARIOS))
    run.add_argument("--workload", choices=["queries", "session"],
                     default="queries",
                     help="queries: the paper's independent-query "
                          "scenarios (--scenario picks which); session: "
                          "multi-turn conversation replay through a "
                          "shared-prefix cache (docs/sessions.md)")
    run.add_argument("--sut", choices=["device", "network", "parallel"],
                     default="device",
                     help="device: in-process simulated device; "
                          "network: drive a remote 'repro serve' over TCP; "
                          "parallel: classifier on a worker-process pool")
    run.add_argument("--peak-gops", type=float, default=40_000.0)
    run.add_argument("--base-utilization", type=float, default=0.06)
    run.add_argument("--saturation-gops", type=float, default=150.0)
    run.add_argument("--overhead-ms", type=float, default=0.5)
    run.add_argument("--max-batch", type=int, default=64)
    run.add_argument("--engines", type=int, default=1)
    run.add_argument("--batch-window-ms", type=float, default=0.0)
    net = run.add_argument_group("network SUT (--sut network)")
    net.add_argument("--addr", metavar="HOST:PORT",
                     help="address of the remote inference server")
    net.add_argument("--target-qps", type=float, default=100.0,
                     help="server-scenario Poisson arrival rate")
    net.add_argument("--queries", type=int, default=200,
                     help="minimum query count for the measured run")
    net.add_argument("--latency-bound-ms", type=float, default=100.0)
    net.add_argument("--connections", type=int, default=1)
    net.add_argument("--query-timeout", type=float, default=2.0)
    net.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace (with network spans) here")
    par = run.add_argument_group("parallel SUT (--sut parallel)")
    par.add_argument("--workers", type=int, default=2,
                     help="worker processes in the pool")
    par.add_argument("--parallel-batch", type=int, default=64,
                     help="dynamic-batcher cap, in samples")
    par.add_argument("--samples", type=int, default=256,
                     help="synthetic dataset size (and offline batch)")
    stream = run.add_argument_group("streaming (--stream)")
    stream.add_argument("--stream", action="store_true",
                        help="stream each answer as token chunks: the "
                             "summary gains TTFT/TPOT percentiles and "
                             "goodput (docs/streaming.md).  With --sut "
                             "device this is one direct measured run at "
                             "--target-qps rather than a tuning search; "
                             "with --sut network the remote server "
                             "should host a streaming backend ('repro "
                             "serve --backend streaming-echo')")
    stream.add_argument("--ttft-ms", type=float, default=None,
                        help="time-to-first-token SLO target")
    stream.add_argument("--tpot-ms", type=float, default=None,
                        help="time-per-output-token SLO target")
    stream.add_argument("--min-tokens", type=int, default=8)
    stream.add_argument("--max-tokens", type=int, default=32)
    stream.add_argument("--first-token-ms", type=float, default=2.0,
                        help="stream model delay to the first token")
    stream.add_argument("--inter-token-ms", type=float, default=0.5,
                        help="stream model delay between later tokens")
    stream.add_argument("--seed", type=int, default=0)
    session = run.add_argument_group("session workload (--workload session)")
    session.add_argument("--sessions", type=int, default=64,
                         help="conversations to replay")
    session.add_argument("--session-qps", type=float, default=20.0,
                         help="Poisson session arrival rate, sessions/s")
    session.add_argument("--turns-min", type=int, default=2)
    session.add_argument("--turns-max", type=int, default=8)
    session.add_argument("--think-time-s", type=float, default=0.5,
                         help="mean exponential think time between turns")
    session.add_argument("--cache-tokens", type=int, default=32_768,
                         help="prefix-cache capacity, in tokens")
    session.add_argument("--backend-latency-ms", type=float, default=2.0,
                         help="echo backend per-turn service time")
    chaos = run.add_argument_group(
        "fleet + chaos (--workload session)")
    chaos.add_argument("--replicas", type=int, default=0,
                       help="> 0: replay the sessions against a ReplicaSet "
                            "of this many echo replicas (per-replica "
                            "prefix caches) instead of a single backend")
    chaos.add_argument("--zones", type=int, default=1,
                       help="fault domains to stripe the replicas across "
                            "(--replicas)")
    chaos.add_argument("--balancer",
                       choices=["round-robin", "least-outstanding",
                                "weighted-p99", "session-affinity",
                                "zone-spread", "zone-local"],
                       default="least-outstanding",
                       help="fleet balancing policy (--replicas)")
    chaos.add_argument("--chaos", action="store_true",
                       help="drive a seeded ChaosSchedule (zone outages, "
                            "gray failures, partitions) against the fleet "
                            "while it serves; requires --replicas "
                            "(docs/chaos.md)")
    chaos.add_argument("--chaos-events", type=int, default=3,
                       help="fault windows to draw for the schedule")
    chaos.add_argument("--no-detector", action="store_true",
                       help="with --chaos: leave the fleet unprotected "
                            "(skip the gray-failure outlier detector)")

    serve = sub.add_parser(
        "serve", help="host a backend behind the network protocol")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9090)
    serve.add_argument("--backend",
                       choices=["echo", "parallel", "streaming-echo"],
                       default="echo",
                       help="echo: per-worker-thread EchoSUT; parallel: "
                            "one shared process-parallel pool; "
                            "streaming-echo: echo that streams each "
                            "answer as token chunks (CHUNK frames)")
    serve.add_argument("--stream-seed", type=int, default=0,
                       help="stream model seed (--backend streaming-echo)")
    serve.add_argument("--latency-ms", type=float, default=1.0,
                       help="backend per-query service time")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--model-workers", type=int, default=2,
                       help="process count for --backend parallel")
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument("--batch-window-ms", type=float, default=0.0)
    serve.add_argument("--queue", type=int, default=256,
                       help="admission-queue bound, in requests")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="stop after this long (default: until Ctrl-C)")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       help="graceful-drain budget on SIGTERM/Ctrl-C: new "
                            "queries are refused while in-flight ones get "
                            "this long to finish")
    serve.add_argument("--state-journal", metavar="PATH", default=None,
                       help="journal the final server state (stats, drain "
                            "outcome) to PATH on shutdown")

    fleet = sub.add_parser("fleet", help="run the Section VI fleet survey")
    fleet.add_argument("--systems", nargs="*", default=None,
                       help="subset of system names (default: all 33)")
    fleet.add_argument("--report", default=None, metavar="PATH",
                       help="also write a full markdown report to PATH")

    check = sub.add_parser("check", help="check a submission directory")
    check.add_argument("directory")

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented scenario and show its telemetry")
    metrics.add_argument("--scenario", choices=sorted(_SCENARIOS),
                         default="server")
    metrics.add_argument("--queries", type=int, default=500,
                         help="minimum query count for the run")
    metrics.add_argument("--target-qps", type=float, default=400.0,
                         help="server-scenario Poisson arrival rate")
    metrics.add_argument("--latency-ms", type=float, default=1.0,
                         help="echo backend per-query service time")
    metrics.add_argument("--net-latency-ms", type=float, default=0.5,
                         help="simulated one-way channel latency")
    metrics.add_argument("--jitter-ms", type=float, default=0.1,
                         help="mean exponential per-frame jitter")
    metrics.add_argument("--drop", type=float, default=0.0,
                         help="channel frame drop probability; > 0 adds "
                              "a retry layer and its resilient_* series")
    metrics.add_argument("--stream", action="store_true",
                         help="stream answers as token chunks so the "
                              "stream_* series (TTFT/TPOT histograms, "
                              "chunk counters) light up")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--snapshot-period-ms", type=float, default=100.0,
                         help="telemetry sampling period, run time")
    metrics.add_argument("--format", choices=["table", "prom", "json"],
                         default="table")
    metrics.add_argument("--trace", metavar="PATH", default=None,
                         help="write a Chrome trace with a metrics "
                              "counter track here")
    metrics.add_argument("--journal", metavar="PATH", default=None,
                         help="write-ahead run journal: the run becomes "
                              "resumable and the durability_* series "
                              "light up (docs/durability.md)")
    metrics.add_argument("--resume", action="store_true",
                         help="resume the interrupted run recorded in "
                              "--journal instead of starting fresh")
    metrics.add_argument("--fsync", choices=["always", "interval", "never"],
                         default="never",
                         help="journal fsync policy (--journal)")
    metrics.add_argument("--breaker", action="store_true",
                         help="route the backend through the self-healing "
                              "path (circuit breaker, standby, hedged "
                              "retries); breaker_* series light up")
    metrics.add_argument("--outage", type=float, default=0.0,
                         metavar="SECONDS",
                         help="with --breaker: black out the primary "
                              "backend for this long so the breaker "
                              "demonstrably sheds load")
    metrics.add_argument("--outage-start", type=float, default=0.25,
                         metavar="SECONDS",
                         help="run time at which the --outage window opens")

    sweep = sub.add_parser(
        "sweep",
        help="find the max SLO-compliant Server/session arrival rate")
    sweep.add_argument("--workload", choices=["queries", "session"],
                       default="queries",
                       help="what the probed rate is: independent Server "
                            "queries/s, or multi-turn sessions/s routed "
                            "through per-replica prefix caches")
    sweep.add_argument("--qps-low", type=float, default=10.0,
                       help="lower edge of the searched rate bracket")
    sweep.add_argument("--qps-high", type=float, default=2000.0,
                       help="upper edge of the searched rate bracket")
    sweep.add_argument("--resolution", type=float, default=10.0,
                       help="terminal bracket width (binary) or step size")
    sweep.add_argument("--mode", choices=["binary", "step"],
                       default="binary")
    sweep.add_argument("--max-probes", type=int, default=32)
    sweep.add_argument("--latency-bound-ms", type=float, default=50.0,
                       help="the SLO each probe run is judged against "
                            "(per turn under --workload session)")
    sweep.add_argument("--queries", type=int, default=400,
                       help="minimum query count per probe run")
    sweep.add_argument("--latency-ms", type=float, default=2.0,
                       help="echo backend per-query service time")
    sweep.add_argument("--concurrency", type=int, default=None,
                       metavar="SLOTS",
                       help="serving slots per echo backend; makes its "
                            "capacity finite (SLOTS / latency qps) so the "
                            "sweep has a real knee to find")
    sweep.add_argument("--replicas", type=int, default=0,
                       help="> 0: probe a ReplicaSet of this many echo "
                            "replicas instead of a single backend")
    sweep.add_argument("--balancer", choices=["round-robin",
                                              "least-outstanding",
                                              "weighted-p99",
                                              "session-affinity",
                                              "zone-spread",
                                              "zone-local"],
                       default="least-outstanding",
                       help="fleet balancing policy (--replicas)")
    sweep.add_argument("--zones", type=int, default=1,
                       help="fault domains to stripe the replicas across "
                            "(--replicas)")
    sweep.add_argument("--chaos", action="store_true",
                       help="inject the same seeded ChaosSchedule into "
                            "every probe run, with the outlier detector "
                            "protecting the fleet: the reported capacity "
                            "is the SLO knee *under faults* "
                            "(docs/chaos.md)")
    sweep.add_argument("--chaos-events", type=int, default=3,
                       help="fault windows per probe run (--chaos)")
    sweep.add_argument("--autoscale", action="store_true",
                       help="attach the deterministic autoscaler to each "
                            "probe's fleet (--replicas)")
    sweep.add_argument("--scale-signal",
                       choices=["backlog", "outstanding-series",
                                "cache-miss-rate"],
                       default="backlog",
                       help="what the autoscaler samples: the in-process "
                            "backlog, the live fleet_outstanding_queries "
                            "series, or the fleet-wide "
                            "prefix_cache_tokens_missed_total rate")
    sweep.add_argument("--sessions", type=int, default=64,
                       help="conversations per probe run "
                            "(--workload session)")
    sweep.add_argument("--turns-min", type=int, default=2)
    sweep.add_argument("--turns-max", type=int, default=8)
    sweep.add_argument("--think-time-s", type=float, default=0.05,
                       help="mean think time between a session's turns")
    sweep.add_argument("--cache-tokens", type=int, default=32_768,
                       help="per-replica prefix cache capacity "
                            "(--workload session)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--report", metavar="PATH", default=None,
                       help="write the JSON capacity report here")
    return parser


def _cmd_tables(args) -> int:
    sections = {
        "1": ("Table I - tasks and reference models", format_table_i),
        "2": ("Table II - scenarios and metrics", format_table_ii),
        "3": ("Table III - latency constraints", format_table_iii),
        "4": ("Table IV - query requirements", format_table_iv),
        "5": ("Table V - queries and samples per query", format_table_v),
    }
    keys = list(sections) if args.which == "all" else [args.which]
    for key in keys:
        title, formatter = sections[key]
        print(f"\n{title}\n{'=' * len(title)}")
        print(formatter())
    return 0


def _stream_targets(args) -> dict:
    """``TestSettings`` overrides for the token-level SLO targets."""
    targets = {}
    if getattr(args, "ttft_ms", None) is not None:
        targets["ttft_target_ns"] = int(args.ttft_ms * 1e6)
    if getattr(args, "tpot_ms", None) is not None:
        targets["tpot_target_ns"] = int(args.tpot_ms * 1e6)
    return targets


def _cmd_run_stream(args) -> int:
    """``run --stream`` with the in-process device SUT: one direct
    measured run of the streaming path on the virtual clock."""
    from .core.config import TestSettings
    from .core.loadgen import run_benchmark
    from .harness.netbench import SyntheticQSL
    from .streaming import StreamModel, StreamingSUT
    from .sut.device import DeviceModel, ProcessorType
    from .sut.fleet import task_workload
    from .sut.simulated import SimulatedSUT

    if args.task is None:
        print("--stream with --sut device requires --task", file=sys.stderr)
        return 2
    scenario = _SCENARIOS[args.scenario]
    task = _TASKS[args.task]
    common = dict(
        scenario=scenario, task=task,
        min_duration=0.0, watchdog_timeout=300.0, seed=args.seed,
        **_stream_targets(args),
    )
    if scenario is Scenario.SERVER:
        settings = TestSettings(
            server_target_qps=args.target_qps,
            server_latency_bound=args.latency_bound_ms * 1e-3,
            min_query_count=args.queries, **common)
    elif scenario is Scenario.OFFLINE:
        settings = TestSettings(
            offline_sample_count=args.samples, min_query_count=1, **common)
    else:
        settings = TestSettings(min_query_count=args.queries, **common)
    device = DeviceModel(
        name="cli-device", processor=ProcessorType.GPU,
        peak_gops=args.peak_gops, base_utilization=args.base_utilization,
        saturation_gops=args.saturation_gops,
        overhead=args.overhead_ms * 1e-3, max_batch=args.max_batch,
        engines=args.engines,
    )
    model = StreamModel(
        first_token_delay=args.first_token_ms * 1e-3,
        inter_token_delay=args.inter_token_ms * 1e-3,
        min_tokens=args.min_tokens, max_tokens=args.max_tokens,
        seed=args.seed,
    )
    sut = StreamingSUT(
        SimulatedSUT(device, task_workload(task),
                     batch_window=args.batch_window_ms * 1e-3),
        model=model,
    )
    result = run_benchmark(sut, SyntheticQSL(), settings)
    print(result.summary())
    return 0 if result.valid else 1


def _cmd_run_network(args) -> int:
    from .core.config import TestSettings
    from .harness.netbench import NetworkRunResult, SyntheticQSL
    from .core.events import WallClock
    from .core.loadgen import run_benchmark
    from .core.trace import write_chrome_trace
    from .network.client import NetworkSUT

    if not args.addr:
        print("--sut network requires --addr HOST:PORT", file=sys.stderr)
        return 2
    scenario = _SCENARIOS[args.scenario]
    settings = TestSettings(
        scenario=scenario,
        task=_TASKS[args.task] if args.task else None,
        server_target_qps=args.target_qps,
        server_latency_bound=args.latency_bound_ms * 1e-3,
        min_query_count=args.queries,
        min_duration=0.0,
        watchdog_timeout=60.0,
        **_stream_targets(args),
    )
    qsl = SyntheticQSL()
    sut = NetworkSUT(
        args.addr,
        connections=args.connections,
        query_timeout=args.query_timeout,
    )
    try:
        result = run_benchmark(sut, qsl, settings, clock=WallClock())
    finally:
        sut.close()
    print(result.summary())
    print(f"client: {sut.stats.summary()}")
    if sut.server_stats:
        print(f"server: {sut.server_stats}")
    bundle = NetworkRunResult(
        result=result, client_stats=sut.stats,
        transport=dict(sut.transport_records),
    )
    print(f"mean round trip : {bundle.mean_round_trip() * 1e3:.3f} ms")
    print(f"mean wire share : {bundle.mean_network_time() * 1e3:.3f} ms")
    if args.trace:
        write_chrome_trace(result.log, args.trace,
                           transport=sut.transport_records)
        print(f"trace written to {args.trace}")
    return 0 if result.valid else 1


def _cmd_serve(args) -> int:
    import signal as _signal
    import time as _time

    from .network.server import InferenceServer, ServerConfig
    from .sut.echo import EchoSUT

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.queue,
        max_batch=args.max_batch,
        batch_window=args.batch_window_ms * 1e-3,
    )
    latency = args.latency_ms * 1e-3

    # Every exit - normal --max-seconds expiry, Ctrl-C, SIGTERM, or an
    # exception while starting up - funnels through this one drain path,
    # so a backend constructed before the server came up can never leak
    # its worker pool (see docs/durability.md, "Graceful drain").
    server = None
    backend = None
    done = []

    def _shutdown() -> None:
        if done:
            return
        done.append(True)
        if server is not None:
            drained = server.drain(timeout=args.drain_seconds)
            server.stop(drain=False)
            if not drained:
                print("drain deadline expired; in-flight queries dropped")
            if args.state_journal:
                from .durability.journal import JournalWriter

                with JournalWriter(args.state_journal) as writer:
                    writer.append("server-state", {
                        "drained": drained,
                        "stats": dict(server.stats.snapshot()),
                    })
                print(f"final state journaled to {args.state_journal}")
            print(f"server stats: {server.stats.snapshot()}")
        elif backend is not None:
            close = getattr(backend, "close", None)
            if callable(close):
                close()

    def _on_sigterm(signum, frame):
        # Funnel SIGTERM into the KeyboardInterrupt path so both signals
        # share the graceful drain; a second signal (handler restored in
        # the finally) force-kills as usual.
        raise KeyboardInterrupt

    previous = _signal.signal(_signal.SIGTERM, _on_sigterm)
    try:
        if args.backend == "parallel":
            from .harness.netbench import parallel_echo_backend

            # One shared pool instance: the server serializes dispatches
            # through a single runner, the processes provide the
            # parallelism, and the drain path releases the pool.
            backend = parallel_echo_backend(
                workers=args.model_workers, compute_time=latency,
                max_batch=args.max_batch)
            description = (f"parallel echo backend ({args.model_workers} "
                           f"procs, {args.latency_ms} ms)")
        elif args.backend == "streaming-echo":
            from .streaming import StreamModel, streaming_echo

            model = StreamModel(seed=args.stream_seed)
            backend = lambda: streaming_echo(  # noqa: E731
                latency=latency, model=model)
            description = (f"streaming echo backend ({args.latency_ms} ms, "
                           f"seed {args.stream_seed})")
        else:
            backend = lambda: EchoSUT(latency=latency)  # noqa: E731
            description = f"echo backend ({args.latency_ms} ms)"
        server = InferenceServer(backend, config)
        host, port = server.start()
        print(f"serving {description} on {host}:{port}")
        if args.max_seconds is not None:
            _time.sleep(args.max_seconds)
        else:
            while True:
                _time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down: draining in-flight queries")
    finally:
        _signal.signal(_signal.SIGTERM, previous)
        _shutdown()
    return 0


def _cmd_run_parallel(args) -> int:
    import numpy as np

    from .core.config import TestSettings
    from .core.loadgen import run_benchmark
    from .datasets import SyntheticImageNet
    from .datasets.qsl import DatasetQSL
    from .models.runtime import build_glyph_classifier
    from .parallel import BatchingPolicy, ParallelSUT

    scenario = _SCENARIOS[args.scenario]
    if scenario not in (Scenario.OFFLINE, Scenario.SINGLE_STREAM):
        print("--sut parallel supports offline and single-stream",
              file=sys.stderr)
        return 2
    dataset = SyntheticImageNet(size=args.samples, num_classes=8, seed=29)
    model = build_glyph_classifier(dataset, "light")

    def classifier_factory():
        def predict(samples):
            return model.predict(np.stack(samples))
        return predict

    if scenario is Scenario.OFFLINE:
        settings = TestSettings(
            scenario=scenario, offline_sample_count=args.samples,
            min_duration=0.0, min_query_count=1)
    else:
        settings = TestSettings(
            scenario=scenario, min_duration=0.0,
            min_query_count=args.queries)
    qsl = DatasetQSL(dataset)
    sut = ParallelSUT(
        classifier_factory, qsl, workers=args.workers, seed=0,
        policy=BatchingPolicy(max_batch_size=args.parallel_batch,
                              max_wait=0.0))
    try:
        result = run_benchmark(sut, qsl, settings)
    finally:
        sut.close()
    print(result.summary())
    stats = sut.pool.stats
    print(f"pool: {args.workers} workers, "
          f"{stats.shm_dispatches} shm + {stats.pickle_dispatches} pickled "
          f"dispatches, {stats.bytes_in / 1e6:.2f} MB in / "
          f"{stats.bytes_out / 1e6:.2f} MB out, {stats.restarts} restarts")
    return 0 if result.valid else 1


def _cmd_run_session(args) -> int:
    """``run --workload session``: replay seeded conversations through
    the prefix cache and report per-session percentiles plus the
    audited cache hit rate (docs/sessions.md).  With ``--replicas N``
    the conversations are balanced over a fleet with per-replica
    caches; ``--chaos`` additionally drives a seeded fault schedule
    against that fleet, with the gray-failure outlier detector
    protecting it unless ``--no-detector`` (docs/chaos.md)."""
    from .core.config import TestSettings
    from .core.loadgen import run_benchmark
    from .harness.netbench import SyntheticQSL
    from .metrics import MetricsRegistry
    from .sessions import (
        CacheStats,
        PrefixCacheSUT,
        audit_cache_events,
        audit_replica_caches,
        per_replica_cache_factory,
        replay_graph_from_settings,
    )
    from .sut.echo import EchoSUT

    if args.chaos and args.replicas <= 0:
        print("--chaos requires --replicas N", file=sys.stderr)
        return 2
    settings = TestSettings(
        scenario=Scenario.SESSION,
        task=_TASKS[args.task] if args.task else None,
        server_target_qps=args.session_qps,
        session_count=args.sessions,
        session_turns_min=args.turns_min,
        session_turns_max=args.turns_max,
        session_think_time_mean=args.think_time_s,
        min_duration=0.0,
        watchdog_timeout=600.0,
        seed=args.seed,
        **_stream_targets(args),
    )
    registry = MetricsRegistry()
    latency = args.backend_latency_ms * 1e-3

    def wrap_stream(backend):
        if args.stream:
            from .streaming import StreamModel, StreamingSUT

            return StreamingSUT(backend, model=StreamModel(seed=args.seed))
        return backend

    services = []
    orchestrator = detector = None
    if args.replicas > 0:
        from .fleet import OutlierDetector, ReplicaSet

        def make_backend(index):
            return wrap_stream(
                EchoSUT(latency=latency, name=f"replica-{index}"))

        factory = make_backend
        if args.chaos:
            from .faults import ChaosOrchestrator, ChaosSchedule

            # A rough run-length estimate is all the schedule needs:
            # windows are placed inside the first 60% of it.
            horizon = (args.sessions / args.session_qps
                       + args.turns_max * args.think_time_s)
            schedule = ChaosSchedule.generate(
                args.seed, duration=horizon, replicas=args.replicas,
                zones=args.zones, events=args.chaos_events)
            orchestrator = ChaosOrchestrator(schedule, registry=registry)
            factory = orchestrator.wrap_factory(factory)
        sut = ReplicaSet(
            factory,
            initial_replicas=args.replicas,
            max_replicas=args.replicas,
            policy=args.balancer,
            zones=args.zones,
            seed=args.seed,
            registry=registry,
            cache_factory=per_replica_cache_factory(
                capacity_tokens=args.cache_tokens, registry=registry),
        )
        if orchestrator is not None:
            orchestrator.bind(sut)
            services.append(orchestrator)
            if not args.no_detector:
                detector = OutlierDetector(sut, seed=args.seed,
                                           registry=registry)
                services.append(detector)
    else:
        sut = PrefixCacheSUT(
            wrap_stream(EchoSUT(latency=latency)),
            capacity_tokens=args.cache_tokens, registry=registry)
    result = run_benchmark(sut, SyntheticQSL(), settings,
                           registry=registry, services=services)
    print(result.summary())
    graph = replay_graph_from_settings(settings)
    caches = getattr(sut, "caches", None)
    if caches is not None:
        stats = CacheStats.merged([c.stats for c in caches.values()])
        problems = [p for trail in
                    audit_replica_caches(caches, graph).values()
                    for p in trail]
        events = sum(len(c.events) for c in caches.values())
        print(f"fleet             : {sut.stats.summary()}")
    else:
        stats = sut.stats
        problems = audit_cache_events(sut.events, graph,
                                      sut.capacity_tokens)
        events = len(sut.events)
    print(f"prefix cache      : {stats.hits} hits / "
          f"{stats.partial_hits} partial / {stats.misses} misses "
          f"({stats.evictions} evictions), "
          f"hit rate {stats.hit_rate:.1%}, "
          f"token hit rate {stats.token_hit_rate:.1%}")
    if orchestrator is not None:
        injected = sum(1 for d in orchestrator.trace
                       if d.action == "inject")
        recovered = sum(1 for d in orchestrator.trace
                        if d.action == "recover")
        print(f"chaos             : {injected} faults injected, "
              f"{recovered} recovered over {len(orchestrator.trace)} "
              f"ticks")
        for window in orchestrator.windows:
            closed = (f"{window.end:.3f}" if window.end is not None
                      else "open")
            print(f"  {window.kind:12s} {window.target:10s} "
                  f"[{window.start:.3f} .. {closed}] s")
    if detector is not None:
        ejections = sum(1 for e in detector.trace if e.action == "eject")
        readmits = sum(1 for e in detector.trace if e.action == "readmit")
        print(f"outlier detector  : {ejections} ejections, "
              f"{readmits} readmissions "
              f"({len(detector.trace)} trail events)")
    if getattr(args, "trace", None):
        from .core.trace import write_chrome_trace

        write_chrome_trace(
            result.log, args.trace, snapshots=result.snapshots,
            chaos=orchestrator.windows if orchestrator else None)
        print(f"trace written to {args.trace}")
    if problems:
        print(f"cache audit       : FAILED ({len(problems)} discrepancies; "
              f"first: {problems[0]})")
        return 1
    print(f"cache audit       : clean ({events} events replayed)")
    return 0 if result.valid else 1


def _cmd_run(args) -> int:
    if args.workload == "session":
        if args.sut != "device":
            print("--workload session supports --sut device only",
                  file=sys.stderr)
            return 2
        return _cmd_run_session(args)
    if args.scenario is None:
        print("run requires --scenario (unless --workload session)",
              file=sys.stderr)
        return 2
    if args.sut == "network":
        return _cmd_run_network(args)
    if args.sut == "parallel":
        if args.stream:
            print("--stream supports --sut device and --sut network",
                  file=sys.stderr)
            return 2
        return _cmd_run_parallel(args)
    if args.stream:
        return _cmd_run_stream(args)
    if args.task is None:
        print("--sut device requires --task", file=sys.stderr)
        return 2
    from .harness.tuning import (
        QUICK_SCALE,
        find_max_multistream_n,
        find_max_server_qps,
        measure_offline,
        measure_single_stream,
    )
    from .sut.device import DeviceModel, ProcessorType
    from .sut.fleet import task_workload
    from .sut.simulated import SimulatedSUT

    class NullQSL:
        name = "cli"
        total_sample_count = 8192
        performance_sample_count = 1024

        def load_samples(self, indices):
            pass

        def unload_samples(self, indices):
            pass

        def get_sample(self, index):
            return None

    task = _TASKS[args.task]
    scenario = _SCENARIOS[args.scenario]
    device = DeviceModel(
        name="cli-device", processor=ProcessorType.GPU,
        peak_gops=args.peak_gops, base_utilization=args.base_utilization,
        saturation_gops=args.saturation_gops,
        overhead=args.overhead_ms * 1e-3, max_batch=args.max_batch,
        engines=args.engines,
    )
    workload = task_workload(task)
    qsl = NullQSL()

    def make_sut():
        return SimulatedSUT(device, workload,
                            batch_window=args.batch_window_ms * 1e-3)

    if scenario is Scenario.SINGLE_STREAM:
        result = measure_single_stream(make_sut, qsl, task, QUICK_SCALE)
        print(result.summary())
    elif scenario is Scenario.OFFLINE:
        result = measure_offline(make_sut, qsl, task, QUICK_SCALE)
        print(result.summary())
    elif scenario is Scenario.SERVER:
        tuned = find_max_server_qps(make_sut, qsl, task, QUICK_SCALE)
        if tuned is None:
            print("result: cannot meet the server QoS bound at any rate")
            return 1
        print(f"max server rate: {tuned.value:.1f} qps "
              f"({tuned.probes} probe runs)")
        print(tuned.result.summary())
    else:
        tuned = find_max_multistream_n(make_sut, qsl, task, QUICK_SCALE)
        if tuned is None:
            print("result: cannot sustain even one stream")
            return 1
        print(f"max streams: {int(tuned.value)}")
        print(tuned.result.summary())
    return 0


def _cmd_fleet(args) -> int:
    from .harness.experiments import (
        result_matrix,
        results_per_task,
        run_fleet,
    )
    from .sut.fleet import build_fleet

    systems = build_fleet()
    if args.systems:
        wanted = set(args.systems)
        known = {s.name for s in systems}
        unknown = wanted - known
        if unknown:
            print(f"unknown systems: {sorted(unknown)}", file=sys.stderr)
            print(f"available: {sorted(known)}", file=sys.stderr)
            return 2
        systems = [s for s in systems if s.name in wanted]

    records = run_fleet(systems)
    print(f"{len(records)} results from {len(systems)} systems\n")
    print(format_coverage_matrix(result_matrix(records)))
    print("\nper model:")
    for task, count in results_per_task(records).items():
        print(f"  {task.value:20s} {count}")
    if args.report:
        from pathlib import Path

        from .harness.report import generate_report

        Path(args.report).write_text(generate_report(
            records, systems=systems, title="MLPerf Inference fleet sweep"))
        print(f"\nreport written to {args.report}")
    return 0


def _cmd_metrics(args) -> int:
    from .core.config import TestSettings
    from .core.trace import write_chrome_trace
    from .faults.resilient import ResilientSUT, RetryPolicy
    from .harness.netbench import SyntheticQSL
    from .metrics import (
        MetricsRegistry,
        render_table,
        to_json,
        to_prometheus_text,
    )
    from .network.simulated import ChannelModel, SimulatedChannelSUT
    from .sut.echo import EchoSUT

    scenario = _SCENARIOS[args.scenario]
    settings = TestSettings(
        scenario=scenario,
        server_target_qps=args.target_qps,
        server_latency_bound=0.1,
        min_query_count=args.queries,
        min_duration=0.0,
        watchdog_timeout=300.0,
        seed=args.seed,
    )
    model = ChannelModel(
        latency=args.net_latency_ms * 1e-3,
        jitter=args.jitter_ms * 1e-3,
        drop_rate=args.drop,
        seed=args.seed,
    )
    registry = MetricsRegistry()
    backend = EchoSUT(latency=args.latency_ms * 1e-3)
    if args.stream:
        from .streaming import StreamingSUT

        backend = StreamingSUT(backend)
    channel = SimulatedChannelSUT(backend, model)
    sut = channel
    if args.outage > 0:
        from .faults import OutageSUT

        sut = OutageSUT(sut, args.outage_start, args.outage)
    if args.drop > 0:
        # A lossy channel needs the retry layer, which also lights up
        # the resilient_* counters in the registry.
        sut = ResilientSUT(sut, RetryPolicy(attempt_timeout=0.200),
                           registry=registry, seed=args.seed)
    if args.breaker:
        from .durability import SelfHealingSUT

        # The standby is a plain local echo: during a primary outage
        # the breaker trips, queries reroute, and the run survives.
        standby = EchoSUT(latency=args.latency_ms * 1e-3, name="standby")
        sut = SelfHealingSUT(sut, standby, registry=registry)
    elif args.outage > 0:
        print("note: --outage without --breaker leaves nothing to shed "
              "the load; expect recorded failures", file=sys.stderr)
    from .core.loadgen import run_benchmark

    if args.resume:
        if not args.journal:
            print("--resume requires --journal PATH", file=sys.stderr)
            return 2
        from .durability import resume_run

        result = resume_run(
            args.journal, sut, SyntheticQSL(),
            registry=registry,
            snapshot_period=args.snapshot_period_ms * 1e-3,
            fsync=args.fsync,
        )
    else:
        journal = None
        if args.journal:
            from .durability import RunJournal

            journal = RunJournal(args.journal, fsync=args.fsync,
                                 registry=registry)
        result = run_benchmark(
            sut, SyntheticQSL(), settings,
            registry=registry,
            snapshot_period=args.snapshot_period_ms * 1e-3,
            journal=journal,
        )

    if args.format == "prom":
        print(to_prometheus_text(registry), end="")
    elif args.format == "json":
        print(to_json(registry))
    else:
        print(result.summary())
        print()
        print(render_table(registry))
        count = len(result.snapshots or [])
        print(f"\n{count} snapshots over {result.metrics.duration:.3f} s "
              f"of virtual time")
    if args.trace:
        write_chrome_trace(result.log, args.trace,
                           transport=channel.transport_records,
                           snapshots=result.snapshots)
        print(f"trace written to {args.trace}")
    return 0 if result.valid else 1


def _cmd_sweep(args) -> int:
    import json
    from pathlib import Path

    from .core.config import TestSettings
    from .fleet import (
        Autoscaler,
        OutlierDetector,
        ReplicaSet,
        SeriesSignal,
        SweepConfig,
        SweepHarness,
    )
    from .harness.netbench import SyntheticQSL
    from .metrics import MetricsRegistry
    from .sut.echo import EchoSUT

    session_workload = args.workload == "session"
    if session_workload:
        # The probed rate is the *session* arrival rate (sessions/s);
        # the latency bound applies per turn (docs/sessions.md).
        settings = TestSettings(
            scenario=Scenario.SESSION,
            server_target_qps=args.qps_low,  # overridden per probe
            server_latency_bound=args.latency_bound_ms * 1e-3,
            session_count=args.sessions,
            session_turns_min=args.turns_min,
            session_turns_max=args.turns_max,
            session_think_time_mean=args.think_time_s,
            min_duration=0.0,
            watchdog_timeout=300.0,
            seed=args.seed,
        )
    else:
        settings = TestSettings(
            scenario=Scenario.SERVER,
            server_target_qps=args.qps_low,  # overridden per probe
            server_latency_bound=args.latency_bound_ms * 1e-3,
            min_query_count=args.queries,
            min_duration=0.0,
            watchdog_timeout=300.0,
            seed=args.seed,
        )
    latency = args.latency_ms * 1e-3
    if args.scale_signal == "cache-miss-rate" and not session_workload:
        print("--scale-signal cache-miss-rate requires --workload session "
              "(no prefix caches otherwise)", file=sys.stderr)
        return 2

    def make_backend(index=None):
        name = "echo" if index is None else f"replica-{index}"
        return EchoSUT(latency=latency, name=name,
                       concurrency=args.concurrency)

    if args.replicas > 0:
        from .sessions import per_replica_cache_factory

        chaos_schedule = None
        if args.chaos:
            from .faults import ChaosSchedule

            # Size the schedule to the *shortest* probe (the qps-high
            # end of the bracket) so every probe run sees both the
            # injection and the recovery side of each window.  One
            # schedule, reused by every probe: the capacity verdicts
            # stay comparable across rates.
            if session_workload:
                horizon = (args.sessions / args.qps_high
                           + args.turns_max * args.think_time_s)
            else:
                horizon = args.queries / args.qps_high
            chaos_schedule = ChaosSchedule.generate(
                args.seed, duration=horizon, replicas=args.replicas,
                zones=args.zones, events=args.chaos_events)

        def make_sut():
            # One registry per probe: live series feed the autoscaler's
            # SeriesSignal and export per-replica prefix_cache_* families.
            registry = MetricsRegistry()
            factory = make_backend
            orchestrator = None
            if chaos_schedule is not None:
                from .faults import ChaosOrchestrator

                orchestrator = ChaosOrchestrator(
                    chaos_schedule, registry=registry)
                factory = orchestrator.wrap_factory(factory)
            fleet = ReplicaSet(
                factory,
                initial_replicas=args.replicas,
                max_replicas=max(args.replicas, 2 * args.replicas),
                policy=args.balancer,
                zones=args.zones,
                attempt_timeout=4.0 * args.latency_bound_ms * 1e-3,
                seed=args.seed,
                registry=registry,
                cache_factory=(per_replica_cache_factory(
                    capacity_tokens=args.cache_tokens, registry=registry)
                    if session_workload else None),
            )
            if orchestrator is not None:
                orchestrator.bind(fleet)
            fleet.sweep_registry = registry
            fleet.chaos_orchestrator = orchestrator
            return fleet

        def services_factory(sut):
            registry = sut.sweep_registry
            services = []
            if sut.chaos_orchestrator is not None:
                services.append(sut.chaos_orchestrator)
                services.append(OutlierDetector(
                    sut, seed=args.seed, registry=registry))
            if args.autoscale:
                if args.scale_signal == "outstanding-series":
                    signal = SeriesSignal(
                        registry, "fleet_outstanding_queries",
                        mode="level", window=4,
                        per_available_replica=True)
                elif args.scale_signal == "cache-miss-rate":
                    signal = SeriesSignal(
                        registry, "prefix_cache_tokens_missed_total",
                        mode="rate", per_available_replica=True)
                else:
                    signal = None  # the stock in-process backlog
                services.append(
                    Autoscaler(sut, signal=signal, registry=registry))
            return services

        if not (args.autoscale or args.chaos):
            services_factory = None
        probed = (f"{args.replicas}-replica echo fleet "
                  f"({args.balancer}"
                  f"{f', {args.zones} zones' if args.zones > 1 else ''}"
                  f"{f', autoscaled on {args.scale_signal}' if args.autoscale else ''}"
                  f"{f', chaos x{args.chaos_events}' if args.chaos else ''})")
    else:
        if args.autoscale:
            print("--autoscale requires --replicas N", file=sys.stderr)
            return 2
        if args.chaos:
            print("--chaos requires --replicas N", file=sys.stderr)
            return 2

        def make_sut():
            backend = make_backend()
            if session_workload:
                from .sessions import PrefixCacheSUT
                return PrefixCacheSUT(
                    backend, capacity_tokens=args.cache_tokens)
            return backend
        services_factory = None
        probed = "single echo backend"
    if session_workload:
        probed += " [session workload, per-replica prefix caches]"

    cache_rows = []
    observe = None
    if session_workload:
        from .sessions import (
            CacheStats,
            audit_cache_events,
            audit_replica_caches,
            replay_graph_from_settings,
        )

        graph = replay_graph_from_settings(settings)

        def observe(sut, result, probe):
            caches = getattr(sut, "caches", None)
            if caches:
                stats = CacheStats.merged(
                    [c.stats for c in caches.values()])
                dirty = sum(
                    len(v) for v in
                    audit_replica_caches(caches, graph).values())
            else:
                stats = sut.stats
                dirty = len(audit_cache_events(
                    sut.events, graph, sut.capacity_tokens))
            cache_rows.append((stats, dirty))

    harness = SweepHarness(
        make_sut, SyntheticQSL(), settings,
        SweepConfig(qps_low=args.qps_low, qps_high=args.qps_high,
                    resolution=args.resolution, mode=args.mode,
                    max_probes=args.max_probes),
        services_factory=services_factory,
        probe_observer=observe,
    )
    result = harness.run()
    unit = "sessions/s" if session_workload else "qps"
    print(f"probed: {probed} ({args.latency_ms} ms service time)")
    for position, probe in enumerate(result.probes):
        verdict = "VALID" if probe.valid else "INVALID"
        line = (f"  {probe.qps:10.3f} {unit}  {verdict:7s} "
                f"p99={probe.latency_p99 * 1e3:8.3f} ms  "
                f"completed={probe.completed}")
        if session_workload:
            stats, dirty = cache_rows[position]
            audit = "clean" if dirty == 0 else f"{dirty} PROBLEMS"
            line += (f"  token-hit={stats.token_hit_rate:6.1%} "
                     f"audit={audit}")
        print(line)
    print(result.summary())
    dirty_trails = sum(dirty for _, dirty in cache_rows)
    if session_workload and dirty_trails:
        print(f"prefix-cache audit FAILED: {dirty_trails} discrepancies "
              "across probe runs", file=sys.stderr)
    if args.report:
        report = result.report()
        report["workload"] = args.workload
        if args.chaos:
            report["chaos"] = {
                "zones": args.zones,
                "events": [event._asdict()
                           for event in chaos_schedule.events],
            }
        if session_workload:
            report["probe_cache"] = [
                {
                    "token_hit_rate": stats.token_hit_rate,
                    "hits": stats.hits,
                    "partial_hits": stats.partial_hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "audit_problems": dirty,
                }
                for stats, dirty in cache_rows
            ]
        path = Path(args.report)
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"capacity report written to {path}")
    if session_workload and dirty_trails:
        return 1
    return 0 if result.max_qps is not None else 1


def _cmd_check(args) -> int:
    from .submission.artifacts import check_submission_dir

    report = check_submission_dir(args.directory)
    for issue in report.issues:
        print(issue)
    if report.passed:
        print("submission CLEARED")
        return 0
    print(f"submission REJECTED ({len(report.errors)} errors)")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "fleet": _cmd_fleet,
        "check": _cmd_check,
        "metrics": _cmd_metrics,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
