"""A virtual-time network channel for deterministic Network-division runs.

Real sockets cannot be driven by a :class:`~repro.core.events.VirtualClock`,
so experiments on network sensitivity (how does P99 latency degrade as
the wire slows down?) would be stuck with slow, noisy wall-clock runs.
:class:`SimulatedChannelSUT` closes that gap: it wraps any in-process
SUT and imposes a parameterised channel - propagation latency, jitter,
a bandwidth cap with queueing, loss, reordering - entirely in virtual
time, seeded and reproducible.

Fidelity points:

* **Real frame sizes.**  Delays are computed from the byte length of the
  *actual* wire encoding (:func:`repro.network.protocol.issue_frame` /
  ``complete_frame``), not a guess, so bandwidth effects match what the
  TCP path would serialize.
* **Bandwidth as queueing.**  Each direction is a link that serializes
  one frame at a time at ``bandwidth`` bytes/second; a burst of queries
  queues behind itself exactly like a saturated NIC.
* **Loss is silent.**  A dropped query or completion simply never
  arrives - recovery is the job of whatever sits above (compose with
  :class:`~repro.faults.resilient.ResilientSUT`, whose deadlines run on
  the same virtual clock), mirroring how a real client recovers from a
  lossy network.
* **Composability.**  The channel is itself a SUT, so it stacks with the
  PR-1 fault injectors: ``Resilient(Channel(Faulty(backend)))`` models a
  flaky backend behind a bad network, all deterministic.

Per-query :class:`~repro.core.trace.TransportTiming` records are kept in
``transport_records`` with the same semantics as the real client's, so
the trace exporter draws identical network spans for simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.events import EventLoop
from ..core.query import Query, QueryFailure, StreamChunk
from ..core.sut import Responder, SutBase, SystemUnderTest
from ..core.trace import TransportTiming
from ..streaming.reassembly import StreamReassembler
from . import protocol


@dataclass(frozen=True)
class ChannelModel:
    """Parameters of one simulated bidirectional channel."""

    #: One-way propagation delay, seconds, each direction.
    latency: float = 0.001
    #: Mean of an exponential jitter term added per frame (0 = none).
    jitter: float = 0.0
    #: Link rate in bytes/second; ``None`` = infinite (no serialization
    #: delay, no queueing).
    bandwidth: Optional[float] = None
    #: Probability a frame (either direction) silently vanishes.
    drop_rate: float = 0.0
    #: Probability a frame is held back an extra uniform(0, reorder_spread)
    #: seconds, letting later frames overtake it.
    reorder_rate: float = 0.0
    reorder_spread: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(
                f"bandwidth must be positive or None, got {self.bandwidth}"
            )
        for name in ("drop_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.reorder_spread < 0:
            raise ValueError(
                f"reorder_spread must be >= 0, got {self.reorder_spread}"
            )


@dataclass
class ChannelStats:
    """What the channel did to one run's traffic."""

    queries_forwarded: int = 0
    queries_dropped: int = 0
    completions_forwarded: int = 0
    completions_dropped: int = 0
    chunks_forwarded: int = 0
    chunks_dropped: int = 0
    #: Chunks stuck behind a lost one when their query resolved.
    chunks_stranded: int = 0
    reordered_frames: int = 0
    bytes_forward: int = 0
    bytes_reverse: int = 0

    def summary(self) -> str:
        return (
            f"fwd={self.queries_forwarded} (+{self.queries_dropped} dropped) "
            f"rev={self.completions_forwarded} "
            f"(+{self.completions_dropped} dropped) "
            f"reordered={self.reordered_frames} "
            f"bytes={self.bytes_forward}/{self.bytes_reverse}"
        )


class _Link:
    """One direction of the channel: a serializing queue plus the wire."""

    def __init__(self, model: ChannelModel) -> None:
        self.model = model
        self._free_at = 0.0

    def transit_time(self, now: float, size: int, jitter_draw: float) -> float:
        """When a ``size``-byte frame entering at ``now`` is delivered."""
        start = max(now, self._free_at)
        if self.model.bandwidth is not None:
            start += size / self.model.bandwidth
        self._free_at = start
        return start + self.model.latency + jitter_draw

    def reset(self) -> None:
        self._free_at = 0.0


class SimulatedChannelSUT(SutBase):
    """Impose a :class:`ChannelModel` between the LoadGen and ``inner``.

    Deterministic under a virtual clock: all randomness comes from one
    seeded generator reset at :meth:`start_run`, and all delays are
    event-loop schedules.
    """

    def __init__(
        self,
        inner: SystemUnderTest,
        model: Optional[ChannelModel] = None,
        name: Optional[str] = None,
        reassemble_streams: bool = True,
    ) -> None:
        super().__init__(name or f"channel[{inner.name}]")
        self.inner = inner
        self.model = model if model is not None else ChannelModel()
        #: Restore chunk order client-side (what a real streaming client
        #: does).  Disable to let the referee see the raw reordered
        #: arrivals - useful for demonstrating misbehavior detection.
        self.reassemble_streams = reassemble_streams
        self.stats = ChannelStats()
        self.transport_records: Dict[int, TransportTiming] = {}
        self._rng = np.random.default_rng(self.model.seed)
        self._forward = _Link(self.model)
        self._reverse = _Link(self.model)
        self._inner_recv: Dict[int, float] = {}
        self._send_times: Dict[int, float] = {}
        self._last_delivery = 0.0
        self._reassembler = StreamReassembler()
        self._chunks_in_flight: Dict[int, int] = {}
        self._held_completions: Dict[int, Callable[[], None]] = {}

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.stats = ChannelStats()
        self.transport_records = {}
        self._rng = np.random.default_rng(self.model.seed)
        self._forward.reset()
        self._reverse.reset()
        self._inner_recv = {}
        self._send_times = {}
        self._last_delivery = loop.now
        self._reassembler = StreamReassembler()
        self._chunks_in_flight = {}
        self._held_completions = {}
        self.inner.start_run(loop, self._on_inner_completion)

    # -- forward direction ------------------------------------------------------

    def issue_query(self, query: Query) -> None:
        size = len(protocol.issue_frame(query))
        self.stats.bytes_forward += size
        if self._rng.random() < self.model.drop_rate:
            self.stats.queries_dropped += 1
            return  # vanishes; recovery is the layer above's job
        deliver_at = self._transit(self._forward, size)
        self.stats.queries_forwarded += 1
        send_time = self.loop.now

        def _deliver() -> None:
            self._inner_recv[query.id] = self.loop.now
            self.transport_records.pop(query.id, None)
            self._send_times[query.id] = send_time
            self.inner.issue_query(query)

        self._schedule_delivery(deliver_at, _deliver)

    def flush(self) -> None:
        # The flush hint must not overtake queries still "on the wire":
        # deliver it after everything already scheduled has landed.
        deliver_at = max(
            self.loop.now + self.model.latency, self._last_delivery
        )
        self.loop.schedule(deliver_at, self.inner.flush)

    # -- reverse direction ------------------------------------------------------

    def _on_inner_completion(self, query: Query, responses) -> None:
        if isinstance(responses, StreamChunk):
            self._transit_chunk(query, responses)
            return
        if isinstance(responses, QueryFailure):
            size = len(protocol.fail_frame(query.id, responses.reason))
        else:
            try:
                size = len(protocol.complete_frame(
                    query.id, responses, server_recv=0.0, server_send=0.0
                ))
            except TypeError:
                # Not wire-encodable; a real server would FAIL it.  Use
                # the failure frame's size and forward the payload as-is
                # so the referee still sees the backend's answer shape.
                size = len(protocol.fail_frame(
                    query.id, "response payload not wire-encodable"
                ))
        self.stats.bytes_reverse += size
        if self._rng.random() < self.model.drop_rate:
            self.stats.completions_dropped += 1
            return
        server_recv = self._inner_recv.pop(query.id, self.loop.now)
        server_send = self.loop.now
        deliver_at = self._transit(self._reverse, size)
        self.stats.completions_forwarded += 1

        def _deliver() -> None:
            # The terminal frame must not overtake this query's chunks
            # still on the wire (per-flow ordering, as TCP would give
            # us); hold it until the last of them lands.  Chunks that
            # were *dropped* never went on the wire, so a lossy stream
            # still resolves - as a truncated stream.
            if self.reassemble_streams and \
                    self._chunks_in_flight.get(query.id, 0) > 0:
                self._held_completions[query.id] = _deliver
                return
            self._held_completions.pop(query.id, None)
            self.stats.chunks_stranded += self._reassembler.finish(query.id)
            self.transport_records[query.id] = TransportTiming(
                send_time=self._send_times.pop(query.id, server_recv),
                recv_time=self.loop.now,
                server_recv=server_recv,
                server_send=server_send,
            )
            self._responder(query, responses)

        self._schedule_delivery(deliver_at, _deliver)

    def _transit_chunk(self, query: Query, chunk: StreamChunk) -> None:
        """Carry one stream chunk over the reverse link."""
        size = len(protocol.chunk_frame(
            query.id, chunk.seq, chunk.token_count, chunk.last, chunk.data
        ))
        self.stats.bytes_reverse += size
        if self._rng.random() < self.model.drop_rate:
            self.stats.chunks_dropped += 1
            return
        deliver_at = self._transit(self._reverse, size)
        self.stats.chunks_forwarded += 1
        self._chunks_in_flight[query.id] = \
            self._chunks_in_flight.get(query.id, 0) + 1

        def _deliver() -> None:
            remaining = self._chunks_in_flight.get(query.id, 1) - 1
            if remaining <= 0:
                self._chunks_in_flight.pop(query.id, None)
            else:
                self._chunks_in_flight[query.id] = remaining
            if self.reassemble_streams:
                for released in self._reassembler.push(query.id, chunk):
                    self._responder(query, released)
            else:
                self._responder(query, chunk)
            if remaining <= 0:
                held = self._held_completions.pop(query.id, None)
                if held is not None:
                    held()

        self._schedule_delivery(deliver_at, _deliver)

    # -- shared plumbing --------------------------------------------------------

    def _transit(self, link: _Link, size: int) -> float:
        jitter = 0.0
        if self.model.jitter > 0:
            jitter = float(self._rng.exponential(self.model.jitter))
        deliver_at = link.transit_time(self.loop.now, size, jitter)
        if (
            self.model.reorder_rate > 0
            and self._rng.random() < self.model.reorder_rate
        ):
            deliver_at += float(self._rng.uniform(0, self.model.reorder_spread))
            self.stats.reordered_frames += 1
        return deliver_at

    def _schedule_delivery(self, deliver_at: float, callback) -> None:
        self._last_delivery = max(self._last_delivery, deliver_at)
        self.loop.schedule(deliver_at, callback)
