"""The LoadGen-over-network wire protocol.

A versioned, length-prefixed binary framing plus a small self-describing
payload codec.  The real MLPerf Network division draws the SUT boundary
at a wire: the LoadGen and the inference server sit on opposite ends of
a connection, and everything the wire adds - serialization, kernel
queues, propagation - counts against the QoS bound.  This module is that
wire's contract.

Framing::

    +-------+---------+------+-----------------+----------------+
    | magic | version | type | payload length  |    payload     |
    |  2 B  |   1 B   | 1 B  |  4 B big-endian | length bytes   |
    +-------+---------+------+-----------------+----------------+

Eight frame types cover the conversation: ``HELLO`` (version/name
exchange, first frame on every connection), ``LOAD`` (untimed sample
preload, the Fig. 3 steps 1-4 analogue), ``ISSUE`` (one query),
``COMPLETE`` (responses plus server-side timestamps), ``FAIL`` (a
query-scoped recorded failure), ``DRAIN`` (graceful end-of-session),
``STATS`` (server counters; also the reply to ``LOAD``/``DRAIN``), and
``CHUNK`` (one streamed piece of an answer; zero or more precede the
query's ``COMPLETE``).

The payload codec is a tagged recursive encoding of the JSON scalar
types plus ``bytes`` and C-contiguous numpy arrays (dtype + shape +
raw data), so inference inputs and outputs cross the wire without a
text round-trip.

Every decode path raises :class:`ProtocolError` on malformed input -
bad magic, unknown version or frame type, truncated or oversized
frames, garbage payload bytes.  Peers treat a ``ProtocolError`` as a
poisoned connection: there is no way to resynchronise a byte stream
with a corrupt length prefix, so the connection is closed and the
in-flight queries on it surface through the existing failed-query
machinery (never as hangs).
"""

from __future__ import annotations

import enum
import struct
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.query import Query, QuerySample, QuerySampleResponse, StreamChunk

MAGIC = b"MI"
VERSION = 1

#: Upper bound on one frame's payload.  A length prefix beyond this is
#: treated as stream corruption rather than an instruction to buffer
#: gigabytes (an offline query of 24,576 float32 ImageNet-sized samples
#: still fits comfortably).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">2sBBI")


class ProtocolError(Exception):
    """The byte stream violated the wire contract."""


class FrameType(enum.IntEnum):
    """The eight conversation frame types."""

    HELLO = 1
    LOAD = 2
    ISSUE = 3
    COMPLETE = 4
    FAIL = 5
    DRAIN = 6
    STATS = 7
    #: One streamed chunk of an answer; zero or more CHUNK frames
    #: precede a query's COMPLETE (or FAIL) frame.
    CHUNK = 8


# -- payload codec -------------------------------------------------------------
#
# One-byte tag, then a fixed or length-prefixed body.  Containers nest.

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")


def encode_value(value: Any) -> bytes:
    """Encode one payload value (raises ``TypeError`` on foreign types)."""
    if value is None:
        return b"Z"
    if value is True:
        return b"T"
    if value is False:
        return b"F"
    if isinstance(value, (int, np.integer)):
        return b"I" + _I64.pack(int(value))
    if isinstance(value, (float, np.floating)):
        return b"D" + _F64.pack(float(value))
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + _U32.pack(len(raw)) + raw
    if isinstance(value, (bytes, bytearray)):
        return b"B" + _U32.pack(len(value)) + bytes(value)
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise TypeError("object-dtype ndarrays are not wire-encodable")
        # (ascontiguousarray would promote 0-d arrays to 1-d)
        data = (value if value.flags["C_CONTIGUOUS"]
                else np.ascontiguousarray(value))
        dtype = data.dtype.str.encode("ascii")
        out = [b"N", _U16.pack(len(dtype)), dtype, _U16.pack(data.ndim)]
        for dim in data.shape:
            out.append(_U32.pack(dim))
        out.append(data.tobytes())
        return b"".join(out)
    if isinstance(value, (list, tuple)):
        out = [b"L", _U32.pack(len(value))]
        out.extend(encode_value(item) for item in value)
        return b"".join(out)
    if isinstance(value, dict):
        out = [b"M", _U32.pack(len(value))]
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"payload dict keys must be str, got {key!r}")
            out.append(encode_value(key))
            out.append(encode_value(item))
        return b"".join(out)
    raise TypeError(f"value of type {type(value).__name__} is not wire-encodable")


class _Cursor:
    """Bounds-checked reader over one payload buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise ProtocolError(
                f"payload truncated: wanted {count} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} remain"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


def _decode(cur: _Cursor) -> Any:
    tag = cur.take(1)
    if tag == b"Z":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        return _I64.unpack(cur.take(8))[0]
    if tag == b"D":
        return _F64.unpack(cur.take(8))[0]
    if tag == b"S":
        (length,) = _U32.unpack(cur.take(4))
        try:
            return cur.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid utf-8 in string payload: {exc}") from exc
    if tag == b"B":
        (length,) = _U32.unpack(cur.take(4))
        return cur.take(length)
    if tag == b"N":
        (dtype_len,) = _U16.unpack(cur.take(2))
        try:
            dtype = np.dtype(cur.take(dtype_len).decode("ascii"))
        except (TypeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"invalid ndarray dtype: {exc}") from exc
        if dtype.hasobject:
            raise ProtocolError("object-dtype ndarrays are not wire-decodable")
        (ndim,) = _U16.unpack(cur.take(2))
        shape = tuple(_U32.unpack(cur.take(4))[0] for _ in range(ndim))
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        raw = cur.take(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == b"L":
        (length,) = _U32.unpack(cur.take(4))
        return [_decode(cur) for _ in range(length)]
    if tag == b"M":
        (length,) = _U32.unpack(cur.take(4))
        out: Dict[str, Any] = {}
        for _ in range(length):
            key = _decode(cur)
            if not isinstance(key, str):
                raise ProtocolError(f"payload dict key is not a string: {key!r}")
            out[key] = _decode(cur)
        return out
    raise ProtocolError(f"unknown payload tag {tag!r} at offset {cur.pos - 1}")


def decode_value(data: bytes) -> Any:
    """Decode one payload buffer, requiring every byte to be consumed."""
    cur = _Cursor(data)
    value = _decode(cur)
    if not cur.exhausted:
        raise ProtocolError(
            f"payload has {len(data) - cur.pos} trailing bytes "
            "(wrong payload size for its content)"
        )
    return value


# -- framing -------------------------------------------------------------------


def encode_frame(ftype: FrameType, payload: Any) -> bytes:
    """Serialize one frame (header + encoded payload)."""
    body = encode_value(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame cap"
        )
    return _HEADER.pack(MAGIC, VERSION, int(ftype), len(body)) + body


class FrameReader:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Feed it whatever ``recv`` returns; it yields ``(FrameType, payload)``
    pairs as frames complete and raises :class:`ProtocolError` the
    moment the stream is provably corrupt.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[FrameType, Any]]:
        """Absorb ``data``; return every frame it completed."""
        self._buffer.extend(data)
        frames: List[Tuple[FrameType, Any]] = []
        while True:
            frame = self._try_parse_one()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_parse_one(self) -> Optional[Tuple[FrameType, Any]]:
        if len(self._buffer) < _HEADER.size:
            return None
        magic, version, type_byte, length = _HEADER.unpack_from(self._buffer)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
        if version != VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} (speaking {VERSION})"
            )
        try:
            ftype = FrameType(type_byte)
        except ValueError:
            raise ProtocolError(f"unknown frame type {type_byte}") from None
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        payload = decode_value(bytes(self._buffer[_HEADER.size:end]))
        del self._buffer[:end]
        return ftype, payload


# -- message helpers -----------------------------------------------------------
#
# Thin builders/parsers over dict payloads, so client and server agree on
# field names in exactly one place.  Parsers validate shape and raise
# ProtocolError - a well-framed message with the wrong fields is as
# malformed as a truncated one.


def _require(payload: Any, *fields: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"expected a mapping payload, got {type(payload).__name__}"
        )
    for name in fields:
        if name not in payload:
            raise ProtocolError(f"payload is missing required field {name!r}")
    return payload


def hello_frame(name: str, role: str) -> bytes:
    return encode_frame(
        FrameType.HELLO, {"name": name, "role": role, "version": VERSION}
    )


def parse_hello(payload: Any) -> Dict[str, Any]:
    msg = _require(payload, "name", "role", "version")
    if msg["version"] != VERSION:
        raise ProtocolError(
            f"peer speaks protocol version {msg['version']}, not {VERSION}"
        )
    return msg


def load_frame(indices) -> bytes:
    return encode_frame(FrameType.LOAD, {"indices": [int(i) for i in indices]})


def parse_load(payload: Any) -> List[int]:
    msg = _require(payload, "indices")
    if not isinstance(msg["indices"], list):
        raise ProtocolError("LOAD indices must be a list")
    return [int(i) for i in msg["indices"]]


def issue_frame(query: Query) -> bytes:
    return encode_frame(FrameType.ISSUE, {
        "query_id": query.id,
        "samples": [[s.id, s.index] for s in query.samples],
    })


def parse_issue(payload: Any) -> Tuple[int, List[QuerySample]]:
    msg = _require(payload, "query_id", "samples")
    raw = msg["samples"]
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("ISSUE must carry a non-empty sample list")
    samples = []
    for entry in raw:
        if not isinstance(entry, list) or len(entry) != 2:
            raise ProtocolError(f"malformed ISSUE sample entry {entry!r}")
        samples.append(QuerySample(id=int(entry[0]), index=int(entry[1])))
    return int(msg["query_id"]), samples


def complete_frame(
    query_id: int,
    responses: List[QuerySampleResponse],
    server_recv: float,
    server_send: float,
) -> bytes:
    return encode_frame(FrameType.COMPLETE, {
        "query_id": query_id,
        "responses": [[r.sample_id, r.data] for r in responses],
        "server_recv": server_recv,
        "server_send": server_send,
    })


def parse_complete(payload: Any) -> Tuple[int, List[QuerySampleResponse], float, float]:
    msg = _require(payload, "query_id", "responses", "server_recv", "server_send")
    raw = msg["responses"]
    if not isinstance(raw, list):
        raise ProtocolError("COMPLETE responses must be a list")
    responses = []
    for entry in raw:
        if not isinstance(entry, list) or len(entry) != 2:
            raise ProtocolError(f"malformed COMPLETE response entry {entry!r}")
        responses.append(QuerySampleResponse(int(entry[0]), entry[1]))
    return (
        int(msg["query_id"]),
        responses,
        float(msg["server_recv"]),
        float(msg["server_send"]),
    )


def chunk_frame(
    query_id: int,
    seq: int,
    token_count: int,
    last: bool,
    data: Any = None,
) -> bytes:
    return encode_frame(FrameType.CHUNK, {
        "query_id": query_id,
        "seq": seq,
        "tokens": token_count,
        "last": bool(last),
        "data": data,
    })


def parse_chunk(payload: Any) -> StreamChunk:
    msg = _require(payload, "query_id", "seq", "tokens", "last")
    seq = int(msg["seq"])
    tokens = int(msg["tokens"])
    if seq < 0:
        raise ProtocolError(f"CHUNK seq must be >= 0, got {seq}")
    if tokens < 0:
        raise ProtocolError(f"CHUNK tokens must be >= 0, got {tokens}")
    return StreamChunk(
        query_id=int(msg["query_id"]),
        seq=seq,
        token_count=tokens,
        last=bool(msg["last"]),
        data=msg.get("data"),
    )


def fail_frame(query_id: int, reason: str) -> bytes:
    return encode_frame(
        FrameType.FAIL, {"query_id": query_id, "reason": str(reason)}
    )


def parse_fail(payload: Any) -> Tuple[int, str]:
    msg = _require(payload, "query_id", "reason")
    return int(msg["query_id"]), str(msg["reason"])


def drain_frame() -> bytes:
    return encode_frame(FrameType.DRAIN, {})


def stats_frame(stats: Dict[str, Any]) -> bytes:
    return encode_frame(FrameType.STATS, stats)
