"""LoadGen-over-network: the benchmark's Network division.

The paper's SUT boundary (Fig. 3) is an in-process API; this package
moves it onto a wire without touching the LoadGen.  Three layers:

* :mod:`~repro.network.protocol` - the versioned, length-prefixed binary
  wire contract (framing, payload codec, strict malformed-input
  detection).
* :mod:`~repro.network.server` - :class:`InferenceServer`, a TCP server
  hosting any existing SUT behind a bounded admission queue, edge
  batching, and a worker pool.
* :mod:`~repro.network.client` - :class:`NetworkSUT`, the SUT adapter
  the unmodified LoadGen drives, with deadlines, retries, and
  reconnection.

Plus :mod:`~repro.network.simulated` - a virtual-time stand-in channel
(:class:`SimulatedChannelSUT`) for deterministic network-sensitivity
experiments.
"""

from .client import NetworkStats, NetworkSUT, parse_address
from .protocol import VERSION, FrameReader, FrameType, ProtocolError
from .server import (
    InferenceServer,
    ServerConfig,
    ServerStartupError,
    ServerStats,
)
from .simulated import ChannelModel, ChannelStats, SimulatedChannelSUT

__all__ = [
    "VERSION",
    "ChannelModel",
    "ChannelStats",
    "FrameReader",
    "FrameType",
    "InferenceServer",
    "NetworkStats",
    "NetworkSUT",
    "ProtocolError",
    "ServerConfig",
    "ServerStartupError",
    "ServerStats",
    "SimulatedChannelSUT",
    "parse_address",
]
