"""``NetworkSUT``: the LoadGen-side adapter onto a remote server.

The Network division's defining property is that the *unmodified*
LoadGen measures a SUT that lives across a wire.  ``NetworkSUT``
implements the ordinary :class:`~repro.core.sut.SutBase` contract, so
every scenario driver, referee rule, and validity check applies
unchanged; everything network-specific stays inside this adapter:

* a small **connection pool**, queries issued round-robin across it;
* **per-attempt deadlines** and bounded retries, re-sending under the
  *same* query id so a straggling first answer and a retried second one
  are de-duplicated by the shared
  :class:`~repro.faults.filtering.CompletionFilter` - the exact hygiene
  logic the in-process retry wrapper uses;
* **reconnect with backoff** when a connection drops, with the in-flight
  queries on it retried over surviving connections or reported through
  the failed-query machinery (never a hang);
* **transport timestamps** (client send/receive, server receive/send)
  kept per query for the trace exporter's network spans.

Threading model: socket reader threads never touch SUT state - they hand
frames to the run loop via :meth:`~repro.core.events.EventLoop.post`,
so all bookkeeping happens on the loop thread exactly as in an
in-process SUT.  The adapter therefore requires a realtime loop (real
sockets do not speak virtual time; for deterministic experiments use
:mod:`repro.network.simulated`).
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, QuerySampleResponse, StreamChunk
from ..core.sut import Responder, SutBase
from ..core.trace import TransportTiming
from ..faults.filtering import CompletionFilter, malformed_reason
from . import protocol
from .protocol import FrameReader, FrameType, ProtocolError

_RECV_CHUNK = 64 * 1024
_POLL = 0.2


def parse_address(address: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """Accept ``(host, port)`` or ``"host:port"``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {address!r}")
    return host, int(port)


@dataclass
class NetworkStats:
    """What the adapter observed during one run."""

    queries_sent: int = 0
    retries: int = 0
    recovered_queries: int = 0
    gave_up_queries: int = 0
    #: Duplicates and post-resolution stragglers swallowed.
    filtered_completions: int = 0
    #: CHUNK frames forwarded to the referee.
    chunks_received: int = 0
    #: Stale, duplicate, or out-of-sequence CHUNK frames dropped.
    filtered_chunks: int = 0
    #: FAIL frames received from the server.
    server_failures: int = 0
    malformed_completions: int = 0
    protocol_errors: int = 0
    connections_lost: int = 0
    reconnects: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def summary(self) -> str:
        return (
            f"sent={self.queries_sent} retries={self.retries} "
            f"recovered={self.recovered_queries} "
            f"gave_up={self.gave_up_queries} "
            f"lost_conns={self.connections_lost} "
            f"reconnects={self.reconnects}"
        )


class _Connection:
    """One pooled TCP connection plus its reader thread."""

    _ids = itertools.count(1)

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.id = next(self._ids)
        self.alive = True
        self.reader: Optional[threading.Thread] = None
        self._send_lock = threading.Lock()

    def send(self, frame: bytes) -> bool:
        with self._send_lock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(frame)
                return True
            except OSError:
                self.alive = False
                return False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


@dataclass
class _Pending:
    """Loop-thread state for one in-flight query."""

    query: Query
    connection: _Connection
    send_time: float
    attempt: int = 0
    timer: Optional[EventHandle] = None


class NetworkSUT(SutBase):
    """Drive a remote :class:`~repro.network.server.InferenceServer`.

    ``address`` is ``(host, port)`` or ``"host:port"``.  The pool is
    opened (and HELLO-exchanged) in :meth:`start_run`, which is untimed -
    connection setup never counts against a query's latency, mirroring
    the untimed LOAD steps of Fig. 3.
    """

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        connections: int = 1,
        query_timeout: float = 2.0,
        max_attempts: int = 2,
        reconnect_backoff: float = 0.05,
        name: Optional[str] = None,
    ) -> None:
        host, port = parse_address(address)
        super().__init__(name or f"network[{host}:{port}]")
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        if query_timeout <= 0:
            raise ValueError(
                f"query_timeout must be positive, got {query_timeout}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.address = (host, port)
        self.pool_size = connections
        self.query_timeout = query_timeout
        self.max_attempts = max_attempts
        self.reconnect_backoff = reconnect_backoff
        self.stats = NetworkStats()
        #: Per-query wire timestamps, keyed by query id (for tracing).
        self.transport_records: Dict[int, TransportTiming] = {}
        #: The server's final STATS payload, captured by :meth:`close`.
        self.server_stats: Optional[Dict[str, object]] = None
        self._filter = CompletionFilter()
        self._pool: List[_Connection] = []
        self._rr = 0
        self._closed = False
        self._stats_event = threading.Event()
        self._hello: Optional[Dict[str, object]] = None

    # -- lifecycle --------------------------------------------------------------

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        if not loop.realtime:
            raise ValueError(
                "NetworkSUT needs a realtime event loop: real sockets "
                "cannot be driven by a virtual clock (use "
                "repro.network.simulated for deterministic runs)"
            )
        super().start_run(loop, responder)
        self.stats = NetworkStats()
        self.transport_records = {}
        self._filter = CompletionFilter()
        self._closed = False
        self._pool = [self._connect() for _ in range(self.pool_size)]
        for conn in self._pool:
            self._start_reader(conn)

    def load_samples(self, indices) -> None:
        """Forward an untimed preload to the server (LOAD frame)."""
        conn = self._pick_connection()
        if conn is not None:
            self._send(conn, protocol.load_frame(indices))

    def close(self, timeout: float = 2.0) -> None:
        """Gracefully drain the session and tear the pool down."""
        if self._closed:
            return
        self._closed = True
        live = [c for c in self._pool if c.alive]
        if live:
            self._stats_event.clear()
            if self._send(live[0], protocol.drain_frame()):
                self._stats_event.wait(timeout)
        for conn in self._pool:
            conn.close()
        for conn in self._pool:
            if conn.reader is not None:
                conn.reader.join(timeout=timeout)
        self._pool = []

    def __enter__(self) -> "NetworkSUT":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- SUT contract -----------------------------------------------------------

    def issue_query(self, query: Query) -> None:
        conn = self._pick_connection()
        if conn is None:
            self.stats.gave_up_queries += 1
            self.fail(query, "no live connection to server")
            return
        state = self._filter.admit(
            query,
            _Pending(query=query, connection=conn, send_time=self.loop.now),
        )
        self._send_attempt(state)

    def flush(self) -> None:
        """Nothing is client-buffered; frames go out as queries arrive."""

    # -- issue path (loop thread) -----------------------------------------------

    def _send_attempt(self, state: _Pending) -> None:
        state.timer = self.loop.schedule_after(
            self.query_timeout, lambda: self._deadline(state)
        )
        self.stats.queries_sent += 1
        if not self._send(state.connection, protocol.issue_frame(state.query)):
            # The write itself failed: this connection is gone.
            self._connection_lost(state.connection)

    def _deadline(self, state: _Pending) -> None:
        if self._filter.get(state.query.id) is not state:
            return
        self._attempt_lost(
            state,
            f"no response within {self.query_timeout}s deadline",
        )

    def _attempt_lost(self, state: _Pending, reason: str) -> None:
        """This attempt is dead; retry on a live connection or give up."""
        qid = state.query.id
        if self._filter.get(qid) is not state:
            return
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        conn = self._pick_connection()
        if state.attempt + 1 < self.max_attempts and conn is not None:
            state.attempt += 1
            state.connection = conn
            self.stats.retries += 1
            # The retried attempt streams from seq 0; forget the dead
            # attempt's chunk progress so its restart screens clean.
            self._filter.restart_stream(qid)
            self._send_attempt(state)
            return
        self._filter.resolve(qid)
        self.stats.gave_up_queries += 1
        self.fail(
            state.query,
            f"{reason} (after {state.attempt + 1} attempt(s))",
        )

    def _pick_connection(self) -> Optional[_Connection]:
        live = [c for c in self._pool if c.alive]
        if not live:
            return None
        self._rr += 1
        return live[self._rr % len(live)]

    def _send(self, conn: _Connection, frame: bytes) -> bool:
        if conn.send(frame):
            self.stats.bytes_sent += len(frame)
            return True
        return False

    # -- completion path --------------------------------------------------------

    def _on_complete(
        self,
        query_id: int,
        responses: List[QuerySampleResponse],
        server_recv: float,
        server_send: float,
        recv_time: float,
    ) -> None:
        state = self._filter.get(query_id)
        if state is None:
            # Duplicate or post-resolution straggler (e.g. the first
            # attempt answering after a retry already completed).
            self.stats.filtered_completions += 1
            return
        flaw = malformed_reason(state.query, responses)
        if flaw is not None:
            self.stats.malformed_completions += 1
            self._attempt_lost(state, f"malformed completion: {flaw}")
            return
        if state.timer is not None:
            state.timer.cancel()
        self._filter.resolve(query_id)
        if state.attempt > 0:
            self.stats.recovered_queries += 1
        self.transport_records[query_id] = TransportTiming(
            send_time=state.send_time,
            recv_time=recv_time,
            server_recv=server_recv,
            server_send=server_send,
        )
        self.complete(state.query, responses)

    def _on_chunk(self, chunk: StreamChunk) -> None:
        """Loop thread: screen one CHUNK frame and forward it upward.

        A clean chunk is progress, so it re-arms the per-attempt
        deadline - a server mid-stream is not a server that timed out.
        Flawed chunks (stragglers from a superseded attempt, duplicates,
        out-of-sequence arrivals) are dropped, never retried: the
        terminal COMPLETE still carries the authoritative answer.
        """
        state = self._filter.get(chunk.query_id)
        if state is None:
            self.stats.filtered_chunks += 1
            return
        screened = self._filter.screen_chunk(state.query, chunk)
        if screened.stale or screened.flaw is not None:
            self.stats.filtered_chunks += 1
            return
        if state.timer is not None:
            state.timer.cancel()
        state.timer = self.loop.schedule_after(
            self.query_timeout, lambda: self._deadline(state)
        )
        self.stats.chunks_received += 1
        self.emit_chunk(state.query, chunk)

    def _on_fail(self, query_id: int, reason: str) -> None:
        state = self._filter.get(query_id)
        if state is None:
            self.stats.filtered_completions += 1
            return
        self.stats.server_failures += 1
        self._attempt_lost(state, f"server failed the query: {reason}")

    def _connection_lost(self, conn: _Connection) -> None:
        """Runs on the loop thread once ``conn`` is known dead."""
        if not conn.alive and conn not in self._pool:
            return  # already handled
        conn.close()
        if conn in self._pool:
            self._pool.remove(conn)
        self.stats.connections_lost += 1
        # Every in-flight query that went out on this connection lost its
        # attempt; retry elsewhere or surface a recorded failure.
        for state in list(self._filter.states()):
            if state.connection is conn:
                self._attempt_lost(state, "connection to server lost")
        if not self._closed:
            threading.Thread(
                target=self._reconnect_loop,
                name=f"{self.name}-reconnect",
                daemon=True,
            ).start()

    def _reconnect_loop(self) -> None:
        """Background: restore the pool to size, with capped backoff."""
        backoff = self.reconnect_backoff
        while not self._closed and len(self._pool) < self.pool_size:
            time.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
            try:
                conn = self._connect()
            except OSError:
                continue
            self._start_reader(conn)

            def _register(c=conn):
                if self._closed:
                    c.close()
                    return
                self._pool.append(c)
                self.stats.reconnects += 1

            self.loop.post(_register)
            return

    # -- connection plumbing ----------------------------------------------------

    def _connect(self) -> _Connection:
        sock = socket.create_connection(self.address, timeout=5.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(sock)
        hello = protocol.hello_frame(self.name, "loadgen")
        sock.sendall(hello)
        self.stats.bytes_sent += len(hello)
        # Blocking HELLO exchange: read until the server's greeting.
        reader = FrameReader()
        frames: List = []
        while not frames:
            data = sock.recv(_RECV_CHUNK)
            if not data:
                raise ConnectionError("server closed during HELLO exchange")
            self.stats.bytes_received += len(data)
            frames = reader.feed(data)
        ftype, payload = frames[0]
        if ftype is not FrameType.HELLO:
            raise ProtocolError(f"expected HELLO, got {ftype.name}")
        self._hello = protocol.parse_hello(payload)
        conn._leftover = frames[1:]
        sock.settimeout(_POLL)
        return conn

    def _start_reader(self, conn: _Connection) -> None:
        conn.reader = threading.Thread(
            target=lambda: self._reader_loop(conn),
            name=f"{self.name}-reader-{conn.id}",
            daemon=True,
        )
        conn.reader.start()

    def _reader_loop(self, conn: _Connection) -> None:
        reader = FrameReader()
        for frame in getattr(conn, "_leftover", []):
            self._dispatch_frame(conn, *frame)
        try:
            while conn.alive and not self._closed:
                try:
                    data = conn.sock.recv(_RECV_CHUNK)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break
                self.stats.bytes_received += len(data)
                for ftype, payload in reader.feed(data):
                    self._dispatch_frame(conn, ftype, payload)
        except ProtocolError:
            # Corrupt stream from the server: poison this connection.
            self.stats.protocol_errors += 1
        finally:
            was_alive = conn.alive
            conn.alive = False
            if not self._closed and was_alive:
                self.loop.post(lambda: self._connection_lost(conn))

    def _dispatch_frame(self, conn: _Connection, ftype: FrameType, payload) -> None:
        """Reader thread: decode and hand off to the loop thread."""
        if ftype is FrameType.COMPLETE:
            query_id, responses, s_recv, s_send = protocol.parse_complete(payload)
            recv_time = time.monotonic()
            self.loop.post(
                lambda: self._on_complete(
                    query_id, responses, s_recv, s_send, recv_time
                )
            )
        elif ftype is FrameType.CHUNK:
            chunk = protocol.parse_chunk(payload)
            self.loop.post(lambda: self._on_chunk(chunk))
        elif ftype is FrameType.FAIL:
            query_id, reason = protocol.parse_fail(payload)
            self.loop.post(lambda: self._on_fail(query_id, reason))
        elif ftype is FrameType.STATS:
            # Replies to LOAD and DRAIN; handled off-loop because close()
            # waits for the drain reply after the loop has finished.
            if isinstance(payload, dict) and payload.get("drained"):
                self.server_stats = payload
                self._stats_event.set()
        elif ftype is FrameType.HELLO:
            pass  # late duplicate greeting: harmless
        else:
            raise ProtocolError(
                f"server may not send {ftype.name} frames"
            )
