"""A TCP inference server hosting any SUT behind the wire protocol.

:class:`InferenceServer` is the submitter side of the Network division:
it owns the listening socket, a bounded admission queue, an edge
batcher, and a worker pool that drives the hosted backend.  The request
path is::

    reader thread --> admission queue --> batcher --> worker pool
    (per session)     (bounded; full =     (merges     (runs backend,
                       immediate FAIL)      requests)    replies)

Design points:

* **Bounded admission.**  A server under overload must shed load, not
  buffer without limit: an ISSUE that finds the queue full is answered
  with an immediate FAIL frame, which the client surfaces through the
  LoadGen's failed-query machinery.
* **Dynamic batching at the edge.**  The batcher merges whole requests
  (never splitting one) up to ``max_batch`` samples, waiting at most
  ``batch_window`` seconds for stragglers - the same latency/throughput
  trade the paper's server scenario exists to measure, now applied at
  the serving boundary.
* **Per-connection sessions.**  Each connection speaks HELLO first, can
  preload samples (LOAD), issue queries, ask for STATS, and end with a
  graceful DRAIN that flushes its in-flight queries before the final
  STATS reply.
* **Misbehavior containment.**  A protocol violation poisons only its
  own connection: the session is closed, a counter is bumped, and every
  other session keeps serving.  A backend that answers with the wrong
  sample ids produces FAIL frames, not a crashed server.

The hosted backend is any :class:`~repro.core.sut.SystemUnderTest`; a
per-worker :class:`_BackendRunner` drives it to completion on a private
realtime event loop, so backends written for the virtual-time LoadGen
(completion scheduled ``service_time`` in the future) serve real traffic
with that service time realised as wall-clock sleep.
"""

from __future__ import annotations

import collections
import errno
import itertools
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from ..core.events import EventLoop, WallClock
from ..core.query import (
    Query, QueryFailure, QuerySample, QuerySampleResponse, StreamChunk,
)
from ..core.sut import QuerySampleLibrary, SystemUnderTest
from ..metrics import MetricsRegistry
from . import protocol
from .protocol import FrameReader, FrameType, ProtocolError

_RECV_CHUNK = 64 * 1024
_POLL = 0.2


@dataclass(frozen=True)
class ServerConfig:
    """Deployment knobs for one :class:`InferenceServer`."""

    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound address is ``server.address``).
    port: int = 0
    #: Worker threads driving the backend.  More than one requires a
    #: backend *factory* (each worker gets its own instance); a single
    #: shared instance is serialized behind one runner.
    workers: int = 2
    #: Admission-queue bound, in requests; beyond it ISSUEs are FAILed.
    max_queue: int = 256
    #: Edge-batching cap, in samples.
    max_batch: int = 8
    #: How long the batcher holds a non-full batch open, seconds.
    batch_window: float = 0.0
    #: Extra bind attempts after a transient port-in-use failure (a
    #: previous server instance still in TIME_WAIT, a slow releaser).
    #: Non-transient failures (permission, bad address) never retry.
    bind_retries: int = 3
    #: Backoff before bind retry ``n``: ``bind_backoff * 2**n`` seconds.
    bind_backoff: float = 0.05
    name: str = "inference-server"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.bind_retries < 0:
            raise ValueError(
                f"bind_retries must be >= 0, got {self.bind_retries}"
            )
        if self.bind_backoff < 0:
            raise ValueError(
                f"bind_backoff must be >= 0, got {self.bind_backoff}"
            )


class ServerStartupError(RuntimeError):
    """The server could not come up, with a classified ``reason``.

    ``reason`` is one of ``"port-in-use"`` (transient; retried up to
    ``bind_retries`` times before this is raised), ``"permission-denied"``
    (privileged port, no capability), ``"bad-address"`` (the host is not
    local), or ``"bind-failed"`` (anything else) - callers branch on the
    class of failure instead of parsing ``OSError`` strings.
    """

    def __init__(self, reason: str, host: str, port: int,
                 cause: OSError) -> None:
        super().__init__(
            f"cannot start server on {host}:{port} ({reason}): {cause}")
        self.reason = reason
        self.host = host
        self.port = port
        self.cause = cause


def _classify_bind_error(error: OSError) -> str:
    """Map a bind-time ``OSError`` to a :class:`ServerStartupError` reason."""
    if error.errno == errno.EADDRINUSE:
        return "port-in-use"
    if error.errno in (errno.EACCES, errno.EPERM):
        return "permission-denied"
    if error.errno == errno.EADDRNOTAVAIL:
        return "bad-address"
    return "bind-failed"


@dataclass
class ServerStats:
    """Counters one server accumulates across its lifetime."""

    connections: int = 0
    queries_received: int = 0
    completed: int = 0
    failed: int = 0
    #: Stream chunks forwarded to clients ahead of their COMPLETE.
    chunks: int = 0
    #: ISSUEs shed because the admission queue was full.
    rejected: int = 0
    protocol_errors: int = 0
    batches: int = 0
    batched_samples: int = 0
    queue_high_water: int = 0
    loads: int = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "connections": self.connections,
            "queries_received": self.queries_received,
            "completed": self.completed,
            "failed": self.failed,
            "chunks": self.chunks,
            "rejected": self.rejected,
            "protocol_errors": self.protocol_errors,
            "batches": self.batches,
            "batched_samples": self.batched_samples,
            "queue_high_water": self.queue_high_water,
            "loads": self.loads,
        }


class _ServerInstruments:
    """The server's live telemetry (see ``docs/observability.md``).

    Counters are bumped inside the same critical sections that already
    guard :class:`ServerStats` (or from a single owning thread), so they
    need no locking of their own.  Queue depth and active sessions are
    callback gauges pulled from live state at collection time; worker
    business is a per-slot flag array summed by a callback, so worker
    threads never contend on a shared gauge.
    """

    def __init__(self, registry: MetricsRegistry,
                 server: "InferenceServer") -> None:
        self.connections = registry.counter(
            "server_connections_total", "Connections accepted")
        self.received = registry.counter(
            "server_queries_received_total", "ISSUE frames received")
        self.completed = registry.counter(
            "server_queries_completed_total", "Queries answered COMPLETE")
        self.failed = registry.counter(
            "server_queries_failed_total", "Queries answered FAIL")
        self.chunks = registry.counter(
            "server_stream_chunks_total",
            "Stream chunks forwarded ahead of COMPLETE")
        self.rejected = registry.counter(
            "server_queries_rejected_total",
            "ISSUEs shed because the admission queue was full")
        self.protocol_errors = registry.counter(
            "server_protocol_errors_total",
            "Connections poisoned by a protocol violation")
        self.batches = registry.counter(
            "server_batches_total", "Batches dispatched to workers")
        self.batch_size = registry.histogram(
            "server_batch_size_samples",
            "Samples merged into each dispatched batch",
            base=1.0, growth=2.0 ** 0.25, buckets=72)
        self.queue_wait = registry.histogram(
            "server_queue_wait_seconds",
            "Admission-to-dispatch wait of each batched request")
        self.worker_busy = registry.counter(
            "server_worker_busy_seconds_total",
            "Wall seconds each worker spent executing batches",
            labels=("worker",))
        self._busy_flags = [False] * server.config.workers
        registry.gauge(
            "server_queue_depth",
            "Requests waiting in the admission queue",
            fn=lambda: server._queue.depth)
        registry.gauge(
            "server_sessions_active", "Currently connected sessions",
            fn=lambda: len(server._sessions))
        registry.gauge(
            "server_workers_busy", "Workers currently executing a batch",
            fn=lambda: sum(self._busy_flags))

    def worker_busy_child(self, index: int):
        """Pre-resolved busy-seconds counter for worker ``index``."""
        return self.worker_busy.labels(worker=index)

    def set_busy(self, index: int, busy: bool) -> None:
        self._busy_flags[index] = busy


class _BackendRunner:
    """Drives one hosted SUT synchronously on a private realtime loop.

    Backends complete by scheduling events ``service_time`` in the
    future; running the private loop realises that as real elapsed time,
    which is exactly what a network client should observe.
    """

    def __init__(self, sut: SystemUnderTest) -> None:
        self.sut = sut
        self.loop = EventLoop(WallClock())
        self._result: Optional[Tuple[Query, object]] = None
        self._on_chunk: Optional[Callable[[StreamChunk], None]] = None
        self._lock = threading.Lock()
        self.sut.start_run(self.loop, self._capture)

    def _capture(self, query: Query, responses) -> None:
        # Chunks are progress, not the answer: hand them to the caller's
        # sink (if it asked for one) and keep waiting for the terminal
        # completion.
        if isinstance(responses, StreamChunk):
            if self._on_chunk is not None:
                self._on_chunk(responses)
            return
        # Keep the first terminal answer; duplicates from a misbehaving
        # backend are dropped here rather than forwarded over the wire.
        if self._result is None:
            self._result = (query, responses)

    def run(self, query: Query,
            on_chunk: Optional[Callable[[StreamChunk], None]] = None):
        """Execute ``query``; returns a response list or QueryFailure.

        ``on_chunk`` (optional) receives each :class:`StreamChunk` the
        backend emits while the query runs, before the terminal answer
        is returned.
        """
        with self._lock:
            self._result = None
            self._on_chunk = on_chunk
            try:
                self.sut.issue_query(query)
                self.sut.flush()
                self.loop.run()
            finally:
                self._on_chunk = None
            if self._result is None:
                return QueryFailure("backend produced no completion")
            answered, responses = self._result
            if answered.id != query.id:
                return QueryFailure(
                    f"backend answered query {answered.id} "
                    f"instead of {query.id}"
                )
            return responses


@dataclass
class _PendingRequest:
    """One admitted ISSUE, waiting for dispatch."""

    session: "_Session"
    query_id: int
    samples: List[QuerySample]
    recv_time: float

    @property
    def sample_count(self) -> int:
        return len(self.samples)


class _RequestQueue:
    """Bounded FIFO with batch-assembling consumption."""

    def __init__(self, max_queue: int) -> None:
        self._items: Deque[_PendingRequest] = collections.deque()
        self._max = max_queue
        self._cond = threading.Condition()
        self._closed = False
        self.high_water = 0

    def offer(self, request: _PendingRequest) -> bool:
        """Admit ``request`` unless the queue is full or closed."""
        with self._cond:
            if self._closed or len(self._items) >= self._max:
                return False
            self._items.append(request)
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify()
            return True

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    def take_batch(
        self, max_samples: int, window: float
    ) -> Optional[List[_PendingRequest]]:
        """Block for the next batch; ``None`` once closed and drained.

        Requests are merged whole, FIFO, up to ``max_samples``; an
        oversized request ships alone.  With a window, the batch is held
        open up to ``window`` seconds hoping to fill.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                self._cond.wait(_POLL)
            batch = [self._items.popleft()]
            count = batch[0].sample_count
            deadline = time.monotonic() + window
            while count < max_samples:
                if self._items:
                    nxt = self._items[0]
                    if count + nxt.sample_count > max_samples:
                        break
                    batch.append(self._items.popleft())
                    count += nxt.sample_count
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._cond.wait(remaining)
            return batch


class _Session:
    """Per-connection state: the socket, a send lock, drain tracking."""

    _ids = itertools.count(1)

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.id = next(self._ids)
        self.alive = True
        self.draining = False
        self.greeted = False
        self.inflight = 0
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()

    def send(self, frame: bytes) -> bool:
        """Write one frame; returns False (and dies) on a broken pipe."""
        with self._send_lock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(frame)
                return True
            except OSError:
                self.alive = False
                return False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class InferenceServer:
    """Serve a hosted backend over TCP to remote LoadGens.

    ``backend`` is either a ready :class:`SystemUnderTest` (served by a
    single serialized runner) or a zero-argument factory producing one
    instance per worker thread.  ``qsl`` (optional) answers LOAD frames;
    backends normally hold their own sample source and fetch by index.
    """

    def __init__(
        self,
        backend: Union[SystemUnderTest, Callable[[], SystemUnderTest]],
        config: Optional[ServerConfig] = None,
        qsl: Optional[QuerySampleLibrary] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.qsl = qsl
        self.stats = ServerStats()
        self._stats_lock = threading.Lock()
        # A class or other callable is a factory (note a SUT *class*
        # itself passes the runtime Protocol isinstance check, so test
        # for type-ness first); only a ready instance is shared.
        if isinstance(backend, type) or not isinstance(backend, SystemUnderTest):
            self._runners = [
                _BackendRunner(backend()) for _ in range(self.config.workers)
            ]
        else:
            # One shared instance: every worker funnels through the one
            # runner (its lock serializes dispatches).
            self._runners = [_BackendRunner(backend)] * self.config.workers
        self._queue = _RequestQueue(self.config.max_queue)
        self._dispatch: "collections.deque[Optional[List[_PendingRequest]]]" = (
            collections.deque()
        )
        self._dispatch_cond = threading.Condition()
        self._sample_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._sessions: List[_Session] = []
        self._sessions_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        # Guards _threads *and* the running flag transitions: the accept
        # loop spawns session threads concurrently with stop() joining
        # them, so membership changes and the stop decision must be
        # atomic with respect to each other.
        self._threads_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._running = False
        #: Graceful-drain mode: new ISSUE frames are refused with a
        #: classified reason while in-flight work keeps flowing.
        self._draining = False
        self.address: Optional[Tuple[str, int]] = None
        #: Live telemetry, when a registry was provided (``repro serve``
        #: and ``netbench.run_over_localhost`` wire one through).
        self._m = (
            _ServerInstruments(registry, self) if registry is not None
            else None
        )

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spin up the serving threads.

        Transient bind failures (port-in-use, typically a predecessor
        in TIME_WAIT) are retried ``config.bind_retries`` times with
        exponential backoff; everything else - and retry exhaustion -
        surfaces as a classified :class:`ServerStartupError` rather
        than a raw ``OSError``.
        """
        if self._running:
            raise RuntimeError("server already running")
        listener = self._bind_listener()
        listener.listen(32)
        listener.settimeout(_POLL)
        self._listener = listener
        self.address = listener.getsockname()
        self._running = True
        self._draining = False
        self._spawn(self._accept_loop, "accept")
        self._spawn(self._batch_loop, "batcher")
        for index in range(self.config.workers):
            self._spawn(lambda i=index: self._worker_loop(i), f"worker-{index}")
        return self.address

    def _bind_listener(self) -> socket.socket:
        host, port = self.config.host, self.config.port
        attempt = 0
        while True:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((host, port))
                return listener
            except OSError as error:
                listener.close()
                reason = _classify_bind_error(error)
                if (reason != "port-in-use"
                        or attempt >= self.config.bind_retries):
                    raise ServerStartupError(
                        reason, host, port, error) from error
                time.sleep(self.config.bind_backoff * (2 ** attempt))
                attempt += 1

    def __enter__(self) -> "InferenceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def begin_drain(self) -> None:
        """Enter graceful drain: stop accepting work, keep completing.

        New ISSUE frames are refused with ``"server is draining"``;
        everything already admitted flows through the batcher and the
        workers as usual.  Call :meth:`drain` to also wait for the
        in-flight work, then :meth:`stop` to tear down.
        """
        self._draining = True

    def drain(self, timeout: float = 10.0) -> bool:
        """Gracefully drain: refuse new queries, flush in-flight ones.

        Returns ``True`` when the admission queue, the dispatch queue,
        and every session's in-flight count reached zero within
        ``timeout`` seconds; ``False`` if the deadline expired first.
        The server keeps serving STATS/DRAIN frames either way — follow
        with :meth:`stop` to tear down.  This is the SIGTERM path of
        ``repro serve`` (see ``docs/durability.md``).
        """
        self.begin_drain()
        if not self._running:
            return True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._sessions_lock:
                inflight = sum(s.inflight for s in self._sessions)
            if (self._queue.depth == 0 and not self._dispatch
                    and inflight == 0):
                return True
            time.sleep(0.005)
        return False

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Shut down; with ``drain`` the admitted queue finishes first.

        The teardown order makes outliving threads impossible rather
        than merely unlikely: the running flag flips under the thread
        lock (so no new thread starts after it), every session socket is
        closed *before* any join (so no reader stays blocked in
        ``recv``), and the join loop re-snapshots the thread list until
        it is empty -- a session accepted in the race window is closed
        by the accept loop itself (it re-checks the flag under the
        sessions lock) and its thread, if it ever started, is in the
        list the loop joins.
        """
        if not self._running:
            return
        if drain:
            deadline = time.monotonic() + timeout
            while self._queue.depth > 0 and time.monotonic() < deadline:
                time.sleep(0.005)
        with self._threads_lock:
            if not self._running:
                return
            self._running = False
        self._queue.close()
        with self._dispatch_cond:
            if not drain:
                # An abandoned run must not make workers chew through
                # every queued batch (at full backend latency each)
                # before they can see their stop sentinel: the sessions
                # are about to be closed, so nobody could receive the
                # answers anyway.
                self._dispatch.clear()
            for _ in range(self.config.workers):
                self._dispatch.append(None)
            self._dispatch_cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # Close every session before joining anything: a reader blocked
        # in recv() wakes with an error immediately instead of at its
        # poll timeout.  Late registrations are impossible -- the accept
        # loop re-checks the running flag inside this same lock.
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.close()
        deadline = time.monotonic() + timeout
        while True:
            with self._threads_lock:
                pending = [
                    t for t in self._threads
                    if t.is_alive() and t is not threading.current_thread()
                ]
                if not pending:
                    self._threads = []
                    break
            remaining = deadline - time.monotonic()
            if remaining <= 0:  # pragma: no cover - stuck thread escape
                break
            for thread in pending:
                thread.join(timeout=max(remaining / len(pending), 0.01))
        # Backends owning external resources (e.g. the parallel worker
        # pool) are released once nothing can dispatch to them anymore.
        closed = set()
        for runner in self._runners:
            backend_close = getattr(runner.sut, "close", None)
            if callable(backend_close) and id(runner.sut) not in closed:
                closed.add(id(runner.sut))
                backend_close()

    def _spawn(self, target: Callable[[], None], name: str) -> bool:
        """Start a serving thread; refused once stop() has begun."""
        with self._threads_lock:
            if not self._running:
                return False
            thread = threading.Thread(
                target=target, name=f"{self.config.name}-{name}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
            return True

    # -- accept + per-session read ----------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(_POLL)
            session = _Session(sock, addr)
            # Register under the sessions lock with a running re-check:
            # stop() closes the session list under this same lock after
            # flipping the flag, so a session either makes the list (and
            # is closed by stop) or is refused and closed right here.
            with self._sessions_lock:
                if not self._running:
                    session.close()
                    continue
                self._sessions.append(session)
            with self._stats_lock:
                self.stats.connections += 1
                if self._m:
                    self._m.connections.inc()
            if not self._spawn(lambda s=session: self._session_loop(s),
                               f"session-{session.id}"):
                session.close()
                with self._sessions_lock:
                    if session in self._sessions:
                        self._sessions.remove(session)

    def _session_loop(self, session: _Session) -> None:
        reader = FrameReader()
        try:
            while self._running and session.alive:
                try:
                    data = session.sock.recv(_RECV_CHUNK)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not data:
                    break  # peer closed
                for ftype, payload in reader.feed(data):
                    self._handle_frame(session, ftype, payload)
        except ProtocolError:
            # Corrupt stream: count it and poison only this connection.
            with self._stats_lock:
                self.stats.protocol_errors += 1
                if self._m:
                    self._m.protocol_errors.inc()
        finally:
            session.close()
            with self._sessions_lock:
                if session in self._sessions:
                    self._sessions.remove(session)

    def _handle_frame(self, session: _Session, ftype: FrameType, payload) -> None:
        if not session.greeted:
            if ftype is not FrameType.HELLO:
                raise ProtocolError(
                    f"first frame must be HELLO, got {ftype.name}"
                )
            protocol.parse_hello(payload)
            session.greeted = True
            session.send(protocol.hello_frame(self.config.name, "server"))
            return
        if ftype is FrameType.ISSUE:
            self._handle_issue(session, payload)
        elif ftype is FrameType.LOAD:
            indices = protocol.parse_load(payload)
            if self.qsl is not None:
                self.qsl.load_samples(indices)
            with self._stats_lock:
                self.stats.loads += 1
            session.send(protocol.stats_frame({"loaded": len(indices)}))
        elif ftype is FrameType.STATS:
            session.send(protocol.stats_frame(self._stats_snapshot()))
        elif ftype is FrameType.DRAIN:
            session.draining = True
            self._maybe_finish_drain(session)
        elif ftype is FrameType.HELLO:
            raise ProtocolError("duplicate HELLO")
        else:
            # COMPLETE/FAIL are server->client frames; receiving one is
            # a role violation.
            raise ProtocolError(
                f"client may not send {ftype.name} frames"
            )

    def _handle_issue(self, session: _Session, payload) -> None:
        query_id, samples = protocol.parse_issue(payload)
        with self._stats_lock:
            self.stats.queries_received += 1
            if self._m:
                self._m.received.inc()
        if session.draining:
            self._send_fail(session, query_id, "session is draining")
            return
        if self._draining:
            self._send_fail(session, query_id, "server is draining")
            return
        if not self._running:
            self._send_fail(session, query_id, "server is shutting down")
            return
        request = _PendingRequest(
            session=session,
            query_id=query_id,
            samples=samples,
            recv_time=time.monotonic(),
        )
        with session._state_lock:
            session.inflight += 1
        if not self._queue.offer(request):
            with session._state_lock:
                session.inflight -= 1
            with self._stats_lock:
                self.stats.rejected += 1
                if self._m:
                    self._m.rejected.inc()
            self._send_fail(session, query_id, "server request queue is full")

    # -- batching + dispatch ----------------------------------------------------

    def _batch_loop(self) -> None:
        while True:
            batch = self._queue.take_batch(
                self.config.max_batch, self.config.batch_window
            )
            if batch is None:
                return
            with self._stats_lock:
                self.stats.batches += 1
                self.stats.batched_samples += sum(
                    r.sample_count for r in batch
                )
                self.stats.queue_high_water = max(
                    self.stats.queue_high_water, self._queue.high_water
                )
                if self._m:
                    self._m.batches.inc()
                    self._m.batch_size.observe(
                        sum(r.sample_count for r in batch))
                    dispatch_time = time.monotonic()
                    for request in batch:
                        self._m.queue_wait.observe(
                            dispatch_time - request.recv_time)
            with self._dispatch_cond:
                self._dispatch.append(batch)
                self._dispatch_cond.notify()

    def _worker_loop(self, index: int) -> None:
        runner = self._runners[index]
        busy_seconds = (
            self._m.worker_busy_child(index) if self._m else None
        )
        while True:
            with self._dispatch_cond:
                while not self._dispatch:
                    self._dispatch_cond.wait(_POLL)
                batch = self._dispatch.popleft()
            if batch is None:
                return
            if busy_seconds is None:
                self._execute_batch(runner, batch)
                continue
            self._m.set_busy(index, True)
            started = time.monotonic()
            try:
                self._execute_batch(runner, batch)
            finally:
                busy_seconds.inc(time.monotonic() - started)
                self._m.set_busy(index, False)

    def _execute_batch(
        self, runner: _BackendRunner, batch: List[_PendingRequest]
    ) -> None:
        # Remap client sample ids (unique only per connection) onto a
        # server-wide id space, remembering the way back.
        remap: Dict[int, Tuple[_PendingRequest, int]] = {}
        merged: List[QuerySample] = []
        for request in batch:
            for sample in request.samples:
                internal = next(self._sample_ids)
                remap[internal] = (request, sample.id)
                merged.append(QuerySample(id=internal, index=sample.index))
        query = Query(
            id=next(self._batch_ids),
            samples=tuple(merged),
            issue_time=time.monotonic(),
            contiguous=False,
        )
        # Chunks are forwarded live only for single-request batches: a
        # merged batch runs as one backend query, so its chunks cannot
        # be attributed to any one client request and are dropped.
        on_chunk = None
        if len(batch) == 1:
            sole = batch[0]
            on_chunk = lambda chunk: self._send_chunk(sole, chunk)
        try:
            outcome = runner.run(query, on_chunk=on_chunk)
        except Exception as exc:  # a crashing backend fails the batch
            outcome = QueryFailure(f"backend raised {exc!r}")
        if isinstance(outcome, QueryFailure):
            for request in batch:
                self._send_fail(request.session, request.query_id,
                                outcome.reason)
                self._request_done(request.session)
            return
        grouped: Dict[int, List[QuerySampleResponse]] = {
            request.query_id: [] for request in batch
        }
        unknown = 0
        for response in outcome:
            mapped = remap.get(response.sample_id)
            if mapped is None:
                unknown += 1
                continue
            request, original_id = mapped
            grouped[request.query_id].append(
                QuerySampleResponse(original_id, response.data)
            )
        for request in batch:
            responses = grouped[request.query_id]
            if unknown or len(responses) != request.sample_count:
                self._send_fail(
                    request.session, request.query_id,
                    "backend response set does not match the request "
                    f"({len(responses)}/{request.sample_count} samples"
                    f"{', stray ids' if unknown else ''})",
                )
                self._request_done(request.session)
                continue
            self._send_complete(request, responses)

    # -- replies ----------------------------------------------------------------

    def _send_chunk(self, request: _PendingRequest,
                    chunk: StreamChunk) -> None:
        """Forward one stream chunk to the client, under its own id.

        Chunks are not terminal: no ``_request_done``, and a chunk whose
        payload is not wire-encodable is resent without the payload
        rather than failing the query - the terminal COMPLETE carries
        the authoritative answer.
        """
        try:
            frame = protocol.chunk_frame(
                request.query_id, chunk.seq, chunk.token_count,
                chunk.last, chunk.data,
            )
        except TypeError:
            frame = protocol.chunk_frame(
                request.query_id, chunk.seq, chunk.token_count,
                chunk.last, None,
            )
        with self._stats_lock:
            self.stats.chunks += 1
            if self._m:
                self._m.chunks.inc()
        request.session.send(frame)

    def _send_complete(
        self, request: _PendingRequest, responses: List[QuerySampleResponse]
    ) -> None:
        try:
            frame = protocol.complete_frame(
                request.query_id, responses,
                server_recv=request.recv_time,
                server_send=time.monotonic(),
            )
        except TypeError as exc:
            # Non-encodable backend output is an honest failure, not a
            # silently mangled payload.
            self._send_fail(
                request.session, request.query_id,
                f"response payload is not wire-encodable: {exc}",
            )
            self._request_done(request.session)
            return
        # Count before sending: a client that reads the COMPLETE frame
        # and immediately asks for STATS must see its query counted.
        with self._stats_lock:
            self.stats.completed += 1
            if self._m:
                self._m.completed.inc()
        request.session.send(frame)
        self._request_done(request.session)

    def _send_fail(self, session: _Session, query_id: int, reason: str) -> None:
        # Same ordering as _send_complete: counted, then visible.
        with self._stats_lock:
            self.stats.failed += 1
            if self._m:
                self._m.failed.inc()
        session.send(protocol.fail_frame(query_id, reason))

    def _request_done(self, session: _Session) -> None:
        with session._state_lock:
            session.inflight -= 1
        self._maybe_finish_drain(session)

    def _maybe_finish_drain(self, session: _Session) -> None:
        if not session.draining:
            return
        with session._state_lock:
            if session.inflight > 0:
                return
        payload = dict(self._stats_snapshot())
        payload["drained"] = True
        session.send(protocol.stats_frame(payload))

    def _stats_snapshot(self) -> Dict[str, object]:
        with self._stats_lock:
            snapshot = self.stats.snapshot()
        snapshot["queue_depth"] = self._queue.depth
        return snapshot
