"""Chrome trace-event export of a run's query log.

The real LoadGen emits ``mlperf_trace.json`` viewable in
``chrome://tracing``; this module produces the equivalent from a
:class:`~repro.core.logging.QueryLog`: one complete ("X") event per
query on a per-wave track, plus instant events for issues.  Useful for
eyeballing batching behaviour, queue buildup, and the scenario's arrival
pattern.  Streamed queries (``docs/streaming.md``) additionally get a
"first token" instant and a first-to-last-chunk span on their own track,
so TTFT and the token tail are visible inside the total-latency bar.

For Network-division runs the exporter also accepts per-query
:class:`TransportTiming` records (kept by ``NetworkSUT`` and
``SimulatedChannelSUT``): each query then gains a "network" process with
its round-trip span plus send/receive instants, so the wire's share of a
latency bound is visible next to the query's total.

When the run also produced telemetry snapshots
(:class:`repro.metrics.Snapshot`, see ``docs/observability.md``), they
can be passed in as well: every snapshot series becomes a Chrome counter
track ("C" events on a "metrics" process), so queue depth, outstanding
queries, and latency percentiles plot as stacked area charts directly
under the query timeline.

Runs driven by a chaos orchestrator (``docs/chaos.md``) can pass its
applied fault windows via ``chaos=``: each becomes a span on a "chaos"
process, so zone outages and gray-failure brownouts line up visually
with the latency bars and metric counters they caused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .logging import QueryLog
from ..metrics import Snapshot

#: Trace timestamps are microseconds.
_US = 1e6


@dataclass(frozen=True)
class TransportTiming:
    """Wire timestamps for one query's round trip.

    ``send_time`` and ``recv_time`` are client-clock readings (the run
    loop's clock); ``server_recv`` and ``server_send`` are server-clock
    readings.  The two clocks share no epoch, so only *durations* are
    comparable across them - which is all the accounting needs: the
    network's share of a round trip is what the server did not spend.
    """

    #: Client clock: the ISSUE frame left the adapter.
    send_time: float
    #: Client clock: the COMPLETE frame finished arriving.
    recv_time: float
    #: Server clock: the ISSUE frame was admitted.
    server_recv: float
    #: Server clock: the COMPLETE frame was written back.
    server_send: float

    @property
    def round_trip(self) -> float:
        """Client-observed seconds from send to receive."""
        return self.recv_time - self.send_time

    @property
    def server_time(self) -> float:
        """Seconds the query spent inside the server (queue + compute)."""
        return self.server_send - self.server_recv

    @property
    def network_time(self) -> float:
        """The wire's share of the round trip (both directions)."""
        return max(0.0, self.round_trip - self.server_time)


def _assign_tracks(records) -> Dict[int, int]:
    """Greedy interval-graph colouring: overlapping queries get distinct
    track ids so their bars do not overdraw in the viewer."""
    free: List[int] = []
    active: List = []   # (completion_time, track)
    next_track = 0
    assignment: Dict[int, int] = {}
    for record in sorted(records, key=lambda r: r.issue_time):
        still_active = []
        for completion, track in active:
            if completion <= record.issue_time:
                free.append(track)
            else:
                still_active.append((completion, track))
        active = still_active
        if free:
            track = free.pop()
        else:
            track = next_track
            next_track += 1
        assignment[record.query.id] = track
        active.append((record.completion_time, track))
    return assignment


def to_chrome_trace(
    log: QueryLog,
    process_name: str = "SUT",
    transport: Optional[Dict[int, TransportTiming]] = None,
    snapshots: Optional[Sequence[Snapshot]] = None,
    chaos: Optional[Sequence] = None,
) -> str:
    """Serialize the log as a Chrome trace-event JSON string.

    ``transport`` maps query id to its :class:`TransportTiming`; when
    given, each covered query also gets a round-trip span plus send and
    receive instants on a separate "network" process, with the
    server/network duration split in the span's args.

    ``snapshots`` (from :attr:`LoadGenResult.snapshots`) adds a
    "metrics" process whose counter tracks replay every telemetry
    series over the run - one "C" event per series per snapshot.

    ``chaos`` takes the fault windows a chaos orchestrator applied
    (any objects with ``kind``/``target``/``start``/``end`` attributes,
    e.g. :class:`repro.faults.chaos.ChaosWindow`): each becomes a span
    on a "chaos" process, so outages and brownouts line up visually
    with the latency bars they caused.  Windows still open (``end`` is
    None) are drawn to the end of the last completed query.
    """
    records = log.completed_records()
    tracks = _assign_tracks(records)
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": process_name},
    }]
    for record in records:
        track = tracks[record.query.id]
        events.append({
            "name": f"query {record.query.id}",
            "cat": "query",
            "ph": "X",
            "pid": 1,
            "tid": track,
            "ts": record.issue_time * _US,
            "dur": record.latency * _US,
            "args": {
                "samples": record.query.sample_count,
                "scheduled": record.scheduled_time,
            },
        })
        if record.streamed:
            # Streamed queries get their token timeline on the same
            # track: an instant at the first token and a span covering
            # first-to-last chunk, so TTFT and the streaming tail are
            # visible inside the query's total-latency bar.
            events.append({
                "name": "first token",
                "cat": "stream",
                "ph": "i",
                "s": "t",
                "pid": 1,
                "tid": track,
                "ts": record.first_chunk_time * _US,
                "args": {"ttft_ms": (record.ttft or 0.0) * 1e3},
            })
            events.append({
                "name": f"stream {record.query.id}",
                "cat": "stream",
                "ph": "X",
                "pid": 1,
                "tid": track,
                "ts": record.first_chunk_time * _US,
                "dur": (record.last_chunk_time - record.first_chunk_time)
                       * _US,
                "args": {
                    "tokens": record.token_count,
                    "chunks": record.chunk_count,
                    "tpot_ms": (record.tpot or 0.0) * 1e3,
                    "restarts": record.stream_restarts,
                },
            })
    if transport:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "args": {"name": "network"},
        })
        for record in records:
            timing = transport.get(record.query.id)
            if timing is None:
                continue
            track = tracks[record.query.id]
            events.append({
                "name": f"rpc query {record.query.id}",
                "cat": "network",
                "ph": "X",
                "pid": 2,
                "tid": track,
                "ts": timing.send_time * _US,
                "dur": timing.round_trip * _US,
                "args": {
                    "server_time_ms": timing.server_time * 1e3,
                    "network_time_ms": timing.network_time * 1e3,
                },
            })
            events.append({
                "name": "send",
                "cat": "network",
                "ph": "i",
                "s": "t",
                "pid": 2,
                "tid": track,
                "ts": timing.send_time * _US,
            })
            events.append({
                "name": "receive",
                "cat": "network",
                "ph": "i",
                "s": "t",
                "pid": 2,
                "tid": track,
                "ts": timing.recv_time * _US,
            })
    if snapshots:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": 3,
            "args": {"name": "metrics"},
        })
        for snap in snapshots:
            for series, value in snap.values.items():
                events.append({
                    "name": series,
                    "cat": "metrics",
                    "ph": "C",
                    "pid": 3,
                    "ts": snap.time * _US,
                    "args": {"value": value},
                })
    if chaos:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": 4,
            "args": {"name": "chaos"},
        })
        horizon = max(
            (r.completion_time for r in records), default=0.0)
        for tid, window in enumerate(chaos):
            end = window.end if window.end is not None else horizon
            events.append({
                "name": f"{window.kind} {window.target}",
                "cat": "chaos",
                "ph": "X",
                "pid": 4,
                "tid": tid,
                "ts": window.start * _US,
                "dur": max(0.0, end - window.start) * _US,
                "args": {"kind": window.kind, "target": window.target},
            })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      indent=1)


def write_chrome_trace(
    log: QueryLog,
    path,
    process_name: str = "SUT",
    transport: Optional[Dict[int, TransportTiming]] = None,
    snapshots: Optional[Sequence[Snapshot]] = None,
    chaos: Optional[Sequence] = None,
) -> None:
    """Write the trace to ``path`` (the mlperf_trace.json equivalent)."""
    from pathlib import Path

    Path(path).write_text(
        to_chrome_trace(log, process_name, transport, snapshots=snapshots,
                        chaos=chaos)
    )
