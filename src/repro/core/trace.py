"""Chrome trace-event export of a run's query log.

The real LoadGen emits ``mlperf_trace.json`` viewable in
``chrome://tracing``; this module produces the equivalent from a
:class:`~repro.core.logging.QueryLog`: one complete ("X") event per
query on a per-wave track, plus instant events for issues.  Useful for
eyeballing batching behaviour, queue buildup, and the scenario's arrival
pattern.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .logging import QueryLog

#: Trace timestamps are microseconds.
_US = 1e6


def _assign_tracks(records) -> Dict[int, int]:
    """Greedy interval-graph colouring: overlapping queries get distinct
    track ids so their bars do not overdraw in the viewer."""
    free: List[int] = []
    active: List = []   # (completion_time, track)
    next_track = 0
    assignment: Dict[int, int] = {}
    for record in sorted(records, key=lambda r: r.issue_time):
        still_active = []
        for completion, track in active:
            if completion <= record.issue_time:
                free.append(track)
            else:
                still_active.append((completion, track))
        active = still_active
        if free:
            track = free.pop()
        else:
            track = next_track
            next_track += 1
        assignment[record.query.id] = track
        active.append((record.completion_time, track))
    return assignment


def to_chrome_trace(log: QueryLog, process_name: str = "SUT") -> str:
    """Serialize the log as a Chrome trace-event JSON string."""
    records = log.completed_records()
    tracks = _assign_tracks(records)
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": process_name},
    }]
    for record in records:
        track = tracks[record.query.id]
        events.append({
            "name": f"query {record.query.id}",
            "cat": "query",
            "ph": "X",
            "pid": 1,
            "tid": track,
            "ts": record.issue_time * _US,
            "dur": record.latency * _US,
            "args": {
                "samples": record.query.sample_count,
                "scheduled": record.scheduled_time,
            },
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                      indent=1)


def write_chrome_trace(log: QueryLog, path, process_name: str = "SUT"
                       ) -> None:
    """Write the trace to ``path`` (the mlperf_trace.json equivalent)."""
    from pathlib import Path

    Path(path).write_text(to_chrome_trace(log, process_name))
