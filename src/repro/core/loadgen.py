"""The Load Generator (paper Section IV-B, Figure 3).

The LoadGen is MLPerf Inference's traffic generator and referee.  It

1. asks the SUT to load data set samples into memory (untimed),
2. issues query traffic according to the selected scenario,
3. records every query and response,
4. reports statistics and decides whether the run was valid.

This implementation runs the scenario logic on a deterministic
discrete-event loop (``repro.core.events``) so that a 270,336-query
server run finishes in seconds of wall time while preserving the paper's
timing semantics exactly.  SUTs that execute real numpy models measure
their wall-clock service time and replay it as virtual time (see
``repro.sut.backend``), so the same LoadGen drives both simulated and
real backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from .config import Scenario, TestMode, TestSettings
from .events import Clock, EventLoop, RunAbortedError, VirtualClock
from .logging import QueryLog
from .metrics import ScenarioMetrics, compute_metrics, empty_metrics
from ..metrics import MetricsRegistry, Snapshot, SnapshotSampler
from .sampler import SampleSelector, accuracy_mode_indices
from .scenarios import (
    AccuracySource,
    DriverStats,
    PerformanceSource,
    SampleSource,
    make_driver,
)
from .sut import QuerySampleLibrary, SystemUnderTest
from .validation import ValidityReport, validate_run

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- durability)
    from ..durability.journal import RunJournal


@dataclass
class LoadGenResult:
    """Everything a run produces: the log, metrics, and the verdict."""

    settings: TestSettings
    log: QueryLog
    metrics: ScenarioMetrics
    validity: ValidityReport
    loaded_indices: List[int]
    #: Driver-side run accounting (watchdog / abort state lives here).
    stats: Optional[DriverStats] = None
    #: Periodic telemetry snapshots, when the run was handed a metrics
    #: registry and a snapshot period (see ``docs/observability.md``).
    snapshots: Optional[List[Snapshot]] = None

    @property
    def valid(self) -> bool:
        return self.validity.valid

    @property
    def primary_metric(self) -> float:
        return self.metrics.primary_metric

    def summary(self) -> str:
        """Human-readable run summary, in the spirit of the LoadGen's
        ``mlperf_log_summary.txt``."""
        lines = [
            "=" * 60,
            f"Scenario          : {self.settings.scenario.value}",
            f"Mode              : {self.settings.mode.value}",
            f"Result is         : {'VALID' if self.valid else 'INVALID'}",
            f"{self.metrics.primary_metric_name:<18}: {self.metrics.primary_metric:.6g}",
            f"Queries issued    : {self.metrics.query_count}",
            f"Samples processed : {self.metrics.sample_count}",
            f"Run duration (s)  : {self.metrics.duration:.3f}",
            f"Latency mean (ms) : {self.metrics.latency_mean * 1e3:.3f}",
            f"Latency p90 (ms)  : {self.metrics.latency_p90 * 1e3:.3f}",
            f"Latency p99 (ms)  : {self.metrics.latency_p99 * 1e3:.3f}",
        ]
        stream = self.metrics.stream
        if stream is not None:
            lines += [
                f"Streamed queries  : {stream.streamed_query_count} "
                f"({stream.token_count} tokens, "
                f"{stream.restart_count} restarts)",
                f"TTFT p50/p90/p99  : {stream.ttft_p50 * 1e3:.3f} / "
                f"{stream.ttft_p90 * 1e3:.3f} / "
                f"{stream.ttft_p99 * 1e3:.3f} ms",
                f"TPOT p50/p90/p99  : {stream.tpot_p50 * 1e3:.3f} / "
                f"{stream.tpot_p90 * 1e3:.3f} / "
                f"{stream.tpot_p99 * 1e3:.3f} ms",
                f"Goodput (q/s)     : {stream.goodput:.6g} "
                f"({stream.slo_compliant_count} SLO-compliant)",
            ]
        session = self.metrics.session
        if session is not None:
            lines += [
                f"Sessions          : {session.completed_session_count}/"
                f"{session.session_count} completed "
                f"({session.turn_count} turns, "
                f"{session.turns_per_session_mean:.2f} turns/session)",
                f"Session lat p50/p90/p99 : "
                f"{session.session_latency_p50 * 1e3:.3f} / "
                f"{session.session_latency_p90 * 1e3:.3f} / "
                f"{session.session_latency_p99 * 1e3:.3f} ms",
                f"Turn TTFT p50/p90/p99   : "
                f"{session.turn_ttft_p50 * 1e3:.3f} / "
                f"{session.turn_ttft_p90 * 1e3:.3f} / "
                f"{session.turn_ttft_p99 * 1e3:.3f} ms",
            ]
        for reason in self.validity.reasons:
            lines.append(f"  * {reason}")
        lines.append("=" * 60)
        return "\n".join(lines)


#: Realtime-mode janitor period, seconds: how often a wall-clock run
#: checks whether it has drained.  Bounds both the loop's idle wake-up
#: rate and the end-of-run detection latency.
_JANITOR_PERIOD = 0.010


@runtime_checkable
class RunService(Protocol):
    """A periodic participant clocked by the run's event loop.

    The LoadGen already runs two built-in tickers - the snapshot sampler
    and the journal checkpointer - that must stop rescheduling once the
    run drains or a virtual loop would never finish.  ``RunService``
    generalizes that contract so external machinery (the
    ``repro.fleet`` autoscaler, custom controllers) can ride the same
    clock: :meth:`start` receives the loop plus a ``keep_going``
    predicate that turns false once the run has drained, and
    :meth:`stop` is called after the loop exits (cancel pending ticks
    here).  Services run on the loop thread, so they need no locking and
    are deterministic under the virtual clock.
    """

    def start(self, loop: EventLoop,
              keep_going: Callable[[], bool]) -> None: ...

    def stop(self) -> None: ...


class LoadGen:
    """Drives one SUT through one scenario run."""

    def __init__(self, settings: TestSettings) -> None:
        self.settings = settings

    # -- sample loading (untimed; Fig. 3 steps 1-4) ----------------------------

    def _choose_loaded_set(self, qsl: QuerySampleLibrary) -> List[int]:
        """Pick which library samples are resident for a performance run.

        At most ``performance_sample_count`` samples are loaded; the run
        then draws from this set with replacement.  Selection uses its
        own seed stream so it is reproducible but independent of the
        traffic pattern.
        """
        total = qsl.total_sample_count
        if total < 1:
            raise ValueError(f"query sample library '{qsl.name}' is empty")
        budget = self.settings.performance_sample_count
        if budget is not None and budget > total:
            raise ValueError(
                f"performance_sample_count {budget} exceeds the "
                f"{total} samples in query sample library '{qsl.name}'"
            )
        if budget is None:
            budget = qsl.performance_sample_count
        budget = min(budget, total)
        if budget < 1:
            raise ValueError("performance sample count must be >= 1")
        if budget >= total:
            return list(range(total))
        rng = np.random.default_rng(
            np.random.SeedSequence(self.settings.seed).spawn(2)[1]
        )
        picks = rng.choice(total, size=budget, replace=False)
        return sorted(int(p) for p in picks)

    def _make_source(self, loaded: Sequence[int]) -> SampleSource:
        if self.settings.mode is TestMode.ACCURACY:
            return AccuracySource(loaded)
        selector = SampleSelector(loaded, seed=self.settings.seed)
        return PerformanceSource(selector)

    # -- the run itself ---------------------------------------------------------

    def run(
        self,
        sut: SystemUnderTest,
        qsl: QuerySampleLibrary,
        log_sample_probability: float = 0.0,
        clock: Optional[Clock] = None,
        registry: Optional[MetricsRegistry] = None,
        snapshot_period: Optional[float] = None,
        journal: Optional["RunJournal"] = None,
        services: Optional[Sequence[RunService]] = None,
    ) -> LoadGenResult:
        """Execute one full run and return its result.

        ``log_sample_probability`` enables the accuracy-verification
        audit: in performance mode, each completed query's responses are
        retained with this probability.

        ``clock`` selects the time base.  The default ``VirtualClock``
        gives the deterministic fast path; passing a ``WallClock`` runs
        the identical scenario logic against real time - the measured
        path used when the SUT sits on the far side of a network
        (``repro.network``), where wall-clock send/receive time is the
        quantity under test.

        ``registry`` turns on live telemetry: the scenario driver emits
        the ``loadgen_*`` metrics into it (``docs/observability.md``
        lists them all).  With ``snapshot_period`` the registry is
        additionally sampled every that many seconds of *run* time
        (virtual or wall, matching ``clock``) and the series is returned
        in :attr:`LoadGenResult.snapshots` - under the virtual clock the
        snapshots are bit-for-bit reproducible across runs.

        ``journal`` makes the run durable: a
        ``repro.durability.RunJournal`` write-ahead logs every issued/
        completed/failed query plus periodic checkpoints, so a run
        killed mid-flight can be continued with
        ``repro.durability.resume_run`` (see ``docs/durability.md``).

        ``services`` attaches :class:`RunService` tickers - e.g. the
        ``repro.fleet`` autoscaler - started after the SUT is bound to
        the loop and stopped once the run has drained.
        """
        settings = self.settings
        if settings.mode is TestMode.ACCURACY:
            loaded = accuracy_mode_indices(qsl.total_sample_count)
        else:
            loaded = self._choose_loaded_set(qsl)

        qsl.load_samples(loaded)
        try:
            loop = EventLoop(clock if clock is not None else VirtualClock())
            log = QueryLog(
                log_sample_probability=log_sample_probability,
                seed=settings.seed ^ 0xA0D17,
            )
            source = self._make_source(loaded)
            driver = make_driver(loop, settings, sut, source, log,
                                 registry=registry)

            if journal is not None:
                # Write-ahead: the header precedes the first query, and
                # the QueryLog's observer appends each lifecycle event
                # before the run proceeds past it.
                journal.begin(
                    settings,
                    keep_payloads=(
                        settings.mode is TestMode.ACCURACY
                        or log_sample_probability > 0.0),
                    log_sample_probability=log_sample_probability,
                )
                log.observer = journal.on_log_event
                period = journal.checkpoint_period
                if period is not None:
                    def _checkpoint_tick() -> None:
                        journal.checkpoint(
                            loop.now,
                            issued=log.query_count,
                            outstanding=log.outstanding,
                            issued_samples=log.issued_samples,
                        )
                        # Like the snapshot sampler, the tick must stop
                        # rescheduling once the run has drained or a
                        # virtual loop would never finish.
                        if driver.issue_phase_open or log.outstanding > 0:
                            loop.schedule_after(period, _checkpoint_tick)

                    loop.schedule_after(period, _checkpoint_tick)

            sampler: Optional[SnapshotSampler] = None
            if registry is not None and snapshot_period is not None:
                sampler = SnapshotSampler(registry, loop, snapshot_period)
                # The sampler's self-rescheduling tick would keep a
                # virtual loop draining forever; it stops itself at the
                # first tick after the run has drained.
                sampler.start(keep_going=lambda: (
                    driver.issue_phase_open or log.outstanding > 0
                ))

            watchdog = settings.watchdog_timeout
            if watchdog is not None:
                def _watchdog_fired() -> None:
                    finished = log.outstanding == 0 and (
                        loop.pending() == 0 or not driver.issue_phase_open
                    )
                    if finished:
                        return  # run already finished; nothing is stuck
                    driver.stats.watchdog_fired = True
                    driver.stats.watchdog_time = loop.now
                    loop.stop()

                loop.schedule_after(watchdog, _watchdog_fired)

            if loop.realtime:
                # A realtime loop cannot teleport past idle stretches,
                # and completions arrive asynchronously via ``post`` - so
                # a janitor tick keeps the loop alive while queries are
                # in flight and stops it as soon as the run has drained
                # (rather than sleeping out the watchdog).
                def _janitor() -> None:
                    if not driver.issue_phase_open and log.outstanding == 0:
                        loop.stop()
                    else:
                        loop.schedule_after(_JANITOR_PERIOD, _janitor)

                loop.schedule_after(_JANITOR_PERIOD, _janitor)

            sut.start_run(loop, driver.handle_completion)
            started_services: List[RunService] = []
            if services:
                # After the SUT is bound (a fleet service may need to
                # scale the SUT it controls), before the first query.
                keep_going = (
                    lambda: driver.issue_phase_open or log.outstanding > 0
                )
                for service in services:
                    service.start(loop, keep_going)
                    started_services.append(service)
            driver.start()
            try:
                loop.run()
            except RunAbortedError as abort:
                # A callback blew up mid-run.  The referee's job is to
                # return a verdict, not a traceback: record the abort
                # context and judge whatever the log holds.
                driver.stats.aborted = str(abort)
            finally:
                for service in started_services:
                    service.stop()

            if sampler is not None:
                sampler.stop()
                # Close the series with the run's final state, stamped
                # at the loop's terminal time.
                sampler.sample_now()

            if log.completed_records():
                metrics = compute_metrics(log, settings)
            else:
                metrics = empty_metrics(log, settings)
            validity = validate_run(log, settings, driver.stats)
            result = LoadGenResult(
                settings=settings,
                log=log,
                metrics=metrics,
                validity=validity,
                loaded_indices=list(loaded),
                stats=driver.stats,
                snapshots=sampler.snapshots if sampler is not None else None,
            )
            if journal is not None:
                journal.finish(result)
            return result
        finally:
            if journal is not None:
                journal.close()
            qsl.unload_samples(loaded)


def run_benchmark(
    sut: SystemUnderTest,
    qsl: QuerySampleLibrary,
    settings: TestSettings,
    log_sample_probability: float = 0.0,
    clock: Optional[Clock] = None,
    registry: Optional[MetricsRegistry] = None,
    snapshot_period: Optional[float] = None,
    journal: Optional["RunJournal"] = None,
    services: Optional[Sequence[RunService]] = None,
) -> LoadGenResult:
    """Convenience wrapper: build a LoadGen and run once."""
    return LoadGen(settings).run(
        sut, qsl, log_sample_probability, clock=clock,
        registry=registry, snapshot_period=snapshot_period,
        journal=journal, services=services,
    )
