"""Scenario drivers: query generation per paper Table II and Figure 4.

Each driver owns the timing policy of one scenario:

* **Single-stream** - issue one query, wait for completion, immediately
  issue the next.  Metric: 90th-percentile latency.
* **Multistream** - a new query of N samples every fixed arrival interval
  *t* (Table III).  If the SUT is still busy at a tick, that interval is
  skipped and the remaining queries are delayed by one interval; no more
  than 1% of queries may produce one or more skipped intervals.
* **Server** - queries with one sample each, arrival times drawn from a
  Poisson process with rate ``target_qps``.  No more than 1% (3% for
  translation) of queries may exceed the QoS latency bound.
* **Offline** - a single query carrying every sample (>= 24,576), issued
  at time zero; the SUT may reorder freely.  Metric: samples/second.

A fifth driver extends the paper's set: **Session**
(:class:`repro.sessions.driver.SessionDriver`) replays multi-turn
conversations - Poisson *session* arrivals whose turns are issued
strictly in order with think-time gaps, so queries are no longer
independent (see ``docs/sessions.md``).

Drivers are pure event-loop citizens: they schedule issue events and
react to completion callbacks, so they work identically under virtual
and measured time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .config import Scenario, TestMode, TestSettings
from .events import EventLoop
from .logging import QueryLog
from .query import Query, QueryFailure, StreamChunk
from .sampler import QueryFactory, SampleSelector
from .sut import SystemUnderTest
from ..metrics import MetricsRegistry


class SampleSource:
    """Produces the data set indices for successive queries."""

    def next(self, count: int) -> Optional[List[int]]:
        """Return ``count`` indices, or ``None`` when exhausted."""
        raise NotImplementedError

    @property
    def finite(self) -> bool:
        raise NotImplementedError


class PerformanceSource(SampleSource):
    """Endless with-replacement draws from the loaded performance set."""

    def __init__(self, selector: SampleSelector) -> None:
        self._selector = selector

    def next(self, count: int) -> Optional[List[int]]:
        return self._selector.draw(count)

    @property
    def finite(self) -> bool:
        return False


class AccuracySource(SampleSource):
    """One pass over the full data set, in order, without replacement."""

    def __init__(self, indices: Sequence[int]) -> None:
        self._indices = list(indices)
        self._pos = 0

    def next(self, count: int) -> Optional[List[int]]:
        if self._pos >= len(self._indices):
            return None
        chunk = self._indices[self._pos:self._pos + count]
        self._pos += len(chunk)
        return chunk

    @property
    def finite(self) -> bool:
        return True

    @property
    def remaining(self) -> int:
        return len(self._indices) - self._pos


@dataclass
class DriverStats:
    """Scenario-specific bookkeeping surfaced to the validator."""

    issued_queries: int = 0
    start_time: float = 0.0
    issue_phase_end: float = 0.0
    #: Multistream: per-query count of skipped arrival intervals.
    skipped_intervals: dict = field(default_factory=dict)
    #: Multistream: total number of ticks that were skipped.
    total_skipped_ticks: int = 0
    #: Offline: number of batch queries issued (1 unless the minimum
    #: duration forced extras).
    offline_queries: int = 0
    #: Session scenario: conversation lifecycle counts.  Stalled
    #: sessions (started minus completed minus aborted at run end) are
    #: how the validator tells a lost turn from a drained run.
    sessions_started: int = 0
    sessions_completed: int = 0
    sessions_aborted: int = 0
    #: Watchdog: set when the overall-run timeout terminated the run.
    watchdog_fired: bool = False
    watchdog_time: float = 0.0
    #: Set when an event callback raised and the run was aborted
    #: (the RunAbortedError message, with virtual time and origin).
    aborted: Optional[str] = None


class _DriverInstruments:
    """Pre-resolved metric children for the driver's hot path.

    Children are bound once here so issuing a query costs two unlocked
    counter adds and completing one costs a counter add plus a histogram
    observe - no name lookups or label formatting per event.  The
    outstanding-queries gauge is callback-backed (pulled from the log at
    collection time), so the issue path does not pay for it at all.
    """

    __slots__ = ("issued", "samples", "completed", "failed", "latency",
                 "anomalies", "scenario", "chunks", "tokens", "ttft",
                 "tpot")

    def __init__(self, registry: MetricsRegistry, scenario: Scenario,
                 log: QueryLog) -> None:
        self.scenario = scenario.value
        label = {"scenario": self.scenario}
        self.issued = registry.counter(
            "loadgen_queries_issued_total",
            "Queries the LoadGen has issued to the SUT",
            labels=("scenario",),
        ).labels(**label)
        self.samples = registry.counter(
            "loadgen_samples_issued_total",
            "Samples carried by issued queries",
            labels=("scenario",),
        ).labels(**label)
        self.completed = registry.counter(
            "loadgen_queries_completed_total",
            "Queries that completed cleanly",
            labels=("scenario",),
        ).labels(**label)
        self.failed = registry.counter(
            "loadgen_queries_failed_total",
            "Queries that resolved as recorded failures",
            labels=("scenario",),
        ).labels(**label)
        self.latency = registry.histogram(
            "loadgen_query_latency_seconds",
            "Issue-to-completion latency of clean queries",
            labels=("scenario",),
        ).labels(**label)
        self.anomalies = registry.counter(
            "loadgen_anomalies_total",
            "Duplicate and unsolicited completions observed by the referee",
            labels=("scenario", "kind"),
        )
        registry.gauge(
            "loadgen_queries_outstanding",
            "Issued queries that have not yet reached a terminal state",
            fn=lambda: log.outstanding,
        )
        self.chunks = registry.counter(
            "stream_chunks_total",
            "Accepted in-sequence stream chunks",
            labels=("scenario",),
        ).labels(**label)
        self.tokens = registry.counter(
            "stream_tokens_total",
            "Output tokens carried by accepted stream chunks",
            labels=("scenario",),
        ).labels(**label)
        self.ttft = registry.histogram(
            "stream_ttft_seconds",
            "Time to first token (issue to first chunk) of streamed queries",
            labels=("scenario",),
        ).labels(**label)
        self.tpot = registry.histogram(
            "stream_tpot_seconds",
            "Mean inter-token interval after the first token, per query",
            labels=("scenario",),
        ).labels(**label)


class ScenarioDriver:
    """Common machinery for the four scenario drivers."""

    scenario: Scenario

    def __init__(
        self,
        loop: EventLoop,
        settings: TestSettings,
        sut: SystemUnderTest,
        source: SampleSource,
        log: QueryLog,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.loop = loop
        self.settings = settings
        self.sut = sut
        self.source = source
        self.log = log
        self.factory = QueryFactory()
        self.stats = DriverStats()
        self._outstanding = 0
        self._issue_phase_open = True
        self._metrics = (
            _DriverInstruments(registry, settings.scenario, log)
            if registry is not None else None
        )

    # -- helpers ---------------------------------------------------------------

    @property
    def samples_per_query(self) -> int:
        return 1

    @property
    def issue_phase_open(self) -> bool:
        """True while the driver may still issue queries (the LoadGen's
        realtime janitor and watchdog use this to tell a drained run
        from a stuck one)."""
        return self._issue_phase_open

    def _issue(self, indices: List[int], scheduled_time: Optional[float] = None,
               session=None) -> Query:
        now = self.loop.now
        query = self.factory.make_query(indices, issue_time=now)
        if session is not None:
            query.session = session
        self.log.record_issue(query, now, scheduled_time=scheduled_time)
        self.stats.issued_queries += 1
        self._outstanding += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.issued.inc()
            metrics.samples.inc(len(indices))
        self.sut.issue_query(query)
        return query

    def handle_completion(self, query: Query, responses) -> None:
        """Referee-side intake of whatever the SUT delivers.

        Clean completions and recorded failures resolve the query and
        advance the scenario; duplicate or unsolicited completions are
        logged as anomalies and otherwise ignored - a misbehaving SUT
        must be able to invalidate a run, never to corrupt or crash it.
        """
        now = self.loop.now
        if isinstance(responses, StreamChunk):
            # Chunks are progress, not a terminal outcome: record the
            # timing, bump the stream counters, and wait for the real
            # completion that follows the last chunk.
            status = self.log.record_chunk(query, now, responses)
            metrics = self._metrics
            if metrics is not None:
                if status in ("chunk", "restart"):
                    metrics.chunks.inc()
                    metrics.tokens.inc(responses.token_count)
                else:  # anomaly / late / unsolicited - cold path
                    metrics.anomalies.labels(
                        scenario=metrics.scenario, kind="stream_" + status
                    ).inc()
            return
        if isinstance(responses, QueryFailure):
            status = self.log.record_failure(query, now, responses.reason)
        else:
            keep = self.settings.mode is TestMode.ACCURACY
            status = self.log.observe_completion(
                query, now, responses, keep_responses=keep
            )
        metrics = self._metrics
        if metrics is not None:
            if status == "completed":
                metrics.completed.inc()
                metrics.latency.observe(now - query.issue_time)
                record = self.log.record_for(query.id)
                if record is not None and record.streamed:
                    # Final-attempt timing: a restarted stream reset
                    # these, so the histograms see what the client saw.
                    metrics.ttft.observe(record.ttft)
                    metrics.tpot.observe(record.tpot)
            elif status == "failed":
                metrics.failed.inc()
            else:  # duplicate / unsolicited - cold path, resolve labels
                metrics.anomalies.labels(
                    scenario=metrics.scenario, kind=status
                ).inc()
        if status in ("completed", "failed"):
            self._outstanding -= 1
            self.on_completion(query)

    def _performance_goals_met(self) -> bool:
        elapsed = self.loop.now - self.stats.start_time
        return (
            self.stats.issued_queries >= self.settings.resolved_min_query_count
            and elapsed >= self.settings.resolved_min_duration
        )

    def _should_issue_more(self) -> bool:
        if self.source.finite:
            return True  # finite sources stop by returning None
        return not self._performance_goals_met()

    def _close_issue_phase(self) -> None:
        if self._issue_phase_open:
            self._issue_phase_open = False
            self.stats.issue_phase_end = self.loop.now
            self.sut.flush()

    # -- scenario hooks ----------------------------------------------------------

    def start(self) -> None:
        """Schedule the first query/queries.  Called once by the LoadGen."""
        raise NotImplementedError

    def on_completion(self, query: Query) -> None:
        """React to a completed query (scenario specific)."""
        raise NotImplementedError


class SingleStreamDriver(ScenarioDriver):
    """Sequential queries of one sample; next issues on completion."""

    scenario = Scenario.SINGLE_STREAM

    def start(self) -> None:
        self.stats.start_time = self.loop.now
        self._issue_next()

    def _issue_next(self) -> None:
        indices = self.source.next(1)
        if indices is None:
            self._close_issue_phase()
            return
        self._issue(indices)

    def on_completion(self, query: Query) -> None:
        if self._should_issue_more():
            self._issue_next()
        else:
            self._close_issue_phase()


class ServerDriver(ScenarioDriver):
    """Poisson arrivals at ``settings.server_target_qps``."""

    scenario = Scenario.SERVER

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Dedicated stream for arrival times so the traffic pattern is a
        # pure function of the seed (Section V-B alternate-seed test).
        # The SeedSequence is constructed fresh per driver, so back-to-
        # back runs in one process (retuning probes, the multitenant
        # harness) replay identical arrivals instead of continuing a
        # shared stream; the spawn child (key (0,)) is disjoint from
        # both the loaded-set stream (child (1,) in LoadGen) and the
        # sample-selection stream (root entropy in SampleSelector).
        # tests/core/test_scenarios.py pins all three invariants.
        self._arrival_rng = np.random.default_rng(
            np.random.SeedSequence(self.settings.seed).spawn(1)[0]
        )
        self._bursts = self.settings.server_rate_bursts or ()

    def start(self) -> None:
        self.stats.start_time = self.loop.now
        self._schedule_next_arrival()

    def _rate_multiplier(self, now: float) -> float:
        """Scheduled burst/lull factor at ``now`` (flash-crowd traffic).

        Piecewise-constant over the ``server_rate_bursts`` windows; the
        rate is evaluated when each gap is drawn, so a window boosts
        every arrival scheduled while it is active.
        """
        for start, duration, multiplier in self._bursts:
            if start <= now < start + duration:
                return multiplier
        return 1.0

    def _schedule_next_arrival(self) -> None:
        rate = self.settings.server_target_qps
        if self._bursts:
            rate *= self._rate_multiplier(self.loop.now)
        gap = self._arrival_rng.exponential(1.0 / rate)
        scheduled = self.loop.now + gap
        self.loop.schedule(scheduled, lambda: self._arrive(scheduled))

    def _arrive(self, scheduled: float) -> None:
        indices = self.source.next(1)
        if indices is None:
            self._close_issue_phase()
            return
        self._issue(indices, scheduled_time=scheduled)
        if self._should_issue_more():
            self._schedule_next_arrival()
        else:
            self._close_issue_phase()

    def on_completion(self, query: Query) -> None:
        """Server queries are independent; nothing to do on completion."""


class MultiStreamDriver(ScenarioDriver):
    """Fixed arrival interval; busy SUT skips (and delays) intervals."""

    scenario = Scenario.MULTI_STREAM

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._interval = self.settings.resolved_multistream_interval
        self._tick_index = 0
        self._current_query: Optional[Query] = None

    @property
    def samples_per_query(self) -> int:
        return self.settings.multistream_samples_per_query

    def start(self) -> None:
        self.stats.start_time = self.loop.now
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        self._tick_index += 1
        self.loop.schedule_after(self._interval, self._tick)

    def _tick(self) -> None:
        if self._current_query is not None:
            # SUT still busy: this interval is skipped; the in-flight
            # query is charged with producing it.
            qid = self._current_query.id
            self.stats.skipped_intervals[qid] = (
                self.stats.skipped_intervals.get(qid, 0) + 1
            )
            self.stats.total_skipped_ticks += 1
            self._schedule_tick()
            return
        indices = self.source.next(self.samples_per_query)
        if indices is None:
            self._close_issue_phase()
            return
        self._current_query = self._issue(indices, scheduled_time=self.loop.now)
        if self._should_issue_more():
            self._schedule_tick()
        else:
            self._close_issue_phase()

    def on_completion(self, query: Query) -> None:
        if self._current_query is not None and query.id == self._current_query.id:
            self._current_query = None


class OfflineDriver(ScenarioDriver):
    """One big batch query at t=0; extras only to satisfy min duration.

    When the minimum duration forces additional batch queries, two are
    kept in flight (double buffering) so the SUT never drains between
    batches - a serial issue-wait-issue loop would insert pipeline
    bubbles that the real single-giant-query offline run does not have.
    """

    scenario = Scenario.OFFLINE

    def start(self) -> None:
        self.stats.start_time = self.loop.now
        self._issue_batch()
        if not self.source.finite:
            self._issue_batch()

    def _batch_size(self) -> int:
        if self.source.finite:
            remaining = getattr(self.source, "remaining", None)
            if remaining is not None:
                return max(1, remaining)
        return self.settings.resolved_offline_samples

    def _issue_batch(self) -> None:
        indices = self.source.next(self._batch_size())
        if indices is None:
            self._close_issue_phase()
            return
        self._issue(indices, scheduled_time=self.loop.now)
        self.stats.offline_queries += 1
        self.sut.flush()

    def on_completion(self, query: Query) -> None:
        elapsed = self.loop.now - self.stats.start_time
        if (
            not self.source.finite
            and elapsed < self.settings.resolved_min_duration
        ):
            # Section III-D: run for at least 60 s, processing additional
            # queries/samples as required.
            self._issue_batch()
        elif self._outstanding == 0:
            self._close_issue_phase()


def make_driver(
    loop: EventLoop,
    settings: TestSettings,
    sut: SystemUnderTest,
    source: SampleSource,
    log: QueryLog,
    registry: Optional[MetricsRegistry] = None,
) -> ScenarioDriver:
    """Instantiate the driver matching ``settings.scenario``.

    With a ``registry`` the driver emits live telemetry (see
    ``docs/observability.md`` for the catalog); without one the hot
    paths skip instrumentation entirely.
    """
    if settings.scenario is Scenario.SESSION:
        # Lazy import: the session workload lives outside core (it is a
        # layer over the scenario machinery, like streaming and fleet),
        # and core must stay importable without it.
        from ..sessions.driver import SessionDriver

        return SessionDriver(loop, settings, sut, source, log,
                             registry=registry)
    driver_cls = {
        Scenario.SINGLE_STREAM: SingleStreamDriver,
        Scenario.MULTI_STREAM: MultiStreamDriver,
        Scenario.SERVER: ServerDriver,
        Scenario.OFFLINE: OfflineDriver,
    }[settings.scenario]
    return driver_cls(loop, settings, sut, source, log, registry=registry)
